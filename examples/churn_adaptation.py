#!/usr/bin/env python
"""Tracking a drifting environment: regret tracking vs. its ancestors.

The paper's core argument for *tracking* (constant step size) over classic
regret *matching* (uniform averaging) is adaptation: when helper bandwidth
drifts, uniform averages go stale.  This example engineers a hard drift —
halfway through the run the dominant helper's capacity collapses and a
previously weak helper surges — and compares strategies on the *same*
environment realization:

* R2HS (regret tracking, constant eps)
* regret matching (eps_n = 1/n), same mu
* epsilon-greedy bandit
* sticky random (the fixed-overlay strawman of prior helper systems)

Scoring uses the load-misallocation metric of Fig. 3 (L1 distance between
realized helper loads and the capacity-proportional target, per peer):
welfare alone barely discriminates because any selection rule that keeps
every helper occupied scores near the welfare optimum.

Expected shape (the paper's Sec. II argument): matching is *better* while
the environment is stationary (uniform averaging has lower variance) but
collapses right after the drift; tracking pays a small stationary premium
and adapts almost immediately.

Run:  python examples/churn_adaptation.py
"""

import numpy as np

import repro
from repro.analysis import render_table
from repro.core import R2HSLearner, regret_matching_learner
from repro.game import EpsilonGreedyLearner, RepeatedGameDriver, StickyLearner
from repro.sim import TraceCapacityProcess

NUM_PEERS = 12
NUM_HELPERS = 3
STAGES = 2000
DRIFT = STAGES // 2
MU = 0.25  # same switching eagerness for both regret learners


def drifting_capacity_trace() -> np.ndarray:
    """Helper 0 dominates the first half, helper 2 the second."""
    trace = np.zeros((STAGES, NUM_HELPERS))
    trace[:DRIFT] = [900.0, 500.0, 200.0]
    trace[DRIFT:] = [200.0, 500.0, 900.0]
    return trace


def misallocation(trajectory, lo, hi) -> float:
    """Per-peer L1 distance between mean loads and proportional targets."""
    loads = trajectory.loads[lo:hi].mean(axis=0)
    caps = trajectory.capacities[lo:hi].mean(axis=0)
    target = NUM_PEERS * caps / caps.sum()
    return float(np.abs(loads - target).sum() / NUM_PEERS)


def run(label, factory):
    learners = [factory(i) for i in range(NUM_PEERS)]
    driver = RepeatedGameDriver(
        learners, TraceCapacityProcess(drifting_capacity_trace())
    )
    trajectory = driver.run(STAGES)
    return {
        "strategy": label,
        "stationary": misallocation(trajectory, DRIFT - 200, DRIFT),
        "after drift": misallocation(trajectory, DRIFT, DRIFT + 200),
        "final": misallocation(trajectory, STAGES - 200, STAGES),
        "welfare": float(trajectory.welfare[-200:].mean()),
    }


def main() -> None:
    u_max = 900.0
    rows = [
        run("R2HS (tracking)", lambda i: R2HSLearner(
            NUM_HELPERS, rng=100 + i, epsilon=0.02, mu=MU, u_max=u_max)),
        run("regret matching", lambda i: regret_matching_learner(
            NUM_HELPERS, rng=200 + i, mu=MU, u_max=u_max)),
        run("epsilon-greedy", lambda i: EpsilonGreedyLearner(
            NUM_HELPERS, rng=300 + i, epsilon=0.1)),
        run("sticky random", lambda i: StickyLearner(
            NUM_HELPERS, rng=400 + i, switch_probability=0.01)),
    ]

    print(f"{NUM_PEERS} peers, {NUM_HELPERS} helpers; capacities flip at "
          f"stage {DRIFT}: [900,500,200] -> [200,500,900]")
    print("Scores: load misallocation per peer (lower is better)\n")
    print(render_table(
        ["strategy", "stationary", "after drift", "final", "welfare kbit/s"],
        [[r["strategy"], r["stationary"], r["after drift"], r["final"],
          r["welfare"]] for r in rows],
    ))
    track = rows[0]
    match = rows[1]
    print(f"\nTracking-vs-matching after the drift: "
          f"{match['after drift'] / max(track['after drift'], 1e-9):.2f}x "
          f"lower misallocation for tracking")


if __name__ == "__main__":
    main()
