#!/usr/bin/env python
"""Multi-channel P2P live streaming on the discrete-event simulator.

Builds a 3-channel deployment with Zipf channel popularity, helpers
partitioned across channels, Poisson peer churn, and R2HS helper selection
at every peer.  Reports per-channel populations, server workload against
the minimum bandwidth deficit (paper Fig. 5), and helper utilization.

Run:  python examples/multichannel_streaming.py
"""

import numpy as np

import repro
from repro.analysis import render_series_table, sparkline
from repro.metrics import server_load_report
from repro.sim import ChurnConfig, StreamingSystem, SystemConfig
from repro.workloads import zipf_popularity


def main() -> None:
    popularity = zipf_popularity(3, exponent=1.0)
    config = SystemConfig(
        num_peers=60,
        num_helpers=9,          # 3 per channel
        num_channels=3,
        channel_bitrates=[300.0, 250.0, 200.0],
        channel_popularity=popularity,
        churn=ChurnConfig(arrival_rate=0.1, mean_lifetime=300.0),
        round_duration=1.0,
    )
    system = StreamingSystem(
        config,
        lambda h, rng: repro.R2HSLearner(h, rng=rng, u_max=900.0),
        rng=7,
    )

    print("Multi-channel deployment")
    print(f"  channels: {config.num_channels} with popularity "
          f"{np.round(popularity, 3).tolist()}")
    print(f"  helpers : {config.num_helpers} (3 per channel), "
          f"bandwidth levels {list(config.bandwidth_levels)}")
    print(f"  peers   : {config.num_peers} initial + Poisson churn\n")

    trace = system.run(600)

    # Per-channel population.
    print("Channel populations (online peers at the end)")
    online = system.online_peers()
    for channel in system.channels:
        members = [p for p in online if p.channel_id == channel.channel_id]
        rates = [p.average_rate for p in members]
        print(f"  channel {channel.channel_id}: {len(members):3d} peers, "
              f"bitrate {channel.bitrate:.0f} kbit/s, "
              f"mean received {np.mean(rates) if rates else 0:.0f} kbit/s")

    # Fig. 5 view: server workload vs. the minimum bandwidth deficit.
    report = server_load_report(trace)
    print("\nServer workload vs. minimum bandwidth deficit (kbit/s)")
    print(render_series_table(
        ["server load", "min deficit", "no-helper load"],
        [report.server_load, report.min_deficit, report.no_helper_load],
        num_points=10,
    ))
    print(f"\n  helpers absorb {100 * report.saving_fraction:.1f}% of demand")
    print(f"  online peers over time: {sparkline(trace.online_peers.astype(float))}")
    print(f"  server load over time : {sparkline(report.server_load)}")


if __name__ == "__main__":
    main()
