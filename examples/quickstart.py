#!/usr/bin/env python
"""Quickstart: decentralized helper selection with R2HS.

Runs the paper's small-scale scenario (10 peers, 4 helpers, bandwidth
switching over [700, 800, 900] kbit/s), then reports:

* social welfare vs. the centralized MDP optimum (paper Fig. 2),
* worst-player time-averaged regret decay (paper Fig. 1),
* helper-load balance and per-peer fairness (paper Figs. 3-4).

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.analysis import render_series_table, sparkline
from repro.core import empirical_ce_regret
from repro.mdp import solve_symmetric_optimum
from repro.metrics import (
    jain_index,
    load_balance_report,
    time_averaged_regret_series,
)


def main() -> None:
    scenario = repro.small_scale_scenario(num_stages=2000)
    process = repro.make_capacity_process(scenario, rng=1)
    population = repro.make_learner_population(scenario, rng=2)

    print(f"Scenario: {scenario.name}  N={scenario.num_peers} peers, "
          f"H={scenario.num_helpers} helpers, {scenario.num_stages} stages")
    print(f"Learner: R2HS  eps={scenario.epsilon} delta={scenario.delta}\n")

    trajectory = population.run(process, scenario.num_stages)

    # --- Fig. 2: welfare vs. the centralized MDP benchmark -------------
    optimum = solve_symmetric_optimum(process.chains, scenario.num_peers).value
    steady = trajectory.welfare[-500:].mean()
    print("Social welfare (kbit/s)")
    print(f"  centralized MDP optimum : {optimum:8.1f}")
    print(f"  R2HS steady state       : {steady:8.1f}  "
          f"({100 * steady / optimum:.1f}% of optimal)")
    print(f"  welfare over time       : {sparkline(trajectory.welfare)}\n")

    # --- Fig. 1: worst-player regret decay -----------------------------
    regret = time_averaged_regret_series(trajectory, sample_every=100,
                                         u_max=scenario.u_max)
    print("Worst-player time-averaged regret (normalized)")
    print(render_series_table(["regret"], [regret], num_points=10))
    print(f"  final CE regret: {empirical_ce_regret(trajectory, u_max=scenario.u_max):.4f}\n")

    # --- Figs. 3-4: load balance and fairness --------------------------
    balance = load_balance_report(trajectory)
    print("Helper load balance (steady-state tail)")
    for j in range(scenario.num_helpers):
        print(f"  helper {j}: mean load {balance.mean_loads[j]:5.2f}  "
              f"(proportional target {balance.proportional_target[j]:5.2f})")
    print(f"  Jain index of loads    : {balance.jain:.4f}")
    per_peer = trajectory.tail(0.4).utilities.mean(axis=0)
    print(f"  Jain index of peer rates: {jain_index(per_peer):.4f}")
    print(f"  peer rates (kbit/s)    : min {per_peer.min():.0f}  "
          f"mean {per_peer.mean():.0f}  max {per_peer.max():.0f}")


if __name__ == "__main__":
    main()
