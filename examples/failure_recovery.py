#!/usr/bin/env python
"""Helper failures: watch RTHS evacuate a dead helper and re-balance.

Helpers are volunteer peers and can vanish mid-stream.  This example
converges a population on four healthy helpers, kills one, and uses the
convergence diagnostics to show what happens:

* loads drain off the dead helper within tens of stages (bounded by the
  exploration re-entry trap documented in DESIGN.md §8);
* the sliding-window CE regret spikes at the failure and settles again —
  the population re-converges to the CE set of the 3-helper game;
* when the helper recovers, peers flow back.

Run:  python examples/failure_recovery.py
"""

import numpy as np

import repro
from repro.analysis import render_series_table
from repro.core import LearnerPopulation, sliding_ce_regret
from repro.game.repeated_game import StaticCapacities
from repro.sim.failures import FailureInjectingProcess

NUM_PEERS = 16
NUM_HELPERS = 4
CAPACITY = 800.0
PHASE = 400  # stages per phase: healthy -> failed -> recovered


def main() -> None:
    base = StaticCapacities([CAPACITY] * NUM_HELPERS)
    process = FailureInjectingProcess(
        base, failure_rate=0.0, mean_outage_rounds=1e9, rng=0
    )
    population = LearnerPopulation(
        NUM_PEERS, NUM_HELPERS,
        epsilon=0.01, delta=0.1, mu=0.25, u_max=900.0, rng=1,
    )

    print(f"{NUM_PEERS} peers, {NUM_HELPERS} helpers at {CAPACITY:.0f} kbit/s; "
          f"helper 0 fails at stage {PHASE} and recovers at {2 * PHASE}\n")

    healthy = population.run(process, PHASE)
    process._failed[0] = True          # helper 0 goes down
    failed = population.run(process, PHASE)
    process._failed[0] = False         # and comes back
    recovered = population.run(process, PHASE)

    # Stitch the three phases for reporting.
    loads0 = np.concatenate(
        [healthy.loads[:, 0], failed.loads[:, 0], recovered.loads[:, 0]]
    ).astype(float)
    welfare = np.concatenate(
        [healthy.welfare, failed.welfare, recovered.welfare]
    )
    print("Load on helper 0 and total welfare over time")
    print(render_series_table(
        ["helper-0 load", "welfare kbit/s"],
        [loads0, welfare],
        num_points=12,
    ))

    for label, trajectory in [("healthy", healthy), ("failed", failed),
                              ("recovered", recovered)]:
        window = sliding_ce_regret(trajectory, window=100, u_max=900.0)
        tail_load = trajectory.loads[-100:, 0].mean()
        print(f"\nphase {label:10s}: helper-0 tail load {tail_load:5.2f}   "
              f"sliding CE regret {np.round(window, 3).tolist()}")

    print("\nInterpretation: the dead helper drains to the exploration floor "
          "(plus the re-entry trap residue), the CE regret spike decays as "
          "the population re-converges, and recovery repopulates helper 0.")


if __name__ == "__main__":
    main()
