#!/usr/bin/env python
"""Equilibrium structure of the helper-selection game (paper Secs. II-III).

On a small instance this example:

1. enumerates the pure Nash equilibria of the stage game,
2. shows the herd oscillation of simultaneous best response (Sec. III-B),
3. computes the welfare-best and welfare-worst correlated equilibria by
   linear programming over the CE polytope (Eq. 3-1),
4. runs RTHS and verifies its empirical play lands inside the CE set
   (small empirical CE regret) with welfare near the best CE.

Run:  python examples/equilibrium_analysis.py
"""

import numpy as np

import repro
from repro.core import empirical_ce_regret_report, solve_ce_lp
from repro.core.equilibrium import ce_welfare_bounds
from repro.game import (
    HelperSelectionGame,
    RepeatedGameDriver,
)
from repro.game.best_response import (
    oscillation_period,
    simultaneous_best_response_path,
)
from repro.game.nash import nash_load_vectors

NUM_PEERS = 4
CAPACITIES = [900.0, 600.0]


def main() -> None:
    game = HelperSelectionGame(NUM_PEERS, CAPACITIES)
    print(f"Stage game: {NUM_PEERS} peers, helper capacities {CAPACITIES}\n")

    # 1. Pure Nash equilibria (anonymous load vectors).
    print("Pure Nash equilibria (load vectors):")
    for loads in nash_load_vectors(game):
        rates = [CAPACITIES[j] / n if n else float("nan")
                 for j, n in enumerate(loads)]
        print(f"  loads {loads.tolist()}  ->  per-peer rates "
              f"{[f'{r:.0f}' for r in rates]}")

    # 2. The Sec. III-B pathology.
    path = simultaneous_best_response_path(game, [0] * NUM_PEERS, 8)
    print(f"\nSimultaneous best response from all-on-helper-0:")
    for stage, profile in enumerate(path[:5]):
        print(f"  stage {stage}: profile {profile.tolist()}")
    print(f"  -> oscillation period: {oscillation_period(path)} (herding)")

    # 3. CE polytope bounds.
    worst, best = ce_welfare_bounds(game)
    dist, _ = solve_ce_lp(game, objective="welfare")
    print(f"\nCorrelated-equilibrium welfare range: [{worst:.0f}, {best:.0f}] kbit/s")
    print("Welfare-optimal CE support (profile -> probability):")
    for profile, prob in sorted(dist.items(), key=lambda kv: -kv[1])[:6]:
        print(f"  {profile} -> {prob:.3f}")

    # 4. RTHS play lands in the CE set.
    learners = [
        repro.R2HSLearner(2, rng=10 + i, epsilon=0.05, delta=0.05, u_max=900.0)
        for i in range(NUM_PEERS)
    ]
    driver = RepeatedGameDriver(learners, repro.StaticCapacities(CAPACITIES))
    trajectory = driver.run(3000)
    report = empirical_ce_regret_report(trajectory, u_max=900.0)
    steady_welfare = trajectory.welfare[-800:].mean()
    print(f"\nRTHS empirical play after 3000 stages:")
    print(f"  max empirical CE regret : {report.max_regret:.4f} (normalized)")
    print(f"  worst (player, j, k)    : {report.worst_triple}")
    print(f"  steady welfare          : {steady_welfare:.0f} kbit/s "
          f"(CE range [{worst:.0f}, {best:.0f}])")
    tail = trajectory.tail(0.25)
    loads = tail.loads.mean(axis=0)
    print(f"  mean loads              : {np.round(loads, 2).tolist()} "
          f"(proportional target {np.round(game.proportional_loads(), 2).tolist()})")


if __name__ == "__main__":
    main()
