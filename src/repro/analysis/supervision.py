"""Supervised sweep execution: one worker process per cell, watched.

:class:`~repro.analysis.parallel.ParallelRunner` delegates here whenever
a sweep asks for fault tolerance (a non-default
:class:`~repro.spec.ExecutionSpec`) or durability (an attached
:class:`~repro.store.ResultsStore`).  The pool-based fast path treats a
crashed worker as a fatal sweep error; this dispatcher treats it as an
event:

* every cell runs in its own short-lived worker process, so one cell's
  death, hang, or memory blow-up cannot take siblings down with it;
* workers emit heartbeats; a worker silent for ~4 intervals (SIGSTOP, a
  wedged host) is killed and its cell retried;
* each attempt has a wall-clock budget (``cell_timeout``) — the escape
  hatch for cells that hang while their heartbeat thread keeps beating;
* death/timeout/hang retries with exponential backoff plus
  deterministic, seed-derived jitter, bounded by ``max_retries``.  The
  cell's derived seed rides in the payload, so a retried cell is
  bit-identical to a first-try cell regardless of where or when it
  lands.  Cell *exceptions* are deterministic in (params, seed) and are
  therefore terminal immediately — retrying would reproduce them;
* results commit to the store as they arrive (when one is attached), so
  a sweep killed mid-flight resumes with every finished cell a cache
  hit;
* shared-memory result segments a dead worker disowned are reaped by
  the supervisor (workers announce segment names before shipping the
  result), so crashes do not orphan ``/dev/shm`` backings.

Cells that exhaust their retries become structured
:class:`SweepFailure` records (attempt history included).  Under
``on_failure="record"`` the sweep completes around the holes; under
``"raise"`` a :class:`SweepError` carrying the first record is raised —
after every other cell has finished and released its resources.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.telemetry import get_telemetry
from repro.util.logconfig import get_logger

logger = get_logger("analysis")

#: A worker is presumed frozen after this many missed heartbeat
#: intervals (floored at :data:`HEARTBEAT_FLOOR_S` to survive slow
#: process starts).
HEARTBEAT_MISSES = 4
HEARTBEAT_FLOOR_S = 1.0

#: Supervisor loop tick: the queue-drain timeout bounding how stale the
#: liveness checks can get.
_TICK_S = 0.05


@dataclass
class CellAttempt:
    """One try at one cell, as recorded in the failure history."""

    attempt: int
    outcome: str  # "ok" | "crash" | "timeout" | "hung" | "error" | "materialize"
    elapsed_s: float
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attempt": self.attempt,
            "outcome": self.outcome,
            "elapsed_s": self.elapsed_s,
            "detail": self.detail,
        }


@dataclass
class SweepFailure:
    """A cell that failed beyond recovery, as structured data.

    Carries everything needed to re-run or triage the cell by hand: the
    submission index, the parameter overrides, the derived seed (re-run
    with exactly this seed to reproduce), the owning spec digest when
    known, and the per-attempt history the supervisor observed.
    """

    cell_index: int
    params: Dict[str, Any]
    seed: Optional[int] = None
    spec_digest: Optional[str] = None
    attempts: List[CellAttempt] = field(default_factory=list)
    traceback: str = ""

    def describe(self) -> str:
        """One line naming the failed cell (the CLI's error format)."""
        where = f"sweep cell {self.cell_index} failed"
        if self.attempts:
            where += f" after {len(self.attempts)} attempt(s)"
            where += f" ({self.attempts[-1].outcome})"
        if self.spec_digest:
            where += f" [spec {self.spec_digest}]"
        if self.params:
            where += f" (params {self.params})"
        return where

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell_index": self.cell_index,
            "params": dict(self.params),
            "seed": self.seed,
            "spec_digest": self.spec_digest,
            "attempts": [a.to_dict() for a in self.attempts],
            "traceback": self.traceback,
        }


class SweepError(RuntimeError):
    """A sweep aborted by an unrecoverable cell failure.

    Subclasses :class:`RuntimeError` (the historical raise type) and
    carries the structured :attr:`failure` so callers — notably the CLI
    — can report one precise line instead of a worker traceback dump.
    """

    def __init__(self, failure: SweepFailure) -> None:
        message = failure.describe()
        if failure.traceback:
            message += ":\n" + failure.traceback
        super().__init__(message)
        self.failure = failure


def _heartbeat_loop(send, index, attempt, interval, stop) -> None:
    while not stop.wait(interval):
        try:
            send(("hb", index, attempt, None))
        except Exception:  # parent gone; nothing left to tell
            return


def _supervised_worker(
    conn, payload, heartbeat_interval, post_share_hook=None
) -> None:
    """Worker-process entry: run one cell, ship the result, beat while at it.

    The protocol back to the supervisor (this worker's *private* pipe,
    message tuples ``(kind, index, attempt, data)``): optional ``hb``
    beats, a ``segments`` announcement naming any shared-memory backings
    the result disowned (so the parent can reap them if this process
    dies before delivery), then exactly one of ``ok`` (the metrics,
    possibly holding disowned handles) or ``err`` (the formatted
    traceback).  Each worker owns its pipe end exclusively — the
    supervisor can SIGKILL a wedged worker without poisoning a lock its
    siblings share (the failure mode of a single ``mp.Queue``); a
    killed-mid-send pipe just reads as EOF.  ``post_share_hook`` is a
    fault-injection seam used by the chaos tests to die *between*
    announcing and delivering.
    """
    from repro.analysis.parallel import (
        SharedArrayHandle,
        _mark_results_delivered,
        _share_result_metrics,
    )

    index, attempt, fn, params, seed, result_mode = payload
    send_lock = threading.Lock()

    def send(message):
        with send_lock:  # heartbeat thread and main thread share the pipe
            conn.send(message)

    stop = threading.Event()
    if heartbeat_interval and heartbeat_interval > 0:
        threading.Thread(
            target=_heartbeat_loop,
            args=(send, index, attempt, heartbeat_interval, stop),
            daemon=True,
        ).start()
    try:
        metrics = dict(fn(params, seed))
        if result_mode is not None:
            metrics = _share_result_metrics(metrics, result_mode)
        segment_names = [
            value._shm_name
            for value in metrics.values()
            if isinstance(value, SharedArrayHandle) and value.mode == "shm"
        ]
        if segment_names:
            send(("segments", index, attempt, segment_names))
        if post_share_hook is not None:
            post_share_hook(index, attempt, metrics)
        stop.set()
        send(("ok", index, attempt, metrics))
        _mark_results_delivered(metrics)
    except BaseException:
        # Anything disowned but undelivered is reclaimed by the
        # worker's atexit reaper (see parallel._reap_undelivered).
        stop.set()
        try:
            send(("err", index, attempt, traceback.format_exc()))
        except Exception:
            pass


def _pipe_reader(conn, out_queue) -> None:
    """Parent-side reader thread: one per worker pipe.

    Forwards every message into the supervisor's (thread-)queue and
    exits on EOF/OSError — which is exactly what a crashed, killed, or
    cleanly finished worker's pipe produces.  Keeping the blocking
    ``recv`` off the supervisor loop means a worker frozen mid-send
    (SIGSTOP) stalls only this thread; the supervisor still notices the
    stale heartbeat and kills the worker, which unblocks the recv with
    EOF.
    """
    try:
        while True:
            out_queue.put(conn.recv())
    except (EOFError, OSError):
        pass
    except Exception:  # pragma: no cover - unpickling garbage
        pass


def reap_segments(names) -> int:
    """Unlink shared-memory segments by name (best-effort); count reaped.

    The parent-side half of crash recovery: a worker announces its
    result segments before shipping them, so when it dies in between,
    the backings it disowned are reclaimed here instead of surviving in
    ``/dev/shm`` until reboot.
    """
    from multiprocessing import shared_memory

    reaped = 0
    for name in names:
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        except Exception:  # pragma: no cover - platform oddities
            continue
        # No explicit tracker bookkeeping: attaching registered the
        # segment with this process's tracker and unlink() deregisters
        # it — exactly balanced.
        seg.close()
        try:
            seg.unlink()
            reaped += 1
        except FileNotFoundError:  # pragma: no cover - lost the race
            pass
    return reaped


@dataclass
class _Cell:
    """Supervisor-side state of one cell across its attempts."""

    index: int
    fn: Any
    params: Dict[str, Any]
    seed: int
    tries: int = 0
    attempts: List[CellAttempt] = field(default_factory=list)
    proc: Any = None
    conn: Any = None
    started: float = 0.0
    last_beat: float = 0.0
    segments: List[str] = field(default_factory=list)


class Supervisor:
    """Fault-tolerant fan-out of cells over per-cell worker processes.

    One instance runs one sweep (:meth:`run`); construction binds the
    policy (an :class:`~repro.spec.ExecutionSpec`-shaped object), the
    worker budget, and optionally a results store plus the spec digest
    that keys it.
    """

    def __init__(
        self,
        workers: int,
        execution,
        mp_context: Optional[str] = None,
        store=None,
        spec_digest: Optional[str] = None,
        post_share_hook=None,
    ) -> None:
        self._workers = max(1, int(workers))
        self._execution = execution
        self._ctx = multiprocessing.get_context(mp_context)
        self._store = store
        self._spec_digest = spec_digest
        self._post_share_hook = post_share_hook
        tel = get_telemetry()
        self._ctr_retries = tel.counter("sweep.retries")
        self._ctr_failed = tel.counter("sweep.cells_failed")
        self._ctr_commits = tel.counter("sweep.store_commits")
        self.stats: Dict[str, int] = {
            "retries": 0,
            "crashes": 0,
            "timeouts": 0,
            "hangs": 0,
            "errors": 0,
            "failed": 0,
            "completed": 0,
            "committed": 0,
            "segments_reaped": 0,
        }

    # ------------------------------------------------------------------

    def run(
        self,
        payloads,
        result_mode: Optional[str],
        heartbeat_interval: float,
    ) -> Tuple[Dict[int, Mapping[str, Any]], Dict[int, SweepFailure]]:
        """Execute payloads ``(fn, params, seed, index)``; supervise all.

        Returns ``(results, failures)`` keyed by submission index; every
        payload lands in exactly one of the two.
        """
        cells = [
            _Cell(index=index, fn=fn, params=dict(params), seed=seed)
            for (fn, params, seed, index) in payloads
        ]
        self._result_mode = result_mode
        self._heartbeat = float(heartbeat_interval)
        # A plain thread queue: per-worker pipe reader threads feed it,
        # so no lock is ever shared with a process we might kill.
        self._queue = queue_module.Queue()
        self._pending = deque(cells)
        self._waiting: List[Tuple[float, _Cell]] = []
        self._inflight: Dict[int, _Cell] = {}
        self._results: Dict[int, Mapping[str, Any]] = {}
        self._failures: Dict[int, SweepFailure] = {}
        while self._pending or self._waiting or self._inflight:
            self._promote_waiting()
            self._dispatch()
            self._drain(block=True)
            self._check_inflight()
        return self._results, self._failures

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _promote_waiting(self) -> None:
        now = time.monotonic()
        ready = [entry for entry in self._waiting if entry[0] <= now]
        for entry in ready:
            self._waiting.remove(entry)
            self._pending.append(entry[1])

    def _dispatch(self) -> None:
        while self._pending and len(self._inflight) < self._workers:
            cell = self._pending.popleft()
            cell.tries += 1
            cell.segments = []
            payload = (
                cell.index,
                cell.tries,
                cell.fn,
                cell.params,
                cell.seed,
                self._result_mode,
            )
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=_supervised_worker,
                args=(
                    child_conn,
                    payload,
                    self._heartbeat,
                    self._post_share_hook,
                ),
            )
            proc.start()
            child_conn.close()  # parent keeps only the read end
            threading.Thread(
                target=_pipe_reader,
                args=(parent_conn, self._queue),
                daemon=True,
            ).start()
            cell.proc = proc
            cell.conn = parent_conn
            cell.started = cell.last_beat = time.monotonic()
            self._inflight[cell.index] = cell
            logger.debug(
                "dispatched cell %d attempt %d (pid %s)",
                cell.index, cell.tries, proc.pid,
            )

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------

    def _drain(self, block: bool) -> None:
        try:
            message = self._queue.get(timeout=_TICK_S if block else 0)
        except queue_module.Empty:
            return
        while True:
            self._handle(message)
            try:
                message = self._queue.get_nowait()
            except queue_module.Empty:
                return

    def _handle(self, message) -> None:
        kind, index, attempt, data = message
        cell = self._inflight.get(index)
        if kind == "hb":
            if cell is not None and cell.tries == attempt:
                cell.last_beat = time.monotonic()
        elif kind == "segments":
            if cell is not None and cell.tries == attempt:
                cell.segments = list(data)
        elif kind == "ok":
            self._accept(index, attempt, data)
        elif kind == "err":
            self._cell_error(index, attempt, data)

    def _accept(self, index: int, attempt: int, metrics) -> None:
        from repro.analysis.parallel import _materialize_result_metrics

        if index in self._results or index in self._failures:
            # A duplicate from a racing attempt: deterministic cells
            # make it identical — materialize only to release backing.
            try:
                _materialize_result_metrics(dict(metrics))
            except Exception:
                pass
            return
        cell = self._find(index)
        try:
            materialized = _materialize_result_metrics(dict(metrics))
        except Exception as exc:
            if cell is None:
                return
            if cell.proc is not None and cell.tries == attempt:
                # The backing vanished between worker exit and adoption
                # (reaped segment, deleted .npy) — a recoverable
                # placement fault, retried like a crash.
                self._attempt_over(
                    cell, "materialize",
                    f"result materialization failed: {exc!r}",
                )
            else:
                # A stale payload from an attempt already written off;
                # _find pulled the cell out of the schedule — put it
                # back (running it sooner than its backoff slot is fine).
                self._pending.append(cell)
            return
        self._results[index] = materialized
        self.stats["completed"] += 1
        if cell is not None:
            # A result from an older attempt may land while a newer one
            # runs (deterministic cells make them identical): kill the
            # straggler, then reap whatever it had announced — for the
            # normal same-attempt case materialization above already
            # released the segments, so the reap is a no-op.
            self._retire(cell)
            self.stats["segments_reaped"] += reap_segments(cell.segments)
            cell.segments = []
            self._commit(cell, materialized)

    def _commit(self, cell: _Cell, metrics) -> None:
        if self._store is None:
            return
        from repro.store import cell_digest

        try:
            if self._store.put(
                self._spec_digest,
                cell_digest(cell.params, cell.seed),
                metrics,
                params=cell.params,
                seed=cell.seed,
            ):
                self.stats["committed"] += 1
                self._ctr_commits.inc()
        except Exception as exc:
            # Durability is best-effort on top of a completed result; a
            # full disk must not fail the sweep itself.
            logger.warning(
                "store commit failed for cell %d: %s", cell.index, exc
            )

    def _cell_error(self, index: int, attempt: int, formatted: str) -> None:
        cell = self._inflight.get(index)
        if (
            cell is None
            or cell.tries != attempt  # stale: from an attempt already killed
            or index in self._results
            or index in self._failures
        ):
            return
        # Exceptions are deterministic in (params, seed): retrying would
        # reproduce them, so they are terminal on the first occurrence.
        elapsed = time.monotonic() - cell.started if cell.started else 0.0
        cell.attempts.append(
            CellAttempt(attempt, "error", elapsed, _first_line(formatted))
        )
        self.stats["errors"] += 1
        self._fail(cell, formatted)
        self._retire(cell)

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------

    def _check_inflight(self) -> None:
        now = time.monotonic()
        execution = self._execution
        stale_after = None
        if self._heartbeat > 0:
            stale_after = max(
                HEARTBEAT_MISSES * self._heartbeat, HEARTBEAT_FLOOR_S
            )
        for cell in list(self._inflight.values()):
            if cell.index not in self._inflight or cell.proc is None:
                continue  # retired by a drain earlier in this pass
            if not cell.proc.is_alive():
                # Grace-drain before declaring a crash: the final "ok"
                # may still be in the pipe in the instant the process
                # exits (the feeder thread flushes right before).
                cell.proc.join(0.1)
                for _ in range(3):
                    self._drain(block=True)
                    if (
                        cell.index not in self._inflight
                        or cell.index in self._results
                        or cell.index in self._failures
                    ):
                        break
                if cell.index not in self._inflight:
                    continue
                if (
                    cell.index in self._results
                    or cell.index in self._failures
                ):
                    self._retire(cell)
                    continue
                self.stats["crashes"] += 1
                self._attempt_over(
                    cell, "crash", f"worker died (exit code {cell.proc.exitcode})"
                )
            elif (
                execution.cell_timeout is not None
                and now - cell.started > execution.cell_timeout
            ):
                self.stats["timeouts"] += 1
                self._attempt_over(
                    cell,
                    "timeout",
                    f"attempt exceeded cell_timeout={execution.cell_timeout}s",
                )
            elif stale_after is not None and now - cell.last_beat > stale_after:
                self.stats["hangs"] += 1
                self._attempt_over(
                    cell,
                    "hung",
                    f"no heartbeat for {now - cell.last_beat:.2f}s "
                    f"(interval {self._heartbeat}s)",
                )

    def _attempt_over(self, cell: _Cell, outcome: str, detail: str) -> None:
        """A live attempt failed: reap, record, and retry or give up."""
        self.stats["segments_reaped"] += reap_segments(cell.segments)
        cell.segments = []
        self._retire(cell)
        elapsed = time.monotonic() - cell.started if cell.started else 0.0
        cell.attempts.append(CellAttempt(cell.tries, outcome, elapsed, detail))
        logger.warning(
            "cell %d attempt %d %s: %s", cell.index, cell.tries, outcome, detail
        )
        if cell.tries <= self._execution.max_retries:
            delay = self._execution.retry_delay(cell.seed, cell.tries)
            self._waiting.append((time.monotonic() + delay, cell))
            self.stats["retries"] += 1
            self._ctr_retries.inc()
            logger.info(
                "retrying cell %d (attempt %d/%d) in %.2fs",
                cell.index, cell.tries + 1,
                self._execution.max_retries + 1, delay,
            )
        else:
            self._fail(cell, detail)

    def _fail(self, cell: _Cell, traceback_text: str) -> None:
        self._failures[cell.index] = SweepFailure(
            cell_index=cell.index,
            params=dict(cell.params),
            seed=cell.seed,
            spec_digest=self._spec_digest,
            attempts=list(cell.attempts),
            traceback=traceback_text,
        )
        self.stats["failed"] += 1
        self._ctr_failed.inc()
        logger.error("%s", self._failures[cell.index].describe())

    def _retire(self, cell: _Cell) -> None:
        """Remove from inflight and make sure the process is gone."""
        self._inflight.pop(cell.index, None)
        proc = cell.proc
        if proc is None:
            return
        if proc.is_alive():
            proc.terminate()
            proc.join(0.5)
            if proc.is_alive():  # SIGTERM ignored or process stopped
                proc.kill()
                proc.join(5.0)
        else:
            proc.join(0.1)
        cell.proc = None
        if cell.conn is not None:
            # Unblocks this worker's reader thread if it is still parked
            # in recv (the pipe also EOFs on worker death by itself).
            try:
                cell.conn.close()
            except OSError:  # pragma: no cover
                pass
            cell.conn = None

    # ------------------------------------------------------------------

    def _find(self, index: int) -> Optional[_Cell]:
        cell = self._inflight.get(index)
        if cell is not None:
            return cell
        for _, waiting_cell in self._waiting:
            if waiting_cell.index == index:
                self._waiting = [
                    w for w in self._waiting if w[1].index != index
                ]
                return waiting_cell
        for pending_cell in self._pending:
            if pending_cell.index == index:
                self._pending.remove(pending_cell)
                return pending_cell
        return None


def _first_line(text: str) -> str:
    lines = [line for line in str(text).strip().splitlines() if line.strip()]
    return lines[-1] if lines else ""
