"""Persistence for experiment outputs.

Trajectories are the repository's canonical experiment record; storing
them lets long runs be analyzed offline (CE regret, fairness, playback
QoE) without re-simulation.  Format: a single ``.npz`` with the four dense
arrays plus a small JSON-encoded metadata blob.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Optional, Union

import numpy as np

from repro.game.repeated_game import Trajectory

PathLike = Union[str, pathlib.Path]

_FORMAT_VERSION = 1


def save_trajectory(
    path: PathLike,
    trajectory: Trajectory,
    metadata: Optional[Dict[str, object]] = None,
) -> None:
    """Write a trajectory (and optional metadata dict) to ``path``.

    The suffix ``.npz`` is appended if missing (numpy does the same).
    Metadata must be JSON-serializable.
    """
    meta = dict(metadata or {})
    meta["format_version"] = _FORMAT_VERSION
    encoded = json.dumps(meta)
    np.savez_compressed(
        str(path),
        capacities=trajectory.capacities,
        actions=trajectory.actions,
        loads=trajectory.loads,
        utilities=trajectory.utilities,
        metadata=np.array(encoded),
    )


def load_trajectory(path: PathLike) -> tuple[Trajectory, Dict[str, object]]:
    """Read a trajectory written by :func:`save_trajectory`.

    Returns ``(trajectory, metadata)``; validates array consistency so a
    corrupted or foreign file fails loudly.
    """
    with np.load(str(path), allow_pickle=False) as data:
        required = {"capacities", "actions", "loads", "utilities"}
        missing = required - set(data.files)
        if missing:
            raise ValueError(f"file is missing arrays: {sorted(missing)}")
        capacities = data["capacities"]
        actions = data["actions"].astype(int)
        loads = data["loads"].astype(int)
        utilities = data["utilities"]
        metadata: Dict[str, object] = {}
        if "metadata" in data.files:
            metadata = json.loads(str(data["metadata"]))
    t = actions.shape[0]
    if capacities.shape[0] != t or loads.shape[0] != t or utilities.shape[0] != t:
        raise ValueError("array lengths disagree; file is corrupt")
    if capacities.shape[1] != loads.shape[1]:
        raise ValueError("capacities and loads disagree on helper count")
    if actions.shape[1] != utilities.shape[1]:
        raise ValueError("actions and utilities disagree on peer count")
    trajectory = Trajectory(
        capacities=capacities, actions=actions, loads=loads, utilities=utilities
    )
    return trajectory, metadata
