"""Plain-text rendering of tables and series.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output compact and aligned.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_float(value: float, digits: int = 3) -> str:
    """Fixed-width float formatting with sensible magnitude handling."""
    if value != value:  # NaN
        return "nan"
    if value in (float("inf"), float("-inf")):
        return "inf" if value > 0 else "-inf"
    if value == 0:
        return "0"
    if abs(value) >= 10000 or abs(value) < 10**-digits:
        return f"{value:.{digits}g}"
    return f"{value:.{digits}f}"


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned ASCII table."""
    header_cells = [str(h) for h in headers]
    body: List[List[str]] = []
    for row in rows:
        cells = [
            format_float(c) if isinstance(c, float) else str(c) for c in row
        ]
        if len(cells) != len(header_cells):
            raise ValueError(
                f"row has {len(cells)} cells, header has {len(header_cells)}"
            )
        body.append(cells)
    widths = [len(h) for h in header_cells]
    for cells in body:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    return "\n".join([line(header_cells), rule] + [line(c) for c in body])


def downsample(series: np.ndarray, num_points: int) -> np.ndarray:
    """Bucket-mean downsampling to at most ``num_points`` values."""
    arr = np.asarray(series, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("series must be non-empty 1-D")
    if num_points < 1:
        raise ValueError("num_points must be >= 1")
    if arr.size <= num_points:
        return arr.copy()
    edges = np.linspace(0, arr.size, num_points + 1).astype(int)
    return np.array(
        [arr[edges[i] : edges[i + 1]].mean() for i in range(num_points)]
    )


def sparkline(series: np.ndarray, width: int = 60) -> str:
    """Unicode sparkline of a series (handy in bench output)."""
    arr = downsample(np.asarray(series, dtype=float), width)
    low, high = float(arr.min()), float(arr.max())
    if high - low < 1e-12:
        return _SPARK_CHARS[0] * arr.size
    scaled = (arr - low) / (high - low) * (len(_SPARK_CHARS) - 1)
    return "".join(_SPARK_CHARS[int(round(v))] for v in scaled)


def render_series_table(
    names: Sequence[str],
    series: Sequence[np.ndarray],
    num_points: int = 12,
    stage_axis: bool = True,
) -> str:
    """Downsampled side-by-side series table (one column per series).

    The first column gives the (approximate) stage index of each bucket.
    """
    if len(names) != len(series):
        raise ValueError("names and series must have equal length")
    if not series:
        raise ValueError("need at least one series")
    length = len(series[0])
    for s in series:
        if len(s) != length:
            raise ValueError("all series must have equal length")
    sampled = [downsample(np.asarray(s, dtype=float), num_points) for s in series]
    points = sampled[0].size
    headers = (["stage"] if stage_axis else []) + list(names)
    rows = []
    for i in range(points):
        stage = int(round((i + 0.5) * length / points))
        row: List[object] = ([stage] if stage_axis else [])
        row.extend(float(s[i]) for s in sampled)
        rows.append(row)
    return render_table(headers, rows)
