"""Programmatic reproduction of every paper figure.

One function per figure, each returning an :class:`ExperimentResult` with
the rendered text table (what the benchmark harness writes to
``benchmarks/output/``) and the headline metrics (what the benches assert
on).  The CLI (``python -m repro``) and the benchmarks are both thin
wrappers around these functions, so the experiment logic exists exactly
once.

Every figure declares its setup as a declarative
:class:`~repro.spec.ExperimentSpec` and builds its components (capacity
process, learner population, or the full streaming system) from the spec,
so the figure configurations are serializable and the build plumbing is
the same one the CLI and the sweep harness use.  The spec-built systems
reproduce the pre-spec RNG streams bit-for-bit, so figure outputs are
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

import repro
from repro.analysis.reporting import render_series_table, render_table
from repro.game import RepeatedGameDriver, UniformRandomLearner
from repro.mdp import optimal_welfare_series, solve_symmetric_optimum
from repro.metrics import (
    jain_index,
    load_balance_report,
    moving_average,
    server_load_report,
    time_averaged_regret_series,
)
from repro.metrics.fairness import coefficient_of_variation, max_min_ratio
from repro.sim import TraceCapacityProcess, record_capacity_trace
from repro.spec import ExperimentSpec, LearnerSpec, TopologySpec


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one figure reproduction."""

    name: str
    text: str
    metrics: Dict[str, float]


def fig1_worst_player_regret(
    seed: int = 0,
    num_peers: int = 100,
    num_helpers: int = 10,
    num_stages: int = 3000,
    sample_every: int = 100,
) -> ExperimentResult:
    """Fig. 1 — evolution of the worst player's regret, large scale."""
    spec = repro.large_scale_scenario(
        num_peers=num_peers, num_helpers=num_helpers, num_stages=num_stages
    ).to_spec(backend="scalar", learner="rths", seed=seed)
    process = spec.build_capacity_process(rng=seed)
    population = spec.build_population(rng=seed + 1)
    tracking = []

    def sample(stage, _):
        if (stage + 1) % sample_every == 0:
            tracking.append(population.worst_player_regret())

    trajectory = population.run(process, spec.rounds, stage_callback=sample)
    averaged = time_averaged_regret_series(
        trajectory, sample_every=sample_every, u_max=spec.u_max
    )
    table = render_series_table(
        ["time-averaged worst regret", "instantaneous tracking regret"],
        [averaged, np.asarray(tracking)],
        num_points=15,
    )
    text = table + (
        f"\nscenario: N={num_peers} H={num_helpers} "
        f"stages={num_stages} eps={spec.learner.epsilon}"
        f"\nfirst sample : {averaged[0]:.4f}"
        f"\nfinal sample : {averaged[-1]:.4f} "
        f"({averaged[-1] / averaged[0]:.1%} of initial)"
    )
    return ExperimentResult(
        name="fig1_regret",
        text=text,
        metrics={
            "first_regret": float(averaged[0]),
            "final_regret": float(averaged[-1]),
        },
    )


def fig2_welfare_vs_mdp(
    seed: int = 0, num_stages: int = 2000
) -> ExperimentResult:
    """Fig. 2 — RTHS welfare vs. the centralized MDP benchmark (N=10, H=4)."""
    spec = repro.small_scale_scenario(num_stages=num_stages).to_spec(
        backend="scalar", learner="rths", seed=seed
    )
    num_peers = spec.topology.num_peers
    process = spec.build_capacity_process(rng=seed)
    stationary_optimum = solve_symmetric_optimum(process.chains, num_peers).value
    population = spec.build_population(rng=seed + 1)
    trajectory = population.run(process, spec.rounds)
    path_optimum = optimal_welfare_series(trajectory.capacities, num_peers)
    steady = float(trajectory.welfare[-num_stages // 4 :].mean())
    table = render_series_table(
        ["RTHS welfare (smoothed)", "per-stage MDP optimum"],
        [moving_average(trajectory.welfare, 50), path_optimum],
        num_points=15,
    )
    text = table + (
        f"\nscenario: N={num_peers} H={spec.topology.num_helpers}"
        f"\nstationary MDP optimum : {stationary_optimum:9.1f} kbit/s"
        f"\nRTHS steady-state mean : {steady:9.1f} kbit/s"
        f"\noptimality             : {steady / stationary_optimum:9.1%}"
    )
    return ExperimentResult(
        name="fig2_welfare",
        text=text,
        metrics={
            "optimum": stationary_optimum,
            "steady_welfare": steady,
            "optimality": steady / stationary_optimum,
        },
    )


def fig3_helper_load(
    seed: int = 0,
    num_peers: int = 40,
    num_helpers: int = 4,
    num_stages: int = 2000,
) -> ExperimentResult:
    """Fig. 3 — even load distribution across the helpers."""
    spec = ExperimentSpec(
        name="fig3_helper_load",
        backend="scalar",
        rounds=num_stages,
        seed=seed,
        topology=TopologySpec(num_peers=num_peers, num_helpers=num_helpers),
        learner=LearnerSpec(name="rths", epsilon=0.05),
    )
    process = spec.build_capacity_process(rng=seed)
    population = spec.build_population(rng=seed + 1)
    trajectory = population.run(process, spec.rounds)
    report = load_balance_report(trajectory, tail_fraction=0.5)
    loads_table = render_table(
        ["helper", "mean load", "proportional target"],
        [
            [j, float(report.mean_loads[j]), float(report.proportional_target[j])]
            for j in range(num_helpers)
        ],
    )
    cv_series = np.array(
        [coefficient_of_variation(row.astype(float)) for row in trajectory.loads]
    )
    cv_table = render_series_table(["per-stage load CV"], [cv_series], num_points=12)
    text = loads_table + "\n\n" + cv_table + (
        f"\nJain index of mean loads      : {report.jain:.4f}"
        f"\nCV of mean loads              : {report.cv:.4f}"
        f"\ndistance to proportional/peer : {report.distance_to_proportional:.4f}"
    )
    return ExperimentResult(
        name="fig3_helper_load",
        text=text,
        metrics={
            "jain": report.jain,
            "distance_to_proportional": report.distance_to_proportional,
        },
    )


def fig4_peer_rates(
    seed: int = 0,
    num_peers: int = 40,
    num_helpers: int = 4,
    num_stages: int = 2000,
) -> ExperimentResult:
    """Fig. 4 — helper bandwidth evenly distributed among peers."""
    spec = ExperimentSpec(
        name="fig4_peer_rates",
        backend="scalar",
        rounds=num_stages,
        seed=seed,
        topology=TopologySpec(num_peers=num_peers, num_helpers=num_helpers),
        learner=LearnerSpec(name="rths", epsilon=0.05),
    )
    env = spec.build_capacity_process(rng=seed)
    shared = record_capacity_trace(env, num_stages)

    population = spec.build_population(rng=seed + 1)
    rths = population.run(TraceCapacityProcess(shared.copy()), num_stages)
    random_learners = [
        UniformRandomLearner(num_helpers, rng=seed + 100 + i)
        for i in range(num_peers)
    ]
    random_traj = RepeatedGameDriver(
        random_learners, TraceCapacityProcess(shared.copy())
    ).run(num_stages)

    rths_rates = rths.tail(0.5).utilities.mean(axis=0)
    rand_rates = random_traj.tail(0.5).utilities.mean(axis=0)
    percentiles = np.arange(0, 101, 10)
    table = render_table(
        ["percentile", "RTHS rate kbit/s", "random rate kbit/s"],
        [
            [f"p{p}", float(np.percentile(rths_rates, p)),
             float(np.percentile(rand_rates, p))]
            for p in percentiles
        ],
    )
    rths_stage_jain = float(
        np.mean([jain_index(row) for row in rths.tail(0.5).utilities])
    )
    rand_stage_jain = float(
        np.mean([jain_index(row) for row in random_traj.tail(0.5).utilities])
    )
    rths_jain = jain_index(rths_rates)
    text = table + (
        f"\ntime-averaged rates:"
        f"\n  Jain (RTHS)   : {rths_jain:.4f}   max/min {max_min_ratio(rths_rates):.3f}"
        f"\n  Jain (random) : {jain_index(rand_rates):.4f}   "
        f"max/min {max_min_ratio(rand_rates):.3f}"
        f"\nper-stage (instantaneous) rates:"
        f"\n  Jain (RTHS)   : {rths_stage_jain:.4f}"
        f"\n  Jain (random) : {rand_stage_jain:.4f}"
    )
    return ExperimentResult(
        name="fig4_peer_rates",
        text=text,
        metrics={
            "jain_time_averaged": float(rths_jain),
            "stage_jain_rths": rths_stage_jain,
            "stage_jain_random": rand_stage_jain,
        },
    )


def fig5_server_load(seed: int = 0, num_stages: int = 1200) -> ExperimentResult:
    """Fig. 5 — real server workload vs. minimum bandwidth deficit."""
    spec = repro.fig5_scenario(num_stages=num_stages).to_spec(
        backend="scalar", learner="r2hs", seed=seed
    )
    trace = spec.run(seed=seed).trace
    report = server_load_report(trace)
    steady = float(report.server_load[num_stages // 6 :].mean())
    bound = float(report.min_deficit.mean())
    table = render_series_table(
        ["real server load", "min bandwidth deficit", "no-helper load"],
        [report.server_load, report.min_deficit, report.no_helper_load],
        num_points=15,
    )
    text = table + (
        f"\nsteady-state server load : {steady:8.1f} kbit/s"
        f"\nminimum bandwidth deficit: {bound:8.1f} kbit/s"
        f"\nno-helper load           : {report.no_helper_load.mean():8.1f} kbit/s"
        f"\nhelpers absorb           : {report.saving_fraction:8.1%} of demand"
    )
    return ExperimentResult(
        name="fig5_server_load",
        text=text,
        metrics={
            "steady_server_load": steady,
            "min_deficit": bound,
            "saving_fraction": float(report.saving_fraction),
        },
    )


ALL_FIGURES = {
    "fig1": fig1_worst_player_regret,
    "fig2": fig2_welfare_vs_mdp,
    "fig3": fig3_helper_load,
    "fig4": fig4_peer_rates,
    "fig5": fig5_server_load,
}
