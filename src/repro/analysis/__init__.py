"""Reporting utilities: ASCII tables and series for the benchmark harness.

Each benchmark regenerates one of the paper's figures as text — a table of
the plotted series (downsampled) plus the headline comparison the figure
makes.  No plotting dependencies; everything renders in a terminal or CI
log.
"""

from repro.analysis.io import load_trajectory, save_trajectory
from repro.analysis.parallel import (
    CellFunction,
    ParallelRunner,
    SharedArrayHandle,
    resolve_shared_array,
    share_array,
)
from repro.analysis.sweeps import (
    SweepResult,
    sweep_environment_speed,
    sweep_learner_parameters,
)
from repro.analysis.reporting import (
    downsample,
    format_float,
    render_series_table,
    render_table,
    sparkline,
)

__all__ = [
    "render_table",
    "render_series_table",
    "sparkline",
    "downsample",
    "format_float",
    "save_trajectory",
    "load_trajectory",
    "SweepResult",
    "sweep_learner_parameters",
    "sweep_environment_speed",
    "ParallelRunner",
    "CellFunction",
    "SharedArrayHandle",
    "share_array",
    "resolve_shared_array",
]

# Note: repro.analysis.experiments is intentionally not imported here — it
# imports the top-level `repro` package for convenience, so pulling it in
# eagerly would create an import cycle.  Import it explicitly:
#   from repro.analysis.experiments import ALL_FIGURES

