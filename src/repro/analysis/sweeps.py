"""Parameter-sweep harness.

Grid sweeps over learner and environment parameters with paired
environment realizations: every cell replays the *same* recorded bandwidth
path, so differences between cells are attributable to the parameters, not
to environment luck.  Used by the ablation benches and the ``sweep``-style
analyses in the examples.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (parallel imports us)
    from repro.analysis.parallel import ParallelRunner

from repro.analysis.reporting import render_table
from repro.core.equilibrium import empirical_ce_regret
from repro.core.population import LearnerPopulation
from repro.game.repeated_game import Trajectory
from repro.metrics.distributions import load_balance_report
from repro.sim.bandwidth import (
    TraceCapacityProcess,
    paper_bandwidth_process,
    record_capacity_trace,
)
from repro.util.rng import Seedish, as_generator, derive_seed

MetricFunction = Callable[[Trajectory], float]


def default_metrics(u_max: float = 900.0) -> Dict[str, MetricFunction]:
    """The standard sweep metrics: welfare, CE regret, load balance."""
    return {
        "tail_welfare": lambda t: float(t.tail(0.25).welfare.mean()),
        "ce_regret": lambda t: float(empirical_ce_regret(t, u_max=u_max)),
        "load_jain": lambda t: float(load_balance_report(t).jain),
    }


@dataclass(frozen=True)
class SweepCell:
    """One grid point and its metric values."""

    parameters: Mapping[str, object]
    metrics: Mapping[str, float]


@dataclass
class SweepResult:
    """All cells of a sweep plus rendering helpers.

    Under fault-tolerant execution with ``on_failure="record"``
    (:class:`~repro.spec.ExecutionSpec`), cells that failed beyond
    recovery appear as ``None`` holes in :attr:`cells` at their grid
    position, and their structured
    :class:`~repro.analysis.supervision.SweepFailure` records land in
    :attr:`failures`.  The helpers below treat holes explicitly:
    :meth:`to_table` renders ``FAILED`` rows, :meth:`column` yields NaN,
    :meth:`best` and :meth:`merged_telemetry` skip them.
    """

    cells: List[Optional[SweepCell]] = field(default_factory=list)
    failures: List[object] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every cell completed (no failure holes)."""
        return not self.failures and all(c is not None for c in self.cells)

    def completed_cells(self) -> List[SweepCell]:
        """The cells that produced results, grid order preserved."""
        return [cell for cell in self.cells if cell is not None]

    def to_table(self) -> str:
        """Aligned text table: one row per cell.

        Only scalar-valued metrics become columns; structured payloads
        riding in the metrics dict (array metrics, the per-worker
        ``telemetry`` snapshot) are skipped here and read through
        :meth:`column` / :meth:`merged_telemetry` instead.  Failed cells
        render as a row of ``FAILED`` markers so holes are visible in
        place, not silently dropped.
        """
        completed = self.completed_cells()
        failed_params = {
            failure.cell_index: dict(getattr(failure, "params", None) or {})
            for failure in self.failures
            if getattr(failure, "cell_index", None) is not None
        }
        if not completed and not failed_params:
            raise ValueError("sweep produced no cells")
        # Parameter columns are the union over completed cells and
        # failure records (first-seen order), so a failed cell's params
        # render inline — including when every cell failed and there is
        # no completed cell to take the columns from.
        param_names: List[str] = []
        for params in [c.parameters for c in completed] + list(
            failed_params.values()
        ):
            for name in params:
                if name not in param_names:
                    param_names.append(name)
        metric_names = (
            [
                name
                for name, value in completed[0].metrics.items()
                if isinstance(value, (int, float, np.number))
            ]
            if completed
            else []
        )
        # With no completed cell there are no metric columns; a status
        # column keeps the FAILED markers visible.
        value_names = metric_names if completed else ["status"]
        rows = []
        for index, cell in enumerate(self.cells):
            if cell is None:
                params = failed_params.get(index, {})
                rows.append(
                    [params.get(p, "?") for p in param_names]
                    + ["FAILED" for _ in value_names]
                )
            else:
                rows.append(
                    [cell.parameters.get(p, "") for p in param_names]
                    + [float(cell.metrics[m]) for m in metric_names]
                )
        return render_table(param_names + value_names, rows)

    def merged_telemetry(self) -> Optional[Dict]:
        """The fleet-wide telemetry snapshot across all cells.

        Each worker's final snapshot rides back in its cell's metrics
        under ``"telemetry"`` (specs with telemetry enabled); this merges
        them — counters and phase totals sum, gauges take the max,
        histograms merge bucket-wise.  ``None`` when no cell collected
        telemetry.
        """
        from repro.telemetry import merge_snapshots

        return merge_snapshots(
            cell.metrics.get("telemetry")
            for cell in self.cells
            if cell is not None
        )

    def best(self, metric: str, maximize: bool = True) -> SweepCell:
        """The cell optimizing ``metric`` (failure holes excluded)."""
        completed = self.completed_cells()
        if not completed:
            raise ValueError("sweep produced no cells")
        key = lambda cell: cell.metrics[metric]  # noqa: E731
        return max(completed, key=key) if maximize else min(completed, key=key)

    def column(self, name: str) -> np.ndarray:
        """Metric values across cells, in grid order (NaN for failed cells)."""
        return np.array(
            [
                float("nan") if cell is None else cell.metrics[name]
                for cell in self.cells
            ]
        )


def _learner_cell(
    shared_trace,
    num_peers: int,
    num_helpers: int,
    num_stages: int,
    u_max: float,
    params: Mapping[str, object],
    seed: int,
) -> Dict[str, float]:
    """One sweep cell, picklable for :class:`~repro.analysis.parallel.ParallelRunner`.

    ``shared_trace`` is a plain ``(T, H)`` array or a
    :class:`~repro.analysis.parallel.SharedArrayHandle`; handles resolve
    zero-copy inside the worker, so the trace is never pickled per cell.
    """
    from repro.analysis.parallel import resolve_shared_array

    trace = resolve_shared_array(shared_trace)
    learner_params = {k: v for k, v in params.items() if k != "replication"}
    population = LearnerPopulation(
        num_peers, num_helpers, u_max=u_max, rng=seed, **learner_params
    )
    trajectory = population.run(TraceCapacityProcess(trace), num_stages)
    return {
        name: fn(trajectory) for name, fn in default_metrics(u_max).items()
    }


def sweep_learner_parameters(
    grid,
    num_peers: int,
    num_helpers: int,
    num_stages: int,
    metrics: Mapping[str, MetricFunction] | None = None,
    stay_probability: float = 0.9,
    u_max: float = 900.0,
    rng: Seedish = None,
    runner: Optional["ParallelRunner"] = None,
    trace_handoff: str = "auto",
) -> SweepResult:
    """Sweep :class:`~repro.core.population.LearnerPopulation` parameters.

    ``grid`` maps LearnerPopulation keyword names (``epsilon``, ``delta``,
    ``mu``) to value lists — a plain mapping or a
    :class:`~repro.spec.SweepSpec` (whose ``replications`` also apply);
    the full cross product is evaluated against a single shared bandwidth
    realization.

    Pass a :class:`~repro.analysis.parallel.ParallelRunner` to fan cells
    across processes.  The parallel path computes :func:`default_metrics`
    in the workers (custom metric callables are usually closures and do
    not pickle); per-cell seeds are derived in grid order either way, so
    serial and parallel sweeps with the same ``rng`` agree cell-for-cell.
    The shared ``(T, H)`` trace is handed to workers through
    :func:`~repro.analysis.parallel.share_array` (``trace_handoff`` picks
    the placement: shared memory, on-disk ``.npy`` or inline) instead of
    being pickled into every cell payload.
    """
    from repro.spec.model import SweepSpec

    sweep = grid if isinstance(grid, SweepSpec) else SweepSpec(grid=dict(grid))
    if not sweep.grid:
        raise ValueError("grid must not be empty")
    parent = as_generator(rng)
    env = paper_bandwidth_process(
        num_helpers, stay_probability=stay_probability, rng=derive_seed(parent)
    )
    shared = record_capacity_trace(env, num_stages)

    if runner is not None:
        if metrics is not None:
            raise ValueError(
                "custom metrics are not picklable across workers; "
                "use the default metrics with a ParallelRunner"
            )
        from repro.analysis.parallel import share_array

        with share_array(shared, mode=trace_handoff) as handle:
            cell_fn = functools.partial(
                _learner_cell, handle, num_peers, num_helpers, num_stages, u_max
            )
            return runner.run_sweep(sweep, cell_fn, rng=parent)

    metric_fns = dict(metrics) if metrics is not None else default_metrics(u_max)
    result = SweepResult()
    for params in sweep.parameter_sets():
        population = LearnerPopulation(
            num_peers,
            num_helpers,
            u_max=u_max,
            rng=derive_seed(parent),
            **{k: v for k, v in params.items() if k != "replication"},
        )
        trajectory = population.run(TraceCapacityProcess(shared.copy()), num_stages)
        result.cells.append(
            SweepCell(
                parameters=params,
                metrics={
                    name: fn(trajectory) for name, fn in metric_fns.items()
                },
            )
        )
    return result


def sweep_environment_speed(
    stay_probabilities: Sequence[float],
    num_peers: int,
    num_helpers: int,
    num_stages: int,
    epsilon: float = 0.05,
    u_max: float = 900.0,
    metrics: Mapping[str, MetricFunction] | None = None,
    rng: Seedish = None,
) -> SweepResult:
    """Sweep the bandwidth chain's stay-probability (environment speed).

    Each cell gets its own realization (the parameter *is* the
    environment); learner parameters stay fixed.  Probes the paper's
    "slowly changing random process" assumption: tracking should hold up
    until the chain mixes faster than the learner's memory.
    """
    if not stay_probabilities:
        raise ValueError("need at least one stay probability")
    parent = as_generator(rng)
    metric_fns = dict(metrics) if metrics is not None else default_metrics(u_max)
    result = SweepResult()
    for stay in stay_probabilities:
        process = paper_bandwidth_process(
            num_helpers, stay_probability=stay, rng=derive_seed(parent)
        )
        population = LearnerPopulation(
            num_peers, num_helpers, epsilon=epsilon, u_max=u_max,
            rng=derive_seed(parent),
        )
        trajectory = population.run(process, num_stages)
        result.cells.append(
            SweepCell(
                parameters={"stay_probability": stay},
                metrics={
                    name: fn(trajectory) for name, fn in metric_fns.items()
                },
            )
        )
    return result
