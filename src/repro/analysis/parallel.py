"""Parallel experiment executor.

Sweeps and replication studies are embarrassingly parallel: every cell is
an independent simulation distinguished only by its parameters and seed.
:class:`ParallelRunner` fans cells across processes with
:mod:`multiprocessing` while keeping results **deterministic**: per-cell
seeds are drawn from the parent generator with
:func:`~repro.util.rng.derive_seed` *in submission order*, before any work
is dispatched, so the same parent seed yields the same per-cell seeds — and
therefore the same results — whether the sweep runs on 1 worker or 64.

Cell functions must be picklable (module-level functions, or
:func:`functools.partial` over one); the CLI's ``repro run`` command and
:func:`repro.analysis.sweeps.sweep_learner_parameters` both route through
this runner.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Mapping, Optional, Sequence

from repro.analysis.sweeps import SweepCell, SweepResult
from repro.util.rng import Seedish, as_generator, derive_seed

#: A cell evaluator: ``(parameters, seed) -> {metric_name: value}``.
CellFunction = Callable[[Mapping[str, object], int], Mapping[str, float]]


def _invoke(payload):
    fn, params, seed = payload
    return fn(params, seed)


class ParallelRunner:
    """Deterministic fan-out of experiment cells over worker processes.

    Parameters
    ----------
    workers:
        Process count; ``None`` uses the machine's CPU count and ``1``
        runs inline (no subprocesses — the mode to use under debuggers
        and in tests).
    mp_context:
        Optional :func:`multiprocessing.get_context` method name
        (``"fork"``, ``"spawn"``, ``"forkserver"``); ``None`` picks the
        platform default.
    """

    def __init__(
        self, workers: Optional[int] = None, mp_context: Optional[str] = None
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._workers = int(workers)
        self._mp_context = mp_context

    @property
    def workers(self) -> int:
        """Configured worker-process count."""
        return self._workers

    def map_cells(
        self,
        cell_fn: CellFunction,
        parameter_sets: Sequence[Mapping[str, object]],
        rng: Seedish = None,
    ) -> List[SweepCell]:
        """Evaluate ``cell_fn`` on every parameter set; order preserved.

        Seeds are derived from ``rng`` in submission order, so results are
        independent of the worker count.
        """
        parent = as_generator(rng)
        payloads = [
            (cell_fn, dict(params), derive_seed(parent))
            for params in parameter_sets
        ]
        if self._workers == 1 or len(payloads) <= 1:
            results = [_invoke(p) for p in payloads]
        else:
            ctx = multiprocessing.get_context(self._mp_context)
            with ctx.Pool(min(self._workers, len(payloads))) as pool:
                results = pool.map(_invoke, payloads)
        return [
            SweepCell(parameters=dict(params), metrics=dict(metrics))
            for (_, params, _), metrics in zip(payloads, results)
        ]

    def run_grid(
        self,
        grid: Mapping[str, Sequence[object]],
        cell_fn: CellFunction,
        rng: Seedish = None,
    ) -> SweepResult:
        """Cross-product sweep over ``grid``, returned as a
        :class:`~repro.analysis.sweeps.SweepResult`."""
        import itertools

        if not grid:
            raise ValueError("grid must not be empty")
        names = list(grid)
        parameter_sets = [
            dict(zip(names, combo))
            for combo in itertools.product(*(grid[name] for name in names))
        ]
        return SweepResult(cells=self.map_cells(cell_fn, parameter_sets, rng=rng))

    def run_replications(
        self,
        cell_fn: CellFunction,
        parameters: Mapping[str, object],
        replications: int,
        rng: Seedish = None,
    ) -> List[SweepCell]:
        """Run the same cell ``replications`` times with derived seeds."""
        if replications < 1:
            raise ValueError("replications must be >= 1")
        sets = [dict(parameters, replication=i) for i in range(replications)]
        return self.map_cells(cell_fn, sets, rng=rng)
