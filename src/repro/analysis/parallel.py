"""Parallel experiment executor.

Sweeps and replication studies are embarrassingly parallel: every cell is
an independent simulation distinguished only by its parameters and seed.
:class:`ParallelRunner` fans cells across processes with
:mod:`multiprocessing` while keeping results **deterministic**: per-cell
seeds are drawn from the parent generator with
:func:`~repro.util.rng.derive_seed` *in submission order*, before any work
is dispatched, so the same parent seed yields the same per-cell seeds — and
therefore the same results — whether the sweep runs on 1 worker or 64.

Cell functions must be picklable (module-level functions, or
:func:`functools.partial` over one); the CLI's ``repro run`` command and
:func:`repro.analysis.sweeps.sweep_learner_parameters` both route through
this runner.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import tempfile
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.analysis.sweeps import SweepCell, SweepResult
from repro.util.logconfig import get_logger
from repro.util.rng import Seedish, as_generator, derive_seed

logger = get_logger("analysis")

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.spec.model import SweepSpec

#: A cell evaluator: ``(parameters, seed) -> {metric_name: value}``.
CellFunction = Callable[[Mapping[str, object], int], Mapping[str, float]]

#: Handoff modes accepted by :func:`share_array`.
SHARE_MODES = ("auto", "shm", "file", "inline")

#: Result arrays at or above this size leave workers through
#: :func:`share_array` instead of riding in the pickled result payload.
#: Below it, a segment/file round-trip costs more than the pickle.
RESULT_SHARE_MIN_BYTES = 8192


class SharedArrayHandle:
    """A cheap-to-pickle reference to a read-only array shared with workers.

    Fanning a sweep across processes used to serialize the recorded
    ``(T, H)`` capacity trace into *every* cell payload — O(cells × T × H)
    pickling for data that is identical everywhere.  A handle carries only
    placement metadata (a :mod:`multiprocessing.shared_memory` segment
    name, or an on-disk ``.npy`` path); workers re-materialize the array
    zero-copy with :meth:`load`.

    The creating process owns the backing storage: call :meth:`cleanup`
    (or use the handle as a context manager) once the sweep is done.
    Arrays returned by :meth:`load` are views into the shared backing and
    stay valid as long as the handle they came from is alive; treat them
    as read-only.
    """

    def __init__(self, mode: str, shape, dtype: str, *, shm_name=None,
                 path=None, array=None) -> None:
        self._mode = mode
        self._shape = tuple(shape)
        self._dtype = str(dtype)
        self._shm_name = shm_name
        self._path = path
        self._array = array
        self._owner = True
        self._attached = None

    @property
    def mode(self) -> str:
        """Placement: ``"shm"``, ``"file"`` or ``"inline"``."""
        return self._mode

    @property
    def shape(self) -> tuple:
        """Shape of the shared array."""
        return self._shape

    def __getstate__(self):
        return {
            "mode": self._mode,
            "shape": self._shape,
            "dtype": self._dtype,
            "shm_name": self._shm_name,
            "path": self._path,
            "array": self._array if self._mode == "inline" else None,
        }

    def __setstate__(self, state):
        self.__init__(
            state["mode"], state["shape"], state["dtype"],
            shm_name=state["shm_name"], path=state["path"],
            array=state["array"],
        )
        self._owner = False  # unpickled copies must never unlink

    def load(self, writable: bool = False) -> np.ndarray:
        """Materialize the array (zero-copy for shm/file placements).

        By default the result is marked read-only in every mode: the
        backing is shared across cells (and, for shm, across processes),
        so an in-place mutation would corrupt every other consumer
        silently.  ``writable=True`` opts into a mutable view for
        deliberate cross-process exchange buffers (the sharded runtime's
        per-round row/action/utility lanes); it requires a shared
        backing, so ``"inline"`` handles reject it.
        """
        if self._mode == "inline":
            if writable:
                raise ValueError(
                    "inline handles have no shared backing to write to; "
                    "use mode='shm' or 'file'"
                )
            view = self._array.view()
            view.flags.writeable = False
            return view
        if self._mode == "file":
            return np.load(self._path, mmap_mode="r+" if writable else "r")
        if self._attached is None:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(name=self._shm_name)
            if not self._owner:
                # Attaching registers the segment with this process's
                # resource tracker, which would try to unlink it again at
                # exit (the creator already owns cleanup).  Deregister;
                # private API, so best-effort.
                try:  # pragma: no cover - tracker layout varies
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(shm._name, "shared_memory")
                except Exception:
                    pass
            self._attached = shm
        view = np.ndarray(
            self._shape, dtype=np.dtype(self._dtype), buffer=self._attached.buf
        )
        view.flags.writeable = bool(writable)
        return view

    def close(self) -> None:
        """Drop this process's attachment (keeps the backing alive)."""
        if self._attached is not None:
            self._attached.close()
            self._attached = None

    def disown(self) -> None:
        """Hand backing ownership to whoever unpickles this handle.

        The worker-side half of the *result* handoff: after placing a
        result array, the worker closes its attachment and (for shm)
        deregisters the segment from its resource tracker, so a worker
        exiting cannot reap storage the parent has yet to read.  After
        disowning, :meth:`cleanup` in this process never unlinks.
        """
        self._owner = False
        if self._mode == "shm" and self._attached is not None:
            try:  # pragma: no cover - tracker layout varies
                from multiprocessing import resource_tracker

                resource_tracker.unregister(
                    self._attached._name, "shared_memory"
                )
            except Exception:
                pass
        self.close()

    def adopt(self) -> None:
        """Take over backing cleanup (the parent-side half of the result
        handoff); after adopting, :meth:`cleanup` releases the storage."""
        self._owner = True

    def cleanup(self) -> None:
        """Release the backing storage (owner side; idempotent)."""
        if self._mode == "shm":
            self.close()
            if self._owner and self._shm_name is not None:
                from multiprocessing import shared_memory

                try:
                    seg = shared_memory.SharedMemory(name=self._shm_name)
                except FileNotFoundError:
                    pass
                else:
                    seg.close()
                    seg.unlink()
                self._shm_name = None
        elif self._mode == "file":
            if self._owner and self._path is not None:
                try:
                    os.unlink(self._path)
                except FileNotFoundError:
                    pass
                self._path = None
        self._array = None

    def __enter__(self) -> "SharedArrayHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()


def share_array(array: np.ndarray, mode: str = "auto") -> SharedArrayHandle:
    """Place ``array`` where worker processes can map it without pickling.

    ``mode``:

    * ``"shm"`` — a :mod:`multiprocessing.shared_memory` segment (fastest;
      lives in RAM/tmpfs);
    * ``"file"`` — an on-disk ``.npy`` workers memory-map (survives
      tmpfs-starved hosts and arbitrarily long traces);
    * ``"inline"`` — no sharing; the array rides inside each pickled
      payload (the pre-handoff behaviour, fine for tiny traces);
    * ``"auto"`` — ``"shm"`` when available, else ``"file"``.
    """
    arr = np.ascontiguousarray(array)
    if mode not in SHARE_MODES:
        raise ValueError(f"mode must be one of {SHARE_MODES}, got {mode!r}")
    if mode == "inline":
        return SharedArrayHandle(
            "inline", arr.shape, arr.dtype.str, array=arr
        )
    if mode in ("auto", "shm"):
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[...] = arr
            handle = SharedArrayHandle(
                "shm", arr.shape, arr.dtype.str, shm_name=shm.name
            )
            handle._attached = shm
            return handle
        except (ImportError, OSError):
            if mode == "shm":
                raise
    fd, path = tempfile.mkstemp(suffix=".npy", prefix="repro-trace-")
    os.close(fd)
    np.save(path, arr)
    return SharedArrayHandle("file", arr.shape, arr.dtype.str, path=path)


def resolve_shared_array(obj) -> np.ndarray:
    """Accept a plain array or a :class:`SharedArrayHandle`; return the array."""
    if isinstance(obj, SharedArrayHandle):
        return obj.load()
    return np.asarray(obj)


#: Handles this process has disowned but not yet handed to a consumer.
#: A disowned handle has no owner anywhere until the receiving process
#: materializes it — if this process dies in that window, nobody would
#: ever unlink the backing.  The atexit reaper below reclaims whatever
#: is still registered here when the process exits.
_UNDELIVERED: Dict[int, "SharedArrayHandle"] = {}


def _reap_undelivered() -> int:
    """Reclaim disowned-but-undelivered shared backings; count reaped.

    Registered with :mod:`atexit` so a worker that errors out (or is
    torn down) between placing its result arrays and delivering them
    does not orphan shared-memory segments until reboot.  Safe to call
    any time: delivered handles are deregistered first, so this only
    ever touches storage no other process will read.
    """
    reaped = 0
    while _UNDELIVERED:
        _, handle = _UNDELIVERED.popitem()
        try:
            handle.adopt()
            handle.cleanup()
            reaped += 1
        except Exception:  # pragma: no cover - teardown best-effort
            pass
    return reaped


atexit.register(_reap_undelivered)


def _mark_results_delivered(metrics) -> None:
    """Deregister ``metrics``' handles from the undelivered-reaper set.

    Called once the result payload has left this process (pool return /
    queue put): from that point the consumer owns materialization and
    cleanup, and reaping here would destroy data in flight.
    """
    for value in metrics.values():
        if isinstance(value, SharedArrayHandle):
            _UNDELIVERED.pop(id(value), None)


def _share_result_metrics(metrics, mode: str):
    """Worker side: move large array metrics into shared placements.

    Scalar metrics pass through; any :class:`numpy.ndarray` of at least
    :data:`RESULT_SHARE_MIN_BYTES` is placed via :func:`share_array` and
    replaced by its disowned handle, so the result payload pickles as
    metadata only.  If a placement fails partway (shm/disk exhaustion),
    the handles already created are released before re-raising — nothing
    disowned is left without an owner.  Successfully placed handles are
    registered for the atexit reaper until
    :func:`_mark_results_delivered` confirms the handoff.
    """
    shared = {}
    try:
        for name, value in metrics.items():
            if (
                isinstance(value, np.ndarray)
                and value.nbytes >= RESULT_SHARE_MIN_BYTES
            ):
                handle = share_array(value, mode=mode)
                handle.disown()
                _UNDELIVERED[id(handle)] = handle
                shared[name] = handle
            else:
                shared[name] = value
    except BaseException:
        for value in shared.values():
            if isinstance(value, SharedArrayHandle):
                _UNDELIVERED.pop(id(value), None)
                value.adopt()
                value.cleanup()
        raise
    return shared


def _materialize_result_metrics(metrics):
    """Parent side: resolve result handles into owned arrays.

    Loads each handle (zero-copy), copies into parent-owned memory, then
    adopts and releases the worker-created backing — callers only ever
    see plain values.  The backing is released even when loading fails,
    so a corrupt cell cannot leak the segments of its siblings.
    """
    out = {}
    error: Optional[Exception] = None
    for name, value in metrics.items():
        if isinstance(value, SharedArrayHandle):
            try:
                out[name] = np.array(value.load())
            except Exception as exc:  # keep releasing the siblings
                error = error if error is not None else exc
            finally:
                value.adopt()
                value.cleanup()
        else:
            out[name] = value
    if error is not None:
        raise error
    return out


class _CellFailure:
    """A worker-side cell exception, shipped back as data.

    Raising straight out of ``pool.map`` would discard every sibling
    cell's result payload — and with it the only references to their
    disowned shared-memory segments, leaking them until reboot.  Instead
    the worker returns this marker; the parent materializes (and thereby
    releases) all successful cells first, then raises.  Carries the cell
    identity (submission index + parameter overrides) so a failure in a
    4000-cell sweep names the cell to re-run.
    """

    def __init__(
        self,
        formatted_traceback: str,
        cell_index: Optional[int] = None,
        params: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.formatted_traceback = formatted_traceback
        self.cell_index = cell_index
        self.params = dict(params) if params is not None else None

    def describe(self) -> str:
        """One line naming the failed cell, for the raised error."""
        where = (
            "sweep cell failed in worker"
            if self.cell_index is None
            else f"sweep cell {self.cell_index} failed in worker"
        )
        if self.params:
            where += f" (params {self.params})"
        return where


def _invoke(payload):
    fn, params, seed, result_mode, index = payload
    if result_mode is None:
        return fn(params, seed)
    import traceback

    try:
        # Sharing stays inside the containment: a placement failure must
        # come back as data too, or pool.map would raise and strand every
        # sibling cell's disowned segments unmaterialized.
        shared = _share_result_metrics(fn(params, seed), result_mode)
    except Exception:
        return _CellFailure(traceback.format_exc(), index, params)
    # Returning into the pool machinery is the handoff: the parent
    # materializes from here on, so the worker's atexit reaper (which
    # fires when the pool tears down, possibly before the parent reads)
    # must no longer consider these segments undelivered.
    _mark_results_delivered(shared)
    return shared


def _invoke_contained(payload):
    """:func:`_invoke` with pool-equivalent error containment.

    Inline (1-worker) runs skip the sharing wrapper, so ``_invoke``
    raises instead of returning a :class:`_CellFailure`.  Containing the
    exception here keeps the failure contract identical across worker
    counts: every cell runs, and the caller gets one
    :class:`~repro.analysis.supervision.SweepError` naming the first
    failed cell.
    """
    import traceback

    try:
        return _invoke(payload)
    except Exception:
        _, params, _, _, index = payload
        return _CellFailure(traceback.format_exc(), index, params)


class ParallelRunner:
    """Deterministic fan-out of experiment cells over worker processes.

    Parameters
    ----------
    workers:
        Process count; ``None`` uses the machine's CPU count and ``1``
        runs inline (no subprocesses — the mode to use under debuggers
        and in tests).
    mp_context:
        Optional :func:`multiprocessing.get_context` method name
        (``"fork"``, ``"spawn"``, ``"forkserver"``); ``None`` picks the
        platform default.
    result_handoff:
        Placement for large array-valued cell results coming *back* from
        workers (the mirror of the input-side trace handoff):
        ``"auto"`` (shared memory, falling back to on-disk ``.npy``),
        ``"shm"``, ``"file"``, or ``"inline"`` to pickle results into the
        payload like any scalar.  Inline (1-worker) runs never share.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        mp_context: Optional[str] = None,
        result_handoff: str = "auto",
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if result_handoff not in SHARE_MODES:
            raise ValueError(
                f"result_handoff must be one of {SHARE_MODES}, "
                f"got {result_handoff!r}"
            )
        self._workers = int(workers)
        self._mp_context = mp_context
        self._result_handoff = result_handoff

    @property
    def workers(self) -> int:
        """Configured worker-process count."""
        return self._workers

    def map_cells(
        self,
        cell_fn: CellFunction,
        parameter_sets: Sequence[Mapping[str, object]],
        rng: Seedish = None,
        *,
        execution=None,
        store=None,
        spec_digest: Optional[str] = None,
        failures_out: Optional[list] = None,
    ) -> List[Optional[SweepCell]]:
        """Evaluate ``cell_fn`` on every parameter set; order preserved.

        Seeds are derived from ``rng`` in submission order, so results are
        independent of the worker count — and of retries: a cell's seed
        is fixed before any dispatch, so recomputing it (after a worker
        crash, or on resume from a store) is bit-identical.

        With an ``execution`` policy (an :class:`~repro.spec.ExecutionSpec`)
        that enables supervision, or with a ``store`` attached, cells run
        under :class:`~repro.analysis.supervision.Supervisor` — one
        process per cell, retries with backoff, and per-cell store
        commits.  ``store`` (a :class:`~repro.store.ResultsStore`) is
        consulted *before* dispatch: cached cells never reach a worker.
        Under ``on_failure="record"`` a cell that fails beyond recovery
        yields ``None`` in the returned list and its
        :class:`~repro.analysis.supervision.SweepFailure` is appended to
        ``failures_out`` (when given); under the default ``"raise"`` a
        :class:`~repro.analysis.supervision.SweepError` is raised after
        every other cell has been materialized.
        """
        parent = as_generator(rng)
        # Seeds are drawn for every cell up front, cache hits included —
        # consulting the store must not shift the RNG stream of the
        # cells that still need computing.
        seeds = [derive_seed(parent) for _ in parameter_sets]
        if execution is None:
            from repro.spec.model import ExecutionSpec

            execution = ExecutionSpec()
        if store is not None or execution.supervised:
            return self._map_cells_supervised(
                cell_fn, parameter_sets, seeds, execution,
                store, spec_digest, failures_out,
            )
        pooled = self._workers > 1 and len(parameter_sets) > 1
        result_mode = (
            self._result_handoff
            if pooled and self._result_handoff != "inline"
            else None
        )
        payloads = [
            (cell_fn, dict(params), seeds[i], result_mode, i)
            for i, params in enumerate(parameter_sets)
        ]
        logger.debug(
            "mapping %d cell(s) over %d worker(s) (handoff=%s)",
            len(payloads), self._workers, self._result_handoff,
        )
        if not pooled:
            results = [_invoke_contained(p) for p in payloads]
        else:
            ctx = multiprocessing.get_context(self._mp_context)
            with ctx.Pool(min(self._workers, len(payloads))) as pool:
                results = pool.map(_invoke, payloads)
        # Materialize every successful cell BEFORE raising any failure:
        # materialization is also what releases the worker-created shared
        # backings, so an early raise would leak the siblings' segments.
        cells: List[Optional[SweepCell]] = []
        failure: Optional[_CellFailure] = None
        for (_, params, _, _, index), metrics in zip(payloads, results):
            if isinstance(metrics, _CellFailure):
                failure = failure if failure is not None else metrics
                cells.append(None)
                continue
            try:
                materialized = _materialize_result_metrics(dict(metrics))
            except Exception as exc:
                # A vanished backing (reaped shm segment / deleted .npy)
                # must not strand the remaining cells' segments.
                failure = failure if failure is not None else _CellFailure(
                    f"result materialization failed: {exc!r}", index, params
                )
                cells.append(None)
                continue
            cells.append(
                SweepCell(parameters=dict(params), metrics=materialized)
            )
        if failure is not None:
            from repro.analysis.supervision import SweepError, SweepFailure

            logger.error("%s", failure.describe())
            raise SweepError(
                SweepFailure(
                    cell_index=(
                        failure.cell_index
                        if failure.cell_index is not None
                        else -1
                    ),
                    params=dict(failure.params or {}),
                    spec_digest=spec_digest,
                    traceback=failure.formatted_traceback,
                )
            )
        return cells

    def _map_cells_supervised(
        self,
        cell_fn: CellFunction,
        parameter_sets: Sequence[Mapping[str, object]],
        seeds: Sequence[int],
        execution,
        store,
        spec_digest: Optional[str],
        failures_out: Optional[list],
    ) -> List[Optional[SweepCell]]:
        """Supervised/durable fan-out behind :meth:`map_cells`."""
        from repro.analysis.supervision import Supervisor, SweepError
        from repro.telemetry import get_telemetry

        tel = get_telemetry()
        payloads = [
            (cell_fn, dict(params), seeds[i], i)
            for i, params in enumerate(parameter_sets)
        ]
        results: Dict[int, Mapping[str, object]] = {}
        if store is not None:
            from repro.store import cell_digest

            hits = tel.counter("sweep.cache_hits")
            for _, params, seed, index in payloads:
                cached = store.get(spec_digest, cell_digest(params, seed))
                if cached is not None:
                    results[index] = cached
                    hits.inc()
            if results:
                logger.info(
                    "results store: %d/%d cell(s) cached for spec %s",
                    len(results), len(payloads), spec_digest,
                )
        to_run = [p for p in payloads if p[3] not in results]
        failures = {}
        if to_run:
            result_mode = (
                self._result_handoff
                if self._result_handoff != "inline"
                else None
            )
            if self._workers == 1 and not execution.supervised:
                # Store-only single-worker runs stay inline (no process
                # per cell) but still commit after every cell.
                self._run_inline_with_store(
                    to_run, results, store, spec_digest, tel
                )
            else:
                supervisor = Supervisor(
                    workers=min(self._workers, len(to_run)),
                    execution=execution,
                    mp_context=self._mp_context,
                    store=store,
                    spec_digest=spec_digest,
                    post_share_hook=getattr(self, "_post_share_hook", None),
                )
                run_results, failures = supervisor.run(
                    to_run, result_mode, execution.heartbeat_interval
                )
                results.update(run_results)
        cells: List[Optional[SweepCell]] = []
        ordered_failures = []
        for _, params, _, index in payloads:
            if index in results:
                cells.append(
                    SweepCell(parameters=dict(params), metrics=results[index])
                )
            else:
                cells.append(None)
                if index in failures:
                    ordered_failures.append(failures[index])
        if ordered_failures:
            if execution.on_failure == "raise":
                raise SweepError(ordered_failures[0])
            if failures_out is not None:
                failures_out.extend(ordered_failures)
        return cells

    def _run_inline_with_store(
        self, payloads, results, store, spec_digest, tel
    ) -> None:
        from repro.store import cell_digest

        commits = tel.counter("sweep.store_commits")
        for fn, params, seed, index in payloads:
            metrics = dict(fn(params, seed))
            results[index] = metrics
            if store is None:
                continue
            try:
                if store.put(
                    spec_digest, cell_digest(params, seed), metrics,
                    params=params, seed=seed,
                ):
                    commits.inc()
            except Exception as exc:
                logger.warning(
                    "store commit failed for cell %d: %s", index, exc
                )

    def run_sweep(
        self,
        sweep: "SweepSpec",
        cell_fn: CellFunction,
        rng: Seedish = None,
        *,
        execution=None,
        store=None,
        spec_digest: Optional[str] = None,
    ) -> SweepResult:
        """Evaluate a :class:`~repro.spec.model.SweepSpec`'s cells.

        Expands the sweep's grid × replications in declaration order and
        maps ``cell_fn`` over the override sets; the spec layer's
        ``ExperimentSpec.sweep`` and the grid/replication helpers below
        all route through here.  ``execution``/``store``/``spec_digest``
        select fault-tolerant execution (see :meth:`map_cells`); cells
        that fail beyond recovery under ``on_failure="record"`` surface
        on :attr:`SweepResult.failures` with ``None`` holes in the cell
        list.
        """
        failures: list = []
        cells = self.map_cells(
            cell_fn,
            sweep.parameter_sets(),
            rng=rng,
            execution=execution,
            store=store,
            spec_digest=spec_digest,
            failures_out=failures,
        )
        return SweepResult(cells=cells, failures=failures)

    def run_grid(
        self,
        grid: Mapping[str, Sequence[object]],
        cell_fn: CellFunction,
        rng: Seedish = None,
    ) -> SweepResult:
        """Cross-product sweep over ``grid``, returned as a
        :class:`~repro.analysis.sweeps.SweepResult`."""
        from repro.spec.model import SweepSpec

        if not grid:
            raise ValueError("grid must not be empty")
        return self.run_sweep(SweepSpec(grid=grid), cell_fn, rng=rng)

    def run_replications(
        self,
        cell_fn: CellFunction,
        parameters: Mapping[str, object],
        replications: int,
        rng: Seedish = None,
    ) -> List[SweepCell]:
        """Run the same cell ``replications`` times with derived seeds."""
        if replications < 1:
            raise ValueError("replications must be >= 1")
        sets = [dict(parameters, replication=i) for i in range(replications)]
        return self.map_cells(cell_fn, sets, rng=rng)
