"""Spec-driven fault injection for sweep execution.

The chaos harness the fault-tolerance tests (and the CI ``chaos-guard``
lane) drive: a :class:`ChaosPlan` wraps a cell function so that chosen
cells crash the worker process outright, hang forever, start slow, or
land in a store whose payload then rots on disk.  Faults are *one-shot
by default and coordinated across processes* through marker files in a
plan directory — claiming a marker is an atomic ``open(..., "x")``, so
exactly one worker attempt injects each fault no matter how many
processes race, and the retried attempt runs clean.  That is precisely
the shape of real infrastructure faults the supervisor is built for:
the fault happens, the retry succeeds, and the retried cell must be
bit-identical to a never-faulted run.

The wrapped cell function stays picklable (a :func:`functools.partial`
over a module-level function), so plans work across ``fork`` and
``spawn`` start methods alike.
"""

from __future__ import annotations

import functools
import os
import time
from typing import Any, Dict, Mapping, Optional

#: Injectable fault modes.
CHAOS_MODES = ("crash", "hang", "slow_start")


def _claim(coord_dir: str, token: str, times: int) -> bool:
    """Atomically claim one of ``times`` injection slots for ``token``.

    Returns True when this caller won a slot (and must inject); False
    once all slots are spent — the cross-process "inject only N times"
    primitive, safe under arbitrary worker races and retries.
    """
    for slot in range(times):
        path = os.path.join(coord_dir, f"{token}.{slot}")
        try:
            with open(path, "x"):
                return True
        except FileExistsError:
            continue
        except OSError:
            return False
    return False


def _claim_sequence(coord_dir: str) -> int:
    """Claim the next global execution slot; returns this caller's rank."""
    rank = 0
    while True:
        path = os.path.join(coord_dir, f"seq.{rank}")
        try:
            with open(path, "x"):
                return rank
        except FileExistsError:
            rank += 1
        except OSError:
            return -1


def _chaos_cell(
    inner_fn,
    coord_dir: str,
    faults: Dict[str, Dict[str, Any]],
    key_param: str,
    crash_after: Optional[int],
    params: Mapping[str, Any],
    seed: int,
):
    """The wrapped cell: maybe inject a fault, then run the real cell."""
    if crash_after is not None:
        if _claim_sequence(coord_dir) == crash_after:
            os._exit(113)
    fault = faults.get(str(params.get(key_param)))
    if fault is not None:
        mode = fault["mode"]
        times = int(fault.get("times", 1))
        token = f"{key_param}-{params.get(key_param)}-{mode}"
        if _claim(coord_dir, token, times):
            if mode == "crash":
                os._exit(113)
            elif mode == "hang":
                time.sleep(float(fault.get("seconds", 3600.0)))
            elif mode == "slow_start":
                time.sleep(float(fault.get("seconds", 1.0)))
    return inner_fn(params, seed)


class ChaosPlan:
    """A declarative set of faults to inject into one sweep.

    ``coord_dir`` must be a directory shared by all worker processes
    (tests use a tmp dir); it holds the one-shot claim markers, so a
    fresh directory means a fresh plan.  Faults target cells by the
    value of ``key_param`` in their parameter overrides (default
    ``"replication"``, the knob replication sweeps always carry), or
    positionally via :meth:`crash_after`.
    """

    def __init__(self, coord_dir: str, key_param: str = "replication") -> None:
        os.makedirs(coord_dir, exist_ok=True)
        self.coord_dir = str(coord_dir)
        self.key_param = key_param
        self._faults: Dict[str, Dict[str, Any]] = {}
        self._crash_after: Optional[int] = None

    def crash_cell(self, key, times: int = 1) -> "ChaosPlan":
        """Kill the worker (hard ``os._exit``) running the keyed cell."""
        self._faults[str(key)] = {"mode": "crash", "times": times}
        return self

    def hang_cell(self, key, seconds: float = 3600.0, times: int = 1) -> "ChaosPlan":
        """Freeze the keyed cell mid-run (caught by timeout/heartbeat)."""
        self._faults[str(key)] = {
            "mode": "hang", "seconds": seconds, "times": times,
        }
        return self

    def slow_cell(self, key, seconds: float, times: int = 1) -> "ChaosPlan":
        """Delay the keyed cell's start (exercises timeout tuning)."""
        self._faults[str(key)] = {
            "mode": "slow_start", "seconds": seconds, "times": times,
        }
        return self

    def crash_after(self, executions: int) -> "ChaosPlan":
        """Kill whichever worker claims the ``executions``-th cell run.

        Counts every cell execution across all workers and attempts (a
        global sequence claimed through marker files), so "crash after
        k cells" does not depend on scheduling order.
        """
        self._crash_after = int(executions)
        return self

    def wrap(self, cell_fn):
        """Wrap ``cell_fn`` with this plan; the result stays picklable."""
        return functools.partial(
            _chaos_cell,
            cell_fn,
            self.coord_dir,
            dict(self._faults),
            self.key_param,
            self._crash_after,
        )


def corrupt_array_payload(store_root, which: int = 0) -> Optional[str]:
    """Flip a byte in a committed store entry's array payload.

    The bit-rot half of the chaos harness: returns the path corrupted
    (or ``None`` when the store holds no array payloads), after which
    ``ResultsStore.get``/``verify`` must detect the checksum mismatch
    and quarantine the entry rather than serve the rotten data.
    """
    from repro.store.results import iter_array_payloads

    payloads = list(iter_array_payloads(store_root))
    if not payloads:
        return None
    path = payloads[which % len(payloads)]
    with open(path, "r+b") as fh:
        fh.seek(-1, os.SEEK_END)
        last = fh.read(1)
        fh.seek(-1, os.SEEK_END)
        fh.write(bytes([last[0] ^ 0xFF]))
    return str(path)
