"""Helper-bandwidth-to-channel allocation policies.

An allocation is a matrix ``B`` of shape ``(H, C)`` with ``B[j, c] >= 0``
and ``sum_c B[j, c] = C_j``: helper ``j`` dedicates ``B[j, c]`` of its
upload bandwidth to channel ``c``.  Within a channel, peers then share the
per-helper slices exactly as in the single-channel game.
"""

from __future__ import annotations


import numpy as np

from repro.util.validation import require_positive


def _validate_capacities(capacities: np.ndarray) -> np.ndarray:
    caps = np.asarray(capacities, dtype=float)
    if caps.ndim != 1 or caps.size == 0:
        raise ValueError("capacities must be a non-empty 1-D vector")
    if np.any(caps < 0) or np.any(~np.isfinite(caps)):
        raise ValueError("capacities must be finite and non-negative")
    return caps


def equal_allocation(capacities: np.ndarray, num_channels: int) -> np.ndarray:
    """Every helper splits evenly across channels: ``B[j, c] = C_j / C``."""
    caps = _validate_capacities(capacities)
    if num_channels < 1:
        raise ValueError("num_channels must be >= 1")
    return np.tile(caps[:, None] / num_channels, (1, num_channels))


def proportional_allocation(
    capacities: np.ndarray, channel_demands: np.ndarray
) -> np.ndarray:
    """Every helper splits proportionally to aggregate channel demand."""
    caps = _validate_capacities(capacities)
    demands = np.asarray(channel_demands, dtype=float)
    if demands.ndim != 1 or demands.size == 0 or np.any(demands < 0):
        raise ValueError("channel_demands must be a non-negative 1-D vector")
    total = demands.sum()
    if total <= 0:
        raise ValueError("channel_demands must not be all zero")
    weights = demands / total
    return caps[:, None] * weights[None, :]


class AdaptiveAllocator:
    """Multiplicative-weights allocation driven by observed channel deficits.

    Maintains per-helper channel weights ``w[j, c]``; after each stage the
    system reports per-channel deficits (unserved demand), and weights move
    toward hungry channels:

        w[j, c] <- w[j, c] * exp(eta * deficit_c / demand_scale)

    followed by per-helper normalization.  With all-zero deficits the
    allocation is stationary; a floor keeps every channel minimally served
    so selection learners never lose their action set.
    """

    def __init__(
        self,
        num_helpers: int,
        num_channels: int,
        learning_rate: float = 0.2,
        floor: float = 0.02,
        demand_scale: float = 1000.0,
    ) -> None:
        if num_helpers < 1 or num_channels < 1:
            raise ValueError("num_helpers and num_channels must be >= 1")
        require_positive(learning_rate, "learning_rate")
        require_positive(demand_scale, "demand_scale")
        if not 0 <= floor < 1.0 / num_channels:
            raise ValueError("floor must lie in [0, 1/num_channels)")
        self._h = int(num_helpers)
        self._c = int(num_channels)
        self._eta = float(learning_rate)
        self._floor = float(floor)
        self._scale = float(demand_scale)
        self._weights = np.full((self._h, self._c), 1.0 / self._c)

    @property
    def weights(self) -> np.ndarray:
        """Current per-helper channel weights (rows sum to 1)."""
        return self._weights.copy()

    def allocation(self, capacities: np.ndarray) -> np.ndarray:
        """Materialize ``B = diag(C) @ weights`` for this stage."""
        caps = _validate_capacities(capacities)
        if caps.size != self._h:
            raise ValueError(f"expected {self._h} capacities, got {caps.size}")
        return caps[:, None] * self._weights

    def update(self, channel_deficits: np.ndarray) -> None:
        """Shift weights toward channels with positive deficit."""
        deficits = np.asarray(channel_deficits, dtype=float)
        if deficits.shape != (self._c,):
            raise ValueError(f"expected {self._c} channel deficits")
        if np.any(deficits < 0) or np.any(~np.isfinite(deficits)):
            raise ValueError("deficits must be finite and non-negative")
        # Shift the exponent so the largest boost is exp(0); the per-row
        # normalization below makes this exactly equivalent while avoiding
        # overflow for large deficits.
        exponent = self._eta * deficits / self._scale
        boost = np.exp(exponent - exponent.max())
        self._weights = self._weights * boost[None, :]
        row_sums = self._weights.sum(axis=1, keepdims=True)
        # Guard against total underflow (all boosts collapsing to zero).
        dead = row_sums[:, 0] <= 0
        if np.any(dead):
            self._weights[dead] = np.where(
                exponent == exponent.max(), 1.0, 0.0
            )[None, :]
        self._weights /= self._weights.sum(axis=1, keepdims=True)
        if self._floor > 0:
            self._weights = _project_rows_above_floor(self._weights, self._floor)

    def reset(self) -> None:
        """Back to the uniform split."""
        self._weights = np.full((self._h, self._c), 1.0 / self._c)


def _project_rows_above_floor(weights: np.ndarray, floor: float) -> np.ndarray:
    """Project each row of a stochastic matrix onto the simplex slice
    ``{w : w_c >= floor, sum w = 1}``.

    Entries below the floor are pinned at it; the remaining mass is scaled
    over the free entries.  Scaling can push further entries under the
    floor, so iterate (at most ``C`` rounds).
    """
    out = weights.copy()
    num_channels = out.shape[1]
    for row in out:
        pinned = np.zeros(num_channels, dtype=bool)
        for _ in range(num_channels):
            below = (~pinned) & (row < floor)
            if not below.any():
                break
            pinned |= below
            row[pinned] = floor
            free = ~pinned
            free_mass = 1.0 - pinned.sum() * floor
            current = row[free].sum()
            if current <= 0:
                row[free] = free_mass / max(1, free.sum())
            else:
                row[free] *= free_mass / current
    return out


def allocation_is_valid(
    allocation: np.ndarray, capacities: np.ndarray, atol: float = 1e-6
) -> bool:
    """Check ``B >= 0`` and ``sum_c B[j, c] = C_j`` (within tolerance)."""
    b = np.asarray(allocation, dtype=float)
    caps = _validate_capacities(capacities)
    if b.ndim != 2 or b.shape[0] != caps.size:
        return False
    if np.any(b < -atol):
        return False
    return bool(np.all(np.abs(b.sum(axis=1) - caps) <= atol * np.maximum(caps, 1.0)))
