"""Joint bandwidth allocation + helper selection (paper Sec. V future work).

Every stage:

1. helpers publish per-channel bandwidth slices ``B[j, c]`` (from a static
   or adaptive allocation policy);
2. each channel's peers play one stage of the helper-selection game over
   their channel's slices, using their own R2HS learners;
3. per-channel deficits (demand not covered by the received shares) feed
   back into the adaptive allocator.

All channels see all helpers (the allocation layer, not helper
partitioning, differentiates channels — the richer model the paper's
future-work sentence points at).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.population import LearnerPopulation
from repro.game.repeated_game import CapacityProcess
from repro.multichannel.allocation import AdaptiveAllocator, equal_allocation
from repro.util.rng import Seedish, as_generator, spawn


@dataclass
class JointTrace:
    """Per-stage history of a joint allocation + selection run."""

    welfare: np.ndarray           # (T,) total shares delivered
    channel_deficits: np.ndarray  # (T, C) unmet demand per channel
    allocations: np.ndarray       # (T, H, C) bandwidth slices
    server_load: np.ndarray       # (T,) total deficit (server top-up)

    @property
    def num_stages(self) -> int:
        """Number of stages ``T``."""
        return self.welfare.size

    def tail_mean_deficit(self, fraction: float = 0.5) -> np.ndarray:
        """Steady-state mean deficit per channel."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must lie in (0, 1]")
        start = int(round(self.num_stages * (1.0 - fraction)))
        return self.channel_deficits[start:].mean(axis=0)


class JointMultiChannelSystem:
    """Stage-synchronous joint allocation + selection runner.

    Parameters
    ----------
    peers_per_channel:
        Population size of each channel (length ``C``).
    demands_per_peer:
        Per-channel playback bitrate (length ``C``).
    capacity_process:
        Helper bandwidth environment over all ``H`` helpers.
    allocator:
        ``None`` for a static equal split, or an
        :class:`~repro.multichannel.allocation.AdaptiveAllocator`.
    epsilon, delta, u_max:
        R2HS learner parameters shared by all channels' populations.
    """

    def __init__(
        self,
        peers_per_channel: Sequence[int],
        demands_per_peer: Sequence[float],
        capacity_process: CapacityProcess,
        allocator: Optional[AdaptiveAllocator] = None,
        epsilon: float = 0.05,
        delta: float = 0.1,
        u_max: float = 900.0,
        rng: Seedish = None,
    ) -> None:
        counts = [int(n) for n in peers_per_channel]
        demands = [float(d) for d in demands_per_peer]
        if not counts or len(counts) != len(demands):
            raise ValueError(
                "peers_per_channel and demands_per_peer must be non-empty "
                "and of equal length"
            )
        if any(n < 1 for n in counts):
            raise ValueError("every channel needs at least one peer")
        if any(d <= 0 for d in demands):
            raise ValueError("demands must be positive")
        self._counts = counts
        self._demands = demands
        self._process = capacity_process
        self._h = capacity_process.num_helpers
        self._c = len(counts)
        if allocator is not None and (
            allocator.weights.shape != (self._h, self._c)
        ):
            raise ValueError("allocator shape does not match helpers/channels")
        self._allocator = allocator
        parent = as_generator(rng)
        self._populations: List[LearnerPopulation] = [
            LearnerPopulation(
                num_peers=counts[c],
                num_helpers=self._h,
                epsilon=epsilon,
                delta=delta,
                u_max=u_max,
                rng=spawn(parent),
            )
            for c in range(self._c)
        ]

    @property
    def num_channels(self) -> int:
        """Number of channels ``C``."""
        return self._c

    @property
    def num_helpers(self) -> int:
        """Number of helpers ``H``."""
        return self._h

    @property
    def populations(self) -> List[LearnerPopulation]:
        """Per-channel learner populations."""
        return self._populations

    def run(self, num_stages: int) -> JointTrace:
        """Advance the joint system ``num_stages`` stages."""
        if num_stages < 1:
            raise ValueError("num_stages must be >= 1")
        welfare = np.empty(num_stages)
        deficits = np.empty((num_stages, self._c))
        allocations = np.empty((num_stages, self._h, self._c))
        server_load = np.empty(num_stages)
        for t in range(num_stages):
            caps = np.asarray(self._process.capacities(), dtype=float)
            if self._allocator is None:
                slices = equal_allocation(caps, self._c)
            else:
                slices = self._allocator.allocation(caps)
            total_share = 0.0
            for c, population in enumerate(self._populations):
                channel_caps = slices[:, c]
                actions = population.act_all()
                loads = np.bincount(actions, minlength=self._h)
                shares = channel_caps[actions] / loads[actions]
                population.observe_all(actions, shares)
                total_share += float(shares.sum())
                deficits[t, c] = float(
                    np.maximum(self._demands[c] - shares, 0.0).sum()
                )
            welfare[t] = total_share
            allocations[t] = slices
            server_load[t] = float(deficits[t].sum())
            if self._allocator is not None:
                self._allocator.update(deficits[t])
            self._process.advance()
        return JointTrace(
            welfare=welfare,
            channel_deficits=deficits,
            allocations=allocations,
            server_load=server_load,
        )
