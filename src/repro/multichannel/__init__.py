"""Multi-channel extension (the paper's stated future work, Sec. V).

"Our future work is to extend the RTHS to the problem of joint bandwidth
allocation in the helper level to the video channels and helper selection
in the peer level."  This package implements that extension:

* :mod:`repro.multichannel.allocation` — policies dividing each helper's
  upload bandwidth among channels: equal split, demand-proportional split,
  and an adaptive multiplicative-weights allocator driven by observed
  per-channel deficits.
* :mod:`repro.multichannel.joint` — the joint system: every stage, helpers
  allocate bandwidth to channels and each channel's peers run R2HS helper
  selection over their channel's slices.

The ablation bench contrasts adaptive allocation + RTHS selection against
a static equal split, showing the allocation layer absorbing popularity
skew that selection alone cannot.
"""

from repro.multichannel.allocation import (
    AdaptiveAllocator,
    equal_allocation,
    proportional_allocation,
)
from repro.multichannel.joint import JointMultiChannelSystem, JointTrace

__all__ = [
    "equal_allocation",
    "proportional_allocation",
    "AdaptiveAllocator",
    "JointMultiChannelSystem",
    "JointTrace",
]
