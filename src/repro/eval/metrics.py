"""Prequential metrics over a system trace.

Every simulation round is already test-then-train — peers *act* on what
they have learned so far (test), then *observe* the realized shares
(train) — so a recorded :class:`~repro.sim.trace.SystemTrace` **is** the
prequential stream.  This module reduces one trace into the four rates
the evaluator compares learners on, both cumulatively and per window:

* **reward** — mean per-peer utility: ``sum(welfare) / sum(online)``.
  Higher is better; this is the quantity the paper's welfare figures
  plot, normalized so scenarios with churn stay comparable.
* **regret** — per-peer *excess* origin load: ``sum(max(0, server_load -
  min_deficit)) / sum(online)``.  The minimum bandwidth deficit is the
  structural floor no helper-selection policy can beat (Fig. 5's bound),
  so anything above it is load the learner failed to move onto helpers.
  Lower is better; an omniscient allocation scores 0.
* **stall rate** — fraction of issued demand served by nobody:
  ``sum(max(0, demand - welfare - server_load)) / sum(demand)``.  Only
  non-zero when the origin server's capacity is finite (the adversarial
  corpus pins finite ``server_capacity`` for exactly this reason); with
  an unbounded origin the server absorbs every deficit and stalls are
  structurally zero.
* **switch rate** — helper-connection churn per online peer per round.
  When the trace recorded per-peer actions (``record_peers=True``, fixed
  population) this is exact: the fraction of peers whose helper choice
  changed since the previous round.  Otherwise it falls back to a
  load-movement proxy, ``0.5 * sum(|loads_t - loads_{t-1}|)`` per online
  peer — a lower bound on true switching that also counts churn-induced
  moves; the result dict labels which source was used.

All rates are ratio-of-sums (see :func:`repro.eval.windows.window_ratios`)
and every division guards against an empty denominator, so degenerate
windows report 0.0 instead of NaN.  Nothing here depends on wall-clock
time — results are a pure function of the trace, which is what makes
evaluation cells bit-reproducible and cacheable.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from repro.sim.trace import SystemTrace
from repro.telemetry import get_telemetry

from repro.eval.windows import window_lengths, window_ratios

#: Scalar metric keys every prequential result carries, in report order.
SCALAR_METRICS = ("reward", "regret", "stall_rate", "switch_rate")

#: Per-window array keys every prequential result carries.
WINDOW_METRICS = (
    "window_reward",
    "window_regret",
    "window_stall_rate",
    "window_switch_rate",
)


def _ratio(numerator: float, denominator: float) -> float:
    return float(numerator / denominator) if denominator > 0 else 0.0


def _switch_series(trace: SystemTrace) -> tuple[np.ndarray, bool]:
    """Per-round count of helper switches, and whether it is exact.

    Exact when per-peer actions were recorded (fixed population); proxy
    from load movement otherwise.  Round 0 is defined as zero switches —
    the first choice is not a switch.
    """
    if trace.actions is not None and len(trace.actions) == trace.num_rounds:
        actions = np.stack(trace.actions)
        switches = np.zeros(trace.num_rounds, dtype=float)
        if trace.num_rounds > 1:
            switches[1:] = (actions[1:] != actions[:-1]).sum(axis=1)
        return switches, True
    loads = trace.loads
    moved = np.zeros(trace.num_rounds, dtype=float)
    if trace.num_rounds > 1:
        moved[1:] = 0.5 * np.abs(loads[1:] - loads[:-1]).sum(axis=1)
    return moved, False


def prequential_metrics(
    trace: SystemTrace, window: int
) -> Dict[str, Union[float, np.ndarray]]:
    """Reduce one trace to cumulative + per-window prequential metrics.

    Returns a flat dict: the scalars in :data:`SCALAR_METRICS`, the
    per-window float arrays in :data:`WINDOW_METRICS` (last window
    partial; see :mod:`repro.eval.windows`), plus bookkeeping scalars
    (``windows``, ``window_size``, ``rounds``, ``switch_exact``,
    ``final_window_reward``, ``final_window_regret``).  The dict is
    JSON-plain-plus-arrays, the shape :class:`~repro.store.ResultsStore`
    persists and :class:`~repro.analysis.parallel.ParallelRunner` hands
    back from workers.
    """
    if trace.num_rounds == 0:
        raise ValueError("trace is empty; nothing to evaluate")
    tel = get_telemetry()
    with tel.phase("eval.window"):
        online = trace.online_peers.astype(float)
        demand = trace.total_demand
        welfare = trace.welfare
        excess = np.maximum(0.0, trace.server_load - trace.min_deficit)
        unserved = np.maximum(0.0, demand - welfare - trace.server_load)
        switches, exact = _switch_series(trace)

        result: Dict[str, Union[float, np.ndarray]] = {
            "reward": _ratio(welfare.sum(), online.sum()),
            "regret": _ratio(excess.sum(), online.sum()),
            "stall_rate": _ratio(unserved.sum(), demand.sum()),
            "switch_rate": _ratio(switches.sum(), online.sum()),
            "window_reward": window_ratios(welfare, online, window),
            "window_regret": window_ratios(excess, online, window),
            "window_stall_rate": window_ratios(unserved, demand, window),
            "window_switch_rate": window_ratios(switches, online, window),
        }
        num_windows = window_lengths(trace.num_rounds, window).size
        result["windows"] = float(num_windows)
        result["window_size"] = float(window)
        result["rounds"] = float(trace.num_rounds)
        result["switch_exact"] = float(exact)
        result["final_window_reward"] = float(result["window_reward"][-1])
        result["final_window_regret"] = float(result["window_regret"][-1])
    tel.counter("eval.windows").inc(num_windows)
    return result
