"""The prequential evaluation harness: learners × scenarios, one command.

:class:`EvalSpec` declares a comparison matrix — which registered
scenarios, which registered learners, how many rounds, which window size
— and :class:`Evaluator` runs every cell through the existing sweep
machinery: seeds derived up front in matrix order (results are
worker-count independent), fan-out via
:class:`~repro.analysis.parallel.ParallelRunner` (so the supervision /
retry / store-resume stack from fault-tolerant sweeps applies verbatim),
and :func:`~repro.eval.metrics.prequential_metrics` reduced inside the
worker so only the metric dict rides home.

A cell is one ``(scenario, learner)`` pair: the scenario factory builds
its :class:`~repro.spec.ExperimentSpec`, the learner name is grafted on
via ``with_overrides({"learner.name": ...})`` (the scenario's other
hyper-parameters stay fixed, so learners differ *only* in the selection
policy), and the spec runs test-then-train for the scenario's horizon.
Results collect into an :class:`EvalResult` whose table renders the
matrix with one row per cell — the "does RTHS beat sticky under X?"
artifact the ROADMAP asked for.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.reporting import format_float, render_table
from repro.eval.metrics import SCALAR_METRICS, prequential_metrics
from repro.spec.model import ExecutionSpec, ExperimentSpec, _check_unknown_keys
from repro.spec.registry import LEARNERS, SCENARIOS
from repro.util.validation import require_positive_int

#: Scalar columns the matrix table reports, in order.
TABLE_METRICS = SCALAR_METRICS + ("final_window_reward", "final_window_regret")


@dataclass(frozen=True)
class EvalSpec:
    """A declarative learner × scenario evaluation matrix.

    ``scenarios`` and ``learners`` name registry entries (validated at
    construction, so typos fail with the registered menu).  ``rounds``
    and ``backend``, when set, override every scenario's own horizon /
    system backend — the way the pinned CI matrix runs the same corpus
    on both backends.  ``scenario_options`` maps scenario names to extra
    factory keyword arguments (``{"flash_crowd": {"num_peers": 200}}``),
    letting one spec pin a small, CI-sized instance of a big scenario.
    ``window`` is the prequential window in rounds; ``seed`` roots the
    per-cell seed derivation.  ``execution`` is the standard sweep
    fault-tolerance policy and — exactly like
    :class:`~repro.spec.ExperimentSpec` — is excluded from
    :meth:`eval_digest`, so retry knobs never invalidate a store.
    """

    name: str = "eval"
    scenarios: Tuple[str, ...] = ()
    learners: Tuple[str, ...] = ("rths", "sticky")
    window: int = 25
    rounds: Optional[int] = None
    backend: Optional[str] = None
    seed: int = 0
    scenario_options: Mapping[str, Mapping[str, Any]] = field(
        default_factory=dict
    )
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "learners", tuple(self.learners))
        for scenario in self.scenarios:
            SCENARIOS.get(scenario)  # raises with the menu
        for learner in self.learners:
            LEARNERS.get(learner)  # raises with the menu
        require_positive_int(self.window, "window")
        if self.rounds is not None:
            require_positive_int(self.rounds, "rounds")
        if self.backend is not None:
            from repro.spec.model import SYSTEM_BACKENDS

            if self.backend not in SYSTEM_BACKENDS:
                raise ValueError(
                    f"backend must be one of {SYSTEM_BACKENDS} or None, "
                    f"got {self.backend!r}"
                )
        if not isinstance(self.scenario_options, Mapping):
            raise ValueError("scenario_options must be a mapping")
        options = {}
        for scenario, opts in self.scenario_options.items():
            if scenario not in self.scenarios:
                raise ValueError(
                    f"scenario_options names {scenario!r}, which is not in "
                    f"scenarios {list(self.scenarios)}"
                )
            if not isinstance(opts, Mapping) or any(
                not isinstance(key, str) for key in opts
            ):
                raise ValueError(
                    f"scenario_options[{scenario!r}] must be a mapping "
                    "with string keys"
                )
            options[scenario] = dict(opts)
        object.__setattr__(self, "scenario_options", options)

    # ------------------------------------------------------------------
    # Serialization (mirrors the ExperimentSpec idiom)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "scenarios": list(self.scenarios),
            "learners": list(self.learners),
            "window": self.window,
            "rounds": self.rounds,
            "backend": self.backend,
            "seed": self.seed,
            "scenario_options": {
                scenario: dict(opts)
                for scenario, opts in self.scenario_options.items()
            },
            "execution": self.execution.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvalSpec":
        _check_unknown_keys(cls, data)
        data = dict(data)
        if "execution" in data:
            data["execution"] = ExecutionSpec.from_dict(data["execution"] or {})
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "EvalSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path) -> "EvalSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    def eval_digest(self) -> str:
        """Content hash keying the results store.

        Over the result-determining fields only — the ``execution``
        section (when and whether results arrive, never what they are)
        is excluded, matching
        :meth:`~repro.spec.ExperimentSpec.result_digest`.
        """
        data = self.to_dict()
        data.pop("execution", None)
        canonical = json.dumps(data, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

    # ------------------------------------------------------------------
    # Matrix expansion
    # ------------------------------------------------------------------

    def parameter_sets(self) -> List[Dict[str, str]]:
        """All matrix cells in deterministic scenario-major order."""
        return [
            {"scenario": scenario, "learner": learner}
            for scenario in self.scenarios
            for learner in self.learners
        ]

    def build_cell_spec(self, scenario: str, learner: str) -> ExperimentSpec:
        """The :class:`~repro.spec.ExperimentSpec` one cell runs.

        Scenario factory + per-scenario options, then the learner name
        (and the matrix-wide ``rounds``/``backend`` pins, when set)
        grafted on as overrides.
        """
        factory = SCENARIOS.get(scenario)
        spec = factory(**self.scenario_options.get(scenario, {}))
        overrides: Dict[str, Any] = {"learner.name": learner}
        if self.rounds is not None:
            overrides["rounds"] = self.rounds
        if self.backend is not None:
            overrides["backend"] = self.backend
        return spec.with_overrides(overrides)


def run_eval_cell(
    eval_dict: Mapping[str, Any], params: Mapping[str, Any], seed: int
) -> Dict[str, Any]:
    """Run one matrix cell; picklable for worker fan-out.

    Rebuilds the :class:`EvalSpec` from its dict form (importing
    :mod:`repro.workloads` first so scenario registrations exist under
    the ``spawn`` start method too), runs the cell's experiment with the
    derived seed, and reduces the trace to prequential metrics.  No
    wall-clock fields — the return value is a pure function of
    ``(eval_dict, params, seed)``, which is what makes cells cacheable
    and bit-identical across worker counts and retries.
    """
    import repro.workloads  # noqa: F401  (scenario registration side effect)

    spec = EvalSpec.from_dict(eval_dict)
    scenario, learner = params["scenario"], params["learner"]
    cell_spec = spec.build_cell_spec(scenario, learner)
    try:
        result = cell_spec.run(seed=seed)
    except Exception as exc:
        exc.add_note(
            f"eval {spec.eval_digest()} cell scenario={scenario!r} "
            f"learner={learner!r} seed={seed}"
        )
        raise
    from repro.telemetry import get_telemetry

    get_telemetry().counter("eval.cells").inc()
    return prequential_metrics(result.trace, spec.window)


@dataclass(frozen=True)
class EvalCell:
    """One completed matrix cell."""

    scenario: str
    learner: str
    metrics: Dict[str, Any]


@dataclass(frozen=True)
class EvalResult:
    """A completed (possibly holed) evaluation matrix.

    ``cells`` is in matrix order (scenario-major, matching
    :meth:`EvalSpec.parameter_sets`) with ``None`` holes for cells that
    failed beyond recovery under ``on_failure="record"``; ``failures``
    carries their :class:`~repro.analysis.supervision.SweepFailure`
    records.
    """

    spec: EvalSpec
    cells: Tuple[Optional[EvalCell], ...]
    failures: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", tuple(self.cells))
        object.__setattr__(self, "failures", tuple(self.failures))

    def completed_cells(self) -> List[EvalCell]:
        """Cells that produced metrics, matrix order preserved."""
        return [cell for cell in self.cells if cell is not None]

    def cell(self, scenario: str, learner: str) -> Optional[EvalCell]:
        """The named cell, or ``None`` if it failed."""
        for cell in self.cells:
            if (
                cell is not None
                and cell.scenario == scenario
                and cell.learner == learner
            ):
                return cell
        if {"scenario": scenario, "learner": learner} not in (
            self.spec.parameter_sets()
        ):
            raise KeyError(
                f"({scenario!r}, {learner!r}) is not in the matrix: "
                f"scenarios={list(self.spec.scenarios)}, "
                f"learners={list(self.spec.learners)}"
            )
        return None

    def column(self, metric: str) -> Dict[Tuple[str, str], float]:
        """``(scenario, learner) -> value`` for one scalar metric."""
        return {
            (cell.scenario, cell.learner): cell.metrics[metric]
            for cell in self.completed_cells()
        }

    def compare(
        self, metric: str, learner_a: str, learner_b: str
    ) -> Dict[str, float]:
        """Per-scenario ``a - b`` deltas of one scalar metric.

        Scenarios where either learner's cell failed are omitted.
        """
        column = self.column(metric)
        deltas = {}
        for scenario in self.spec.scenarios:
            a = column.get((scenario, learner_a))
            b = column.get((scenario, learner_b))
            if a is not None and b is not None:
                deltas[scenario] = float(a) - float(b)
        return deltas

    def _rows(self) -> List[List[object]]:
        rows: List[List[object]] = []
        for params, cell in zip(self.spec.parameter_sets(), self.cells):
            if cell is None:
                rows.append(
                    [params["scenario"], params["learner"]]
                    + ["FAILED"] * len(TABLE_METRICS)
                )
            else:
                rows.append(
                    [cell.scenario, cell.learner]
                    + [float(cell.metrics[m]) for m in TABLE_METRICS]
                )
        return rows

    def to_table(self) -> str:
        """Aligned ASCII matrix table (one row per cell)."""
        if not self.cells:
            raise ValueError("evaluation matrix is empty")
        return render_table(
            ["scenario", "learner", *TABLE_METRICS], self._rows()
        )

    def to_markdown(self) -> str:
        """The matrix as a GitHub-flavored markdown pipe table."""
        if not self.cells:
            raise ValueError("evaluation matrix is empty")
        headers = ["scenario", "learner", *TABLE_METRICS]
        lines = [
            "| " + " | ".join(headers) + " |",
            "| " + " | ".join("---" for _ in headers) + " |",
        ]
        for row in self._rows():
            cells = [
                format_float(c) if isinstance(c, float) else str(c)
                for c in row
            ]
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-plain form (window arrays as lists)."""

        def plain(value):
            if isinstance(value, np.ndarray):
                return [float(v) for v in value]
            if isinstance(value, (np.floating, np.integer)):
                return float(value)
            return value

        return {
            "spec": self.spec.to_dict(),
            "cells": [
                None
                if cell is None
                else {
                    "scenario": cell.scenario,
                    "learner": cell.learner,
                    "metrics": {
                        key: plain(val) for key, val in cell.metrics.items()
                    },
                }
                for cell in self.cells
            ],
            "failures": [failure.describe() for failure in self.failures],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class Evaluator:
    """Run an :class:`EvalSpec` matrix through the sweep machinery.

    A thin orchestration layer: every hard property — deterministic
    per-cell seeds, worker-count independence, supervision/retry,
    store-resume — is inherited from
    :class:`~repro.analysis.parallel.ParallelRunner`, which the spec
    sweeps already exercise.  Construct with ``workers`` (or inject a
    configured ``runner``) and call :meth:`run`.
    """

    def __init__(self, workers: int = 1, runner=None) -> None:
        if runner is None:
            from repro.analysis.parallel import ParallelRunner

            runner = ParallelRunner(workers=workers)
        self._runner = runner

    def run(self, spec: EvalSpec, store=None) -> EvalResult:
        """Evaluate every matrix cell; returns an :class:`EvalResult`.

        ``store`` — a directory path or
        :class:`~repro.store.ResultsStore` — makes cells durable and
        resumable exactly like sweep cells: committed cells are cache
        hits (no worker dispatched), keyed by :meth:`EvalSpec.eval_digest`
        plus the per-cell params/seed digest.

        Every cell spec is built *before* dispatch, so a spec that
        cannot build (a scenario option typo, a learner without the
        needed backend) fails fast here with the offending cell named,
        instead of as a worker traceback per cell.
        """
        parameter_sets = spec.parameter_sets()
        if not parameter_sets:
            raise ValueError(
                "evaluation matrix is empty: spec needs at least one "
                "scenario and one learner"
            )
        for params in parameter_sets:
            try:
                spec.build_cell_spec(params["scenario"], params["learner"])
            except Exception as exc:
                raise ValueError(
                    f"eval cell scenario={params['scenario']!r} "
                    f"learner={params['learner']!r} cannot build: {exc}"
                ) from exc
        if store is not None and not hasattr(store, "get"):
            from repro.store import ResultsStore

            store = ResultsStore(store)
        failures: list = []
        cells = self._runner.map_cells(
            functools.partial(run_eval_cell, spec.to_dict()),
            parameter_sets,
            rng=spec.seed,
            execution=spec.execution,
            store=store,
            spec_digest=spec.eval_digest(),
            failures_out=failures,
        )
        return EvalResult(
            spec=spec,
            cells=tuple(
                None
                if cell is None
                else EvalCell(
                    scenario=params["scenario"],
                    learner=params["learner"],
                    metrics=dict(cell.metrics),
                )
                for params, cell in zip(parameter_sets, cells)
            ),
            failures=tuple(failures),
        )


def evaluate(
    spec: EvalSpec,
    workers: int = 1,
    store=None,
) -> EvalResult:
    """One-call convenience: ``Evaluator(workers).run(spec, store)``."""
    return Evaluator(workers=workers).run(spec, store=store)
