"""repro.eval — prequential evaluation of learners over scenario streams.

The subsystem that turns "does RTHS beat sticky under X?" into one
command: declare a learner × scenario matrix as an :class:`EvalSpec`,
run it with :class:`Evaluator` (or ``repro eval`` from the CLI), and
read the windowed test-then-train metrics off the :class:`EvalResult`
table.  Built entirely on the spec layer's registries and the sweep
machinery, so evaluation cells inherit deterministic seeding,
supervision/retry, and store-backed resume for free.

Layout:

* :mod:`repro.eval.windows` — windowed reductions (last window partial).
* :mod:`repro.eval.metrics` — :func:`prequential_metrics`: one trace →
  cumulative + per-window reward / regret / stall-rate / switch-rate.
* :mod:`repro.eval.harness` — :class:`EvalSpec` / :class:`Evaluator` /
  :class:`EvalResult` and the picklable :func:`run_eval_cell`.

The adversarial scenario corpus the evaluator is pointed at by default
lives in :mod:`repro.workloads.adversarial` (registered scenario names:
``correlated_failures``, ``oscillating_capacity``, ``flash_storm``,
``diurnal_mix``).
"""

from repro.eval.harness import (
    EvalCell,
    EvalResult,
    EvalSpec,
    Evaluator,
    evaluate,
    run_eval_cell,
)
from repro.eval.metrics import (
    SCALAR_METRICS,
    WINDOW_METRICS,
    prequential_metrics,
)
from repro.eval.windows import (
    window_lengths,
    window_means,
    window_ratios,
    window_starts,
    window_sums,
)

__all__ = [
    "EvalCell",
    "EvalResult",
    "EvalSpec",
    "Evaluator",
    "evaluate",
    "run_eval_cell",
    "SCALAR_METRICS",
    "WINDOW_METRICS",
    "prequential_metrics",
    "window_lengths",
    "window_means",
    "window_ratios",
    "window_starts",
    "window_sums",
]
