"""Windowed reductions over per-round series.

The prequential evaluator reports metrics per *window* — contiguous
blocks of ``window`` rounds — so a learner's transient and steady-state
behaviour stay visible in one table instead of being averaged together.
The helpers here are the single implementation of that blocking: windows
tile the horizon from round 0, and the last window is **partial** when
``window`` does not divide the horizon (it covers the remaining rounds,
however few — a 250-round run at window 100 yields windows of 100, 100
and 50 rounds).  ``window >= horizon`` degenerates to one window spanning
the whole run.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require_positive_int


def window_starts(horizon: int, window: int) -> np.ndarray:
    """Start index of every window tiling ``horizon`` rounds.

    ``[0, window, 2*window, ...]`` — the last window may be partial.
    """
    require_positive_int(horizon, "horizon")
    require_positive_int(window, "window")
    return np.arange(0, horizon, window, dtype=int)


def window_lengths(horizon: int, window: int) -> np.ndarray:
    """Round count of every window (the last entry may be < ``window``)."""
    starts = window_starts(horizon, window)
    ends = np.minimum(starts + window, horizon)
    return ends - starts


def window_sums(series: np.ndarray, window: int) -> np.ndarray:
    """Per-window sums of a ``(T,)`` series (last window partial).

    One value per window, in order; uses :func:`numpy.add.reduceat`, so
    the reduction is a single vectorized pass.
    """
    arr = np.asarray(series, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("series must be a non-empty 1-D array")
    starts = window_starts(arr.size, window)
    return np.add.reduceat(arr, starts)


def window_means(series: np.ndarray, window: int) -> np.ndarray:
    """Per-window means of a ``(T,)`` series (last window partial).

    The partial last window averages over its *own* length, not the
    nominal window size — a half-full window is not diluted.
    """
    arr = np.asarray(series, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("series must be a non-empty 1-D array")
    return window_sums(arr, window) / window_lengths(arr.size, window)


def window_ratios(
    numerator: np.ndarray, denominator: np.ndarray, window: int
) -> np.ndarray:
    """Per-window ``sum(numerator) / sum(denominator)`` ratios.

    The ratio-of-sums (not mean-of-ratios) form every prequential rate in
    :mod:`repro.eval.metrics` uses: each round contributes weighted by
    its denominator (peers online, demand issued), so empty rounds cannot
    skew a window.  Windows whose denominator sums to zero report 0.0.
    """
    num = window_sums(numerator, window)
    den = window_sums(denominator, window)
    out = np.zeros_like(num)
    np.divide(num, den, out=out, where=den > 0)
    return out
