"""Social-welfare summaries (paper Fig. 2).

Fig. 2 compares the distributed RTHS against the centralized MDP optimum;
these helpers turn raw trajectories into that comparison: smoothed welfare
series, long-run means, and the optimality ratio against a reference
optimum (the occupation-LP value or the per-stage symmetric upper envelope).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.game.repeated_game import Trajectory


@dataclass(frozen=True)
class WelfareReport:
    """Welfare summary of a run.

    Attributes
    ----------
    series:
        Per-stage social welfare, shape ``(T,)``.
    mean:
        Mean welfare over the whole run.
    steady_state_mean:
        Mean over the final half of the run (after convergence transients).
    optimum:
        Reference optimal welfare, if supplied.
    """

    series: np.ndarray
    mean: float
    steady_state_mean: float
    optimum: Optional[float] = None

    @property
    def optimality(self) -> Optional[float]:
        """``steady_state_mean / optimum`` (None if no reference)."""
        if self.optimum is None or self.optimum <= 0:
            return None
        return self.steady_state_mean / self.optimum


def welfare_report(
    trajectory: Trajectory,
    optimum: Optional[float] = None,
    steady_state_fraction: float = 0.5,
) -> WelfareReport:
    """Summarize a trajectory's social welfare."""
    if not 0 < steady_state_fraction <= 1:
        raise ValueError("steady_state_fraction must lie in (0, 1]")
    series = trajectory.welfare
    start = int(round(series.size * (1.0 - steady_state_fraction)))
    tail = series[start:] if start < series.size else series
    return WelfareReport(
        series=series,
        mean=float(series.mean()),
        steady_state_mean=float(tail.mean()),
        optimum=optimum,
    )


def optimality_ratio(
    welfare_series: np.ndarray,
    optimum_series: np.ndarray,
) -> np.ndarray:
    """Per-stage ``welfare / optimum`` against a matched optimum path."""
    w = np.asarray(welfare_series, dtype=float)
    o = np.asarray(optimum_series, dtype=float)
    if w.shape != o.shape:
        raise ValueError("series must have matching shapes")
    if np.any(o <= 0):
        raise ValueError("optimum series must be strictly positive")
    return w / o
