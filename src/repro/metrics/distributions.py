"""Helper-load distribution statistics (paper Fig. 3).

Fig. 3 shows RTHS spreading peers evenly over the helpers.  The natural
reference is the capacity-proportional load ``N * C_j / sum(C)``; these
helpers quantify how far realized loads sit from it and how the balance
evolves over a run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.game.repeated_game import Trajectory
from repro.metrics.fairness import coefficient_of_variation, jain_index


def mean_loads(trajectory: Trajectory, tail_fraction: float = 0.5) -> np.ndarray:
    """Mean per-helper load over the final ``tail_fraction`` of the run."""
    if not 0 < tail_fraction <= 1:
        raise ValueError("tail_fraction must lie in (0, 1]")
    tail = trajectory.tail(tail_fraction)
    return tail.loads.mean(axis=0)


def load_distance_to_proportional(
    loads: np.ndarray, capacities: np.ndarray, num_peers: int
) -> float:
    """L1 distance between mean loads and capacity-proportional targets,
    normalized by the population size (0 = perfectly proportional)."""
    loads = np.asarray(loads, dtype=float)
    caps = np.asarray(capacities, dtype=float)
    if loads.shape != caps.shape:
        raise ValueError("loads and capacities must have matching shapes")
    if num_peers < 1:
        raise ValueError("num_peers must be >= 1")
    total = caps.sum()
    if total <= 0:
        raise ValueError("total capacity must be positive")
    target = num_peers * caps / total
    return float(np.abs(loads - target).sum() / num_peers)


@dataclass(frozen=True)
class LoadBalanceReport:
    """Summary of how evenly a run loaded the helpers.

    All statistics are computed on the steady-state tail of the run.
    """

    mean_loads: np.ndarray
    proportional_target: np.ndarray
    jain: float
    cv: float
    distance_to_proportional: float
    per_stage_cv: np.ndarray


def load_balance_report(
    trajectory: Trajectory, tail_fraction: float = 0.5
) -> LoadBalanceReport:
    """Build the Fig. 3 summary from a trajectory."""
    if not 0 < tail_fraction <= 1:
        raise ValueError("tail_fraction must lie in (0, 1]")
    tail = trajectory.tail(tail_fraction)
    loads = tail.loads.mean(axis=0)
    mean_caps = tail.capacities.mean(axis=0)
    num_peers = trajectory.num_peers
    total = mean_caps.sum()
    target = num_peers * mean_caps / total if total > 0 else np.zeros_like(mean_caps)
    per_stage_cv = np.array(
        [coefficient_of_variation(row.astype(float)) for row in tail.loads]
    )
    return LoadBalanceReport(
        mean_loads=loads,
        proportional_target=target,
        jain=jain_index(loads),
        cv=coefficient_of_variation(loads),
        distance_to_proportional=load_distance_to_proportional(
            loads, mean_caps, num_peers
        ),
        per_stage_cv=per_stage_cv,
    )
