"""Fairness indices (paper Figs. 3 and 4).

The paper argues the convexity of the CE set "allows for better fairness
between the peers" and demonstrates it with per-helper load balance and
per-peer bandwidth shares; these are the standard scalar summaries.
"""

from __future__ import annotations

import numpy as np


def _clean(values: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-D array")
    if np.any(~np.isfinite(arr)) or np.any(arr < 0):
        raise ValueError(f"{name} must be finite and non-negative")
    return arr


def jain_index(values: np.ndarray) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly equal; ``1/n`` means one participant takes all.
    An all-zero allocation is defined here as perfectly fair (1.0).
    """
    arr = _clean(values, "values")
    denom = arr.size * float((arr**2).sum())
    if denom == 0:
        return 1.0
    # Mathematically in [1/n, 1] (Cauchy-Schwarz); clip away the floating-
    # point overshoot that subnormal inputs can produce.
    return float(min(1.0, float(arr.sum()) ** 2 / denom))


def max_min_ratio(values: np.ndarray) -> float:
    """``max / min`` of the allocation; ``inf`` if some entry is zero."""
    arr = _clean(values, "values")
    low = arr.min()
    if low == 0:
        return float("inf") if arr.max() > 0 else 1.0
    return float(arr.max() / low)


def coefficient_of_variation(values: np.ndarray) -> float:
    """Standard deviation divided by mean (0 for an all-zero allocation)."""
    arr = _clean(values, "values")
    mean = arr.mean()
    if mean == 0:
        return 0.0
    return float(arr.std() / mean)
