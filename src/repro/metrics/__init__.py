"""Evaluation metrics for the paper's figures.

* :mod:`repro.metrics.fairness` — Jain's index, max/min ratio, coefficient
  of variation (Figs. 3 and 4).
* :mod:`repro.metrics.welfare` — social welfare series, optimality ratios
  (Fig. 2).
* :mod:`repro.metrics.convergence` — regret trajectories, smoothing,
  convergence detection (Fig. 1).
* :mod:`repro.metrics.server_load` — server workload vs. the minimum
  bandwidth deficit of helpers (Fig. 5).
* :mod:`repro.metrics.distributions` — helper-load distribution statistics
  (Fig. 3).
"""

from repro.metrics.convergence import (
    convergence_stage,
    exponential_smooth,
    moving_average,
    regret_trajectory,
    time_averaged_regret_series,
)
from repro.metrics.distributions import (
    load_balance_report,
    load_distance_to_proportional,
    mean_loads,
)
from repro.metrics.fairness import coefficient_of_variation, jain_index, max_min_ratio
from repro.metrics.server_load import server_load_report
from repro.metrics.welfare import optimality_ratio, welfare_report

__all__ = [
    "jain_index",
    "max_min_ratio",
    "coefficient_of_variation",
    "welfare_report",
    "optimality_ratio",
    "regret_trajectory",
    "time_averaged_regret_series",
    "moving_average",
    "exponential_smooth",
    "convergence_stage",
    "mean_loads",
    "load_balance_report",
    "load_distance_to_proportional",
    "server_load_report",
]
