"""Server workload vs. minimum bandwidth deficit (paper Fig. 5).

The paper: "The minimum bandwidth deficit of helpers is defined as the
required amount of surplus bandwidth if the minimum upload bandwidth of all
helpers is fully utilized" — i.e. the lower bound

    deficit_min = max(0, sum_i d_i - sum_j C_j^min)

where ``C_j^min`` is helper ``j``'s lowest bandwidth level.  Fig. 5 shows
the realized server load staying close to that bound: helper selection is
good enough that the server only covers the structural shortfall.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.trace import SystemTrace


def minimum_bandwidth_deficit(
    total_demand: float, minimum_capacities: np.ndarray
) -> float:
    """``max(0, D - sum_j C_j^min)``."""
    if total_demand < 0:
        raise ValueError("total_demand must be >= 0")
    caps = np.asarray(minimum_capacities, dtype=float)
    if np.any(caps < 0):
        raise ValueError("capacities must be non-negative")
    return max(0.0, float(total_demand - caps.sum()))


@dataclass(frozen=True)
class ServerLoadReport:
    """Fig. 5 summary.

    Attributes
    ----------
    server_load:
        Realized per-round server top-up, shape ``(T,)``.
    min_deficit:
        Per-round minimum bandwidth deficit, shape ``(T,)``.
    no_helper_load:
        Per-round aggregate demand (what the server would carry with no
        helpers at all), shape ``(T,)``.
    """

    server_load: np.ndarray
    min_deficit: np.ndarray
    no_helper_load: np.ndarray

    @property
    def mean_gap(self) -> float:
        """Mean excess of realized server load over the lower bound."""
        return float((self.server_load - self.min_deficit).mean())

    @property
    def mean_saving(self) -> float:
        """Mean load removed from the server by the helper layer."""
        return float((self.no_helper_load - self.server_load).mean())

    @property
    def saving_fraction(self) -> float:
        """Fraction of demand the helpers absorbed (steady-state mean)."""
        demand = self.no_helper_load.mean()
        if demand <= 0:
            return 0.0
        return float(1.0 - self.server_load.mean() / demand)


def server_load_report(trace: SystemTrace) -> ServerLoadReport:
    """Build the Fig. 5 summary from a system trace."""
    if trace.num_rounds == 0:
        raise ValueError("trace is empty")
    return ServerLoadReport(
        server_load=trace.server_load,
        min_deficit=trace.min_deficit,
        no_helper_load=trace.total_demand,
    )
