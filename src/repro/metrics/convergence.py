"""Regret trajectories and convergence detection (paper Fig. 1).

Fig. 1 plots the evolution of the *worst player's* regret; with regret
tracking the estimate never reaches exactly zero (constant step size keeps
responding to the newest utilities) but settles onto a small noise floor.
:func:`convergence_stage` finds the stage where a series first enters and
stays inside a band around its terminal level.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.game.repeated_game import CapacityProcess


def moving_average(series: np.ndarray, window: int) -> np.ndarray:
    """Centered-length moving average (trailing window, same length)."""
    arr = np.asarray(series, dtype=float)
    if arr.ndim != 1:
        raise ValueError("series must be 1-D")
    if window < 1:
        raise ValueError("window must be >= 1")
    if window == 1:
        return arr.copy()
    cumsum = np.cumsum(np.insert(arr, 0, 0.0))
    out = np.empty_like(arr)
    for t in range(arr.size):
        lo = max(0, t - window + 1)
        out[t] = (cumsum[t + 1] - cumsum[lo]) / (t + 1 - lo)
    return out


def exponential_smooth(series: np.ndarray, alpha: float = 0.1) -> np.ndarray:
    """First-order exponential smoothing."""
    arr = np.asarray(series, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("series must be non-empty 1-D")
    if not 0 < alpha <= 1:
        raise ValueError("alpha must lie in (0, 1]")
    out = np.empty_like(arr)
    out[0] = arr[0]
    for t in range(1, arr.size):
        out[t] = out[t - 1] + alpha * (arr[t] - out[t - 1])
    return out


def convergence_stage(
    series: np.ndarray,
    tolerance: float,
    reference: Optional[float] = None,
) -> Optional[int]:
    """First stage after which the series stays within ``tolerance``.

    ``reference`` defaults to the final value; returns ``None`` if the
    series never settles.
    """
    arr = np.asarray(series, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("series must be non-empty 1-D")
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    ref = float(arr[-1]) if reference is None else float(reference)
    outside = np.abs(arr - ref) > tolerance
    if not outside.any():
        return 0
    last_outside = int(np.flatnonzero(outside)[-1])
    if last_outside == arr.size - 1:
        return None
    return last_outside + 1


def regret_trajectory(
    population,
    capacity_process: CapacityProcess,
    num_stages: int,
    sample_every: int = 1,
) -> np.ndarray:
    """Worst-player *tracking*-regret samples while running a population.

    ``population`` is a :class:`repro.core.population.LearnerPopulation`;
    returns the worst player's played-action tracking regret sampled every
    ``sample_every`` stages.  Note this quantity has a noise floor of order
    ``eps * u / delta`` by construction (constant-step importance-weighted
    estimates keep reacting to exploration); the decaying Fig. 1 curve is
    the *time-averaged* regret of :func:`time_averaged_regret_series`.
    """
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    if sample_every < 1:
        raise ValueError("sample_every must be >= 1")
    samples: List[float] = []

    def callback(stage: int, _: np.ndarray) -> None:
        if (stage + 1) % sample_every == 0:
            samples.append(population.worst_player_regret())

    population.run(capacity_process, num_stages, stage_callback=callback)
    return np.asarray(samples)


def time_averaged_regret_series(
    trajectory,
    sample_every: int = 1,
    u_max: Optional[float] = None,
) -> np.ndarray:
    """Worst-player time-averaged regret along a trajectory (Fig. 1).

    At each sampled stage ``t`` this is

        max_{i,j,k} (1/t) sum_{tau<=t, a_i^tau=j} [u_i(k, a_{-i}^tau) - u_i^tau]^+

    — the average regret Hart & Mas-Colell's theorem drives to zero as the
    empirical play approaches the correlated-equilibrium set.  Computed
    with true counterfactuals from the recorded loads/capacities, so it
    measures the play itself rather than any learner's internal estimate.

    Parameters
    ----------
    trajectory:
        A :class:`repro.game.repeated_game.Trajectory`.
    sample_every:
        Sampling stride of the returned series.
    u_max:
        Optional utility normalizer (use the learners' ``u_max`` to express
        the curve in normalized units).
    """
    if sample_every < 1:
        raise ValueError("sample_every must be >= 1")
    t_total, n = trajectory.actions.shape
    h = trajectory.loads.shape[1]
    scale = 1.0 if u_max is None else float(u_max)
    if scale <= 0:
        raise ValueError("u_max must be positive")
    cum = np.zeros((n, h, h))
    peer_index = np.arange(n)
    samples: List[float] = []
    for t in range(t_total):
        caps = trajectory.capacities[t]
        loads = trajectory.loads[t]
        actions = trajectory.actions[t]
        realized = trajectory.utilities[t]
        deviation = caps / (loads + 1.0)
        diff = deviation[None, :] - realized[:, None]
        diff[peer_index, actions] = 0.0
        cum[peer_index, actions, :] += diff
        if (t + 1) % sample_every == 0:
            samples.append(
                float(np.clip(cum, 0.0, None).max(initial=0.0)) / ((t + 1) * scale)
            )
    return np.asarray(samples)


def per_learner_regret_trajectory(
    learners: Sequence,
    driver_run: Callable[[], None],
) -> np.ndarray:
    """Snapshot max-regret of object learners after running ``driver_run``.

    Convenience for small object-based populations: executes the run
    callable, then reports each learner's final max regret.
    """
    driver_run()
    return np.array([learner.max_regret() for learner in learners])
