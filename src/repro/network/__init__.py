"""Network realism: link models, region matrices, helper classes.

The paper's environment is placeless — every helper is one hop away and
an observed capacity is the helper's upload bandwidth, full stop.  This
package adds the path between viewer and helper: per-link latency,
jitter and loss folding into the *observed* capacity
(:class:`~repro.network.links.LinkEffectProcess`), multi-region RTT
matrices with contiguous helper placement
(:class:`~repro.network.regions.RegionTopology`), and heterogeneous
helper classes — seedbox / residential / mobile — registered as reusable
profiles (:mod:`repro.network.classes`).

Everything composes through the capacity-transform pipeline
(``CapacitySpec.transforms`` + the ``network`` spec section; see
:mod:`repro.spec.model`), and every effect is applied array-at-a-time so
the vectorized round loop stays free of per-helper Python work.
"""

from repro.network.classes import (
    HELPER_CLASSES,
    HelperClassProfile,
    assign_helper_classes,
    register_helper_class,
)
from repro.network.links import (
    ClampedCapacityProcess,
    LinkEffectProcess,
    LinkParameters,
    compile_link_parameters,
)
from repro.network.regions import RegionTopology

__all__ = [
    "ClampedCapacityProcess",
    "LinkEffectProcess",
    "LinkParameters",
    "compile_link_parameters",
    "RegionTopology",
    "HELPER_CLASSES",
    "HelperClassProfile",
    "assign_helper_classes",
    "register_helper_class",
]
