"""Link models: latency, jitter and loss folding into observed capacity.

Peers in the paper observe a helper's upload bandwidth directly.  With a
network in between they observe *goodput*: what survives the path.
:class:`LinkEffectProcess` wraps any capacity process and scales each
helper's capacity by a per-link throughput factor

``factor_j = capacity_scale_j * (1 - loss_rate_j) * min(1, rtt_ref / rtt_j(t))``

where ``rtt_j(t) = latency_ms_j + |N(0, jitter_ms_j)|`` redraws every
stage.  The model is deliberately first-order — loss thins goodput
multiplicatively and RTT beyond a reference window degrades it
inversely (the fixed-window throughput ceiling ``window / rtt``) — but
it reproduces the qualitative regime that matters for helper selection:
distant, lossy or wireless helpers *look* slower than their uplink, and
jittery ones look *noisy*, so the learned equilibrium concentrates on
the short-fat links.

Everything is array-at-a-time over the ``(H,)`` helper axis: one
vectorized normal draw and one multiply per stage, so wrapping the
vectorized backend adds O(H) numpy work and no per-helper Python in the
round hot path.

:class:`ClampedCapacityProcess` is the degenerate-but-useful companion:
a hard per-helper floor/ceiling (an access-link cap), and — because
clamping does not commute with scaling — the canonical witness that
transform pipeline order matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.game.repeated_game import CapacityProcess
from repro.util.rng import Seedish, as_generator


def _per_helper(value, num_helpers: int, name: str) -> np.ndarray:
    """Broadcast a scalar or length-H sequence to a float ``(H,)`` array."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        arr = np.full(num_helpers, float(arr))
    if arr.shape != (num_helpers,):
        raise ValueError(
            f"{name} must be a scalar or a length-{num_helpers} sequence, "
            f"got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} entries must be finite")
    return arr


class LinkEffectProcess:
    """Wrap a capacity process with per-link path effects.

    ``latency_ms`` / ``jitter_ms`` / ``loss_rate`` / ``capacity_scale``
    are scalars or per-helper sequences; ``rtt_reference_ms`` is the RTT
    below which latency costs nothing (the throughput window).  With any
    positive jitter the per-stage RTT redraws from the wrapped ``rng``
    stream; an all-deterministic configuration consumes no randomness at
    all, so adding a jitter-free link layer never perturbs sibling RNG
    streams.
    """

    def __init__(
        self,
        base: CapacityProcess,
        *,
        latency_ms=0.0,
        jitter_ms=0.0,
        loss_rate=0.0,
        capacity_scale=1.0,
        rtt_reference_ms: float = 50.0,
        rng: Seedish = None,
    ) -> None:
        num_helpers = base.num_helpers
        self._base = base
        self._latency = _per_helper(latency_ms, num_helpers, "latency_ms")
        self._jitter = _per_helper(jitter_ms, num_helpers, "jitter_ms")
        self._loss = _per_helper(loss_rate, num_helpers, "loss_rate")
        self._scale = _per_helper(capacity_scale, num_helpers, "capacity_scale")
        if np.any(self._latency < 0) or np.any(self._jitter < 0):
            raise ValueError("latency_ms and jitter_ms must be >= 0")
        if np.any(self._loss < 0) or np.any(self._loss >= 1):
            raise ValueError("loss_rate must lie in [0, 1)")
        if np.any(self._scale < 0):
            raise ValueError("capacity_scale must be >= 0")
        if rtt_reference_ms <= 0:
            raise ValueError("rtt_reference_ms must be positive")
        self._rtt_reference = float(rtt_reference_ms)
        self._jittered = bool(np.any(self._jitter > 0))
        self._rng = as_generator(rng) if self._jittered else None
        self._static = self._scale * (1.0 - self._loss)
        self._factors = self._static * self._latency_factor(self._latency)
        self._rtt = self._latency.copy()

    def _latency_factor(self, rtt: np.ndarray) -> np.ndarray:
        # min(1, ref / rtt) without a divide-by-zero branch: the
        # denominator is clipped to ref, where the ratio is exactly 1.
        return self._rtt_reference / np.maximum(rtt, self._rtt_reference)

    @property
    def num_helpers(self) -> int:
        """Helper count of the wrapped process."""
        return self._base.num_helpers

    @property
    def rtt_ms(self) -> np.ndarray:
        """Current per-helper RTT (latency plus this stage's jitter draw)."""
        return self._rtt.copy()

    @property
    def throughput_factors(self) -> np.ndarray:
        """Current per-helper goodput factor in ``(0, 1] * capacity_scale``."""
        return self._factors.copy()

    def capacities(self) -> np.ndarray:
        """Base capacities scaled by the per-link throughput factors."""
        caps = np.asarray(self._base.capacities(), dtype=float)
        return caps * self._factors

    def minimum_capacities(self) -> np.ndarray:
        """Per-helper lower bound over time.

        Jitter is unbounded (``|N(0, s)|``), so a jittered link's factor
        has infimum zero; deterministic links keep the exact scaled
        bound.
        """
        base_min = np.asarray(self._base.minimum_capacities(), dtype=float)
        bound = base_min * self._static * self._latency_factor(self._latency)
        bound[self._jitter > 0] = 0.0
        return bound

    def advance(self) -> None:
        """Advance the base process, then redraw the jittered RTTs."""
        self._base.advance()
        if self._jittered:
            noise = np.abs(self._rng.standard_normal(self.num_helpers))
            self._rtt = self._latency + noise * self._jitter
            self._factors = self._static * self._latency_factor(self._rtt)


class ClampedCapacityProcess:
    """Hard per-helper capacity floor/ceiling (an access-link cap).

    Clipping is monotone, so the clamp of the wrapped process's lower
    bound is a valid lower bound of the clamped process.
    """

    def __init__(
        self,
        base: CapacityProcess,
        *,
        min_capacity: float = 0.0,
        max_capacity: Optional[float] = None,
    ) -> None:
        if min_capacity < 0:
            raise ValueError("min_capacity must be >= 0")
        if max_capacity is not None and max_capacity < min_capacity:
            raise ValueError(
                f"max_capacity {max_capacity} must be >= min_capacity "
                f"{min_capacity}"
            )
        self._base = base
        self._min = float(min_capacity)
        self._max = None if max_capacity is None else float(max_capacity)

    @property
    def num_helpers(self) -> int:
        """Helper count of the wrapped process."""
        return self._base.num_helpers

    def capacities(self) -> np.ndarray:
        """Base capacities clipped into ``[min_capacity, max_capacity]``."""
        caps = np.asarray(self._base.capacities(), dtype=float)
        return np.clip(caps, self._min, self._max)

    def minimum_capacities(self) -> np.ndarray:
        """The wrapped bound, clipped (monotone, so still a bound)."""
        base_min = np.asarray(self._base.minimum_capacities(), dtype=float)
        return np.clip(base_min, self._min, self._max)

    def advance(self) -> None:
        """Advance the wrapped process."""
        self._base.advance()


@dataclass(frozen=True)
class LinkParameters:
    """Compiled per-helper link parameters (what the spec layer applies).

    ``helper_regions`` / ``helper_class_names`` expose the placement and
    class assignment that produced the arrays (``None`` when the spec
    used neither), for tests and diagnostics.
    """

    latency_ms: np.ndarray
    jitter_ms: np.ndarray
    loss_rate: np.ndarray
    capacity_scale: np.ndarray
    rtt_reference_ms: float
    helper_regions: Optional[np.ndarray] = None
    helper_class_names: Optional[Tuple[str, ...]] = None


def compile_link_parameters(
    num_helpers: int,
    *,
    regions: Sequence[str] = (),
    latency_matrix: Optional[Sequence[Sequence[float]]] = None,
    helper_regions: Optional[Sequence[int]] = None,
    viewer_region: int = 0,
    helper_classes: Optional[Mapping[str, float]] = None,
    latency_ms: float = 0.0,
    jitter_ms: float = 0.0,
    loss_rate: float = 0.0,
    rtt_reference_ms: float = 50.0,
) -> LinkParameters:
    """Fold globals, region RTTs and class profiles into per-helper arrays.

    Latency and jitter add across layers (base + region RTT + class);
    loss composes as independent drop processes
    (``1 - prod(1 - loss_i)``); capacity scale multiplies.  The result
    feeds :class:`LinkEffectProcess` unchanged.
    """
    from repro.network.classes import HELPER_CLASSES, assign_helper_classes
    from repro.network.regions import RegionTopology

    latency = np.full(num_helpers, float(latency_ms))
    jitter = np.full(num_helpers, float(jitter_ms))
    loss = np.full(num_helpers, float(loss_rate))
    scale = np.ones(num_helpers)
    region_assignment = None
    if regions:
        topology = RegionTopology.from_spec(regions, latency_matrix)
        region_assignment = topology.assign_helpers(
            num_helpers, explicit=helper_regions
        )
        latency = latency + topology.helper_rtts(region_assignment, viewer_region)
    class_names = None
    if helper_classes:
        names, _, assignment = assign_helper_classes(num_helpers, helper_classes)
        profiles = [HELPER_CLASSES.get(name) for name in names]
        latency = latency + np.array(
            [p.latency_ms for p in profiles]
        )[assignment]
        jitter = jitter + np.array([p.jitter_ms for p in profiles])[assignment]
        loss = 1.0 - (1.0 - loss) * (
            1.0 - np.array([p.loss_rate for p in profiles])[assignment]
        )
        scale = scale * np.array(
            [p.capacity_scale for p in profiles]
        )[assignment]
        class_names = tuple(names[i] for i in assignment)
    return LinkParameters(
        latency_ms=latency,
        jitter_ms=jitter,
        loss_rate=loss,
        capacity_scale=scale,
        rtt_reference_ms=float(rtt_reference_ms),
        helper_regions=region_assignment,
        helper_class_names=class_names,
    )
