"""Heterogeneous helper classes: seedbox, residential, mobile.

Helpers in a deployed swarm are not interchangeable: a hosted seedbox
pushes symmetric fiber at single-digit RTTs, a residential uploader sits
behind an asymmetric cable link, a mobile helper rides a lossy radio
path.  A :class:`HelperClassProfile` captures one such archetype as four
link parameters, and :data:`HELPER_CLASSES` keys the archetypes by name
so specs reach them declaratively (``network.helper_classes`` maps class
names to population fractions).

Class-to-helper assignment is *deterministic* and contiguous
(:func:`assign_helper_classes`): class names are processed in sorted
order and each class receives a largest-remainder share of consecutive
helper indices — the same block layout
:class:`~repro.sim.failures.CorrelatedFailureProcess` uses for failure
domains, so classes model rack/fleet locality and two specs writing the
same mix in a different key order build the identical environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

import numpy as np

from repro.spec.registry import Registry


@dataclass(frozen=True)
class HelperClassProfile:
    """One helper archetype as link parameters.

    ``capacity_scale`` multiplies the base upload bandwidth (a seedbox
    outclasses the paper's residential-calibrated levels);
    ``latency_ms`` / ``jitter_ms`` / ``loss_rate`` add onto the global
    and region-derived link parameters when the class is assigned (see
    :func:`~repro.network.links.compile_link_parameters`).
    """

    capacity_scale: float = 1.0
    latency_ms: float = 0.0
    jitter_ms: float = 0.0
    loss_rate: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.capacity_scale < 0:
            raise ValueError("helper class capacity_scale must be >= 0")
        if self.latency_ms < 0 or self.jitter_ms < 0:
            raise ValueError("helper class latency_ms/jitter_ms must be >= 0")
        if not 0 <= self.loss_rate < 1:
            raise ValueError("helper class loss_rate must lie in [0, 1)")


#: Named helper archetypes (``network.helper_classes`` resolves here).
HELPER_CLASSES: Registry = Registry("helper class")


def register_helper_class(
    name: str, profile: HelperClassProfile = None, *, overwrite: bool = False
):
    """Register a :class:`HelperClassProfile` under ``name``.

    Usable as a decorator over a zero-argument profile factory is *not*
    supported — profiles are plain frozen dataclasses, register them
    directly.  Unknown names in a spec raise with the registered menu,
    like every other registry.
    """
    if profile is not None and not isinstance(profile, HelperClassProfile):
        raise TypeError(
            f"register_helper_class expects a HelperClassProfile, "
            f"got {type(profile).__name__}"
        )
    return HELPER_CLASSES.register(name, profile, overwrite=overwrite)


register_helper_class(
    "seedbox",
    HelperClassProfile(
        capacity_scale=1.5,
        latency_ms=10.0,
        jitter_ms=2.0,
        loss_rate=0.001,
        description=(
            "hosted box on symmetric fiber: above-baseline upload, "
            "single-digit RTT, negligible loss — the superhighway class"
        ),
    ),
)
register_helper_class(
    "residential",
    HelperClassProfile(
        capacity_scale=1.0,
        latency_ms=40.0,
        jitter_ms=10.0,
        loss_rate=0.01,
        description=(
            "cable/DSL uploader: baseline capacity, moderate last-mile "
            "RTT and queueing jitter — the paper's implicit helper"
        ),
    ),
)
register_helper_class(
    "mobile",
    HelperClassProfile(
        capacity_scale=0.6,
        latency_ms=80.0,
        jitter_ms=30.0,
        loss_rate=0.03,
        description=(
            "cellular helper: throttled upload, high variable RTT and "
            "radio loss — contributes when reachable, stalls when not"
        ),
    ),
)


def assign_helper_classes(
    num_helpers: int, mix: Mapping[str, float]
) -> Tuple[Tuple[str, ...], np.ndarray, np.ndarray]:
    """Deterministic contiguous class assignment by largest remainder.

    ``mix`` maps registered class names to non-negative weights (any
    positive total; fractions are normalized).  Returns ``(names,
    counts, assignment)``: the class names in sorted order, the helper
    count each received, and the ``(num_helpers,)`` int array mapping
    helper index to class index.  Sorted-name processing makes the
    layout independent of the mapping's key order, and the
    largest-remainder rounding (ties to the earlier name) hands every
    helper to exactly one class.
    """
    if num_helpers < 1:
        raise ValueError("num_helpers must be >= 1")
    if not mix:
        raise ValueError("helper class mix must not be empty")
    names = tuple(sorted(mix))
    for name in names:
        HELPER_CLASSES.get(name)  # raises with the registered menu
    weights = np.array([float(mix[name]) for name in names], dtype=float)
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ValueError("helper class fractions must be finite and >= 0")
    total = float(weights.sum())
    if total <= 0:
        raise ValueError("helper class fractions must sum to > 0")
    ideal = weights / total * num_helpers
    counts = np.floor(ideal).astype(int)
    remainder = num_helpers - int(counts.sum())
    if remainder > 0:
        order = np.argsort(-(ideal - counts), kind="stable")
        counts[order[:remainder]] += 1
    assignment = np.repeat(np.arange(len(names)), counts)
    return names, counts, assignment
