"""Multi-region topologies: named regions and an RTT matrix.

A :class:`RegionTopology` is the geographic skeleton of a deployment:
region names plus a square round-trip-time matrix (milliseconds).
Helpers place into regions as contiguous index blocks — the same
``np.array_split`` layout the correlated-failure domains use — unless a
spec pins an explicit per-helper placement, and the viewer population
observes every helper through the RTT between the helper's region and
the viewer's (``network.viewer_region``).

The matrix may be asymmetric (routing rarely is); only the
``helper_region -> viewer_region`` column matters for observed
capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class RegionTopology:
    """Named regions plus their pairwise RTT matrix (ms)."""

    names: Tuple[str, ...]
    rtt_ms: np.ndarray

    def __post_init__(self) -> None:
        names = tuple(str(name) for name in self.names)
        if not names:
            raise ValueError("region topology needs at least one region")
        if len(set(names)) != len(names):
            raise ValueError(f"region names must be unique, got {names}")
        rtt = np.asarray(self.rtt_ms, dtype=float)
        if rtt.shape != (len(names), len(names)):
            raise ValueError(
                f"latency matrix must be square over the {len(names)} "
                f"region(s), got shape {rtt.shape}"
            )
        if not np.all(np.isfinite(rtt)) or np.any(rtt < 0):
            raise ValueError("latency matrix entries must be finite and >= 0")
        object.__setattr__(self, "names", names)
        object.__setattr__(self, "rtt_ms", rtt)

    @classmethod
    def from_spec(
        cls,
        regions: Sequence[str],
        latency_matrix: Optional[Sequence[Sequence[float]]] = None,
    ) -> "RegionTopology":
        """Build from spec fields; a missing matrix means zero RTT."""
        names = tuple(regions)
        if latency_matrix is None:
            rtt = np.zeros((len(names), len(names)), dtype=float)
        else:
            rtt = np.asarray(latency_matrix, dtype=float)
        return cls(names=names, rtt_ms=rtt)

    @property
    def num_regions(self) -> int:
        """How many regions the topology names."""
        return len(self.names)

    def assign_helpers(
        self, num_helpers: int, explicit: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Per-helper region indices: explicit placement or contiguous blocks.

        The default splits helper indices into ``num_regions`` contiguous
        near-equal blocks (``np.array_split`` sizing), mirroring the
        correlated-failure domain layout so region outages and region
        placement align by construction.
        """
        if num_helpers < 1:
            raise ValueError("num_helpers must be >= 1")
        if explicit is not None:
            assignment = np.asarray(explicit, dtype=int)
            if assignment.shape != (num_helpers,):
                raise ValueError(
                    f"explicit helper_regions must have length {num_helpers}, "
                    f"got {assignment.shape}"
                )
            if np.any(assignment < 0) or np.any(assignment >= self.num_regions):
                raise ValueError(
                    f"helper_regions entries must index the {self.num_regions} "
                    f"region(s)"
                )
            return assignment
        return np.repeat(
            np.arange(self.num_regions),
            [
                len(part)
                for part in np.array_split(
                    np.arange(num_helpers), self.num_regions
                )
            ],
        )

    def helper_rtts(
        self, assignment: np.ndarray, viewer_region: int
    ) -> np.ndarray:
        """RTT (ms) from each helper's region to the viewer region."""
        if not 0 <= viewer_region < self.num_regions:
            raise ValueError(
                f"viewer_region {viewer_region} must index the "
                f"{self.num_regions} region(s)"
            )
        return self.rtt_ms[np.asarray(assignment, dtype=int), viewer_region]
