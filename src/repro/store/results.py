"""The content-addressed results store (see the package docstring).

Disk layout (all under one root, so commits are same-filesystem renames)::

    root/
      manifest.json                  {"kind": ..., "schema": 1}
      objects/<spec_digest>/<cell_digest>/
        entry.json                   metadata + scalars + checksums
        arr0.npy, arr1.npy, ...      array-valued metrics
      tmp/<token>/                   in-flight commits (never read)
      quarantine/<entry>-<token>/    corrupt entries moved aside

``entry.json`` is written last inside the temp directory and carries a
checksum over its own canonical form plus a sha256 per array file, so
every failure mode is detectable: a missing ``entry.json`` means a torn
commit (the rename never happened — the directory is still in ``tmp/``
and is garbage-collected), a checksum mismatch means corruption (the
entry is quarantined and the cell recomputes).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import uuid
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.util.logconfig import get_logger

logger = get_logger("store")

#: Version tag of the on-disk entry/manifest layout (bump on
#: incompatible changes; mismatched stores refuse to open).
STORE_SCHEMA = 1

_MANIFEST_NAME = "manifest.json"
_ENTRY_NAME = "entry.json"
_STORE_KIND = "repro-results-store"


class StoreError(RuntimeError):
    """A results-store precondition failure (bad root, unstorable value)."""


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _plain(value: Any) -> Any:
    """Coerce ``value`` to a JSON-plain equivalent; raise if impossible.

    The store must never silently mis-serialize a metric (a repr-string
    round-trips to the wrong type), so anything outside the JSON model
    plus numpy scalars is an error the caller sees at commit time.
    """
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    raise StoreError(
        f"value of type {type(value).__name__} is not storable "
        "(JSON scalars, lists/dicts thereof, and numpy arrays only)"
    )


def cell_digest(params: Mapping[str, Any], seed: int) -> str:
    """The per-cell half of the store key.

    A short stable hash of the cell's parameter overrides plus its
    derived seed — together with the spec's
    :meth:`~repro.spec.ExperimentSpec.result_digest` this fully
    determines the cell's output, because all randomness flows from the
    seed.  Parameters must be JSON-plain for the digest to be stable
    across processes.
    """
    try:
        canonical = json.dumps(
            {"params": _plain(dict(params)), "seed": int(seed)},
            sort_keys=True,
        )
    except StoreError as exc:
        raise StoreError(
            f"cell parameters are not digestable: {exc}"
        ) from None
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _entry_checksum(entry: Mapping[str, Any]) -> str:
    trimmed = {k: v for k, v in entry.items() if k != "checksum"}
    canonical = json.dumps(trimmed, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _write_file(path: Path, data: bytes) -> None:
    with open(path, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())


class ResultsStore:
    """Durable, checksummed storage of sweep-cell metrics.

    ``root`` is created (with a manifest) when missing unless
    ``create=False``, in which case a missing or foreign directory is a
    :class:`StoreError` — the mode ``repro store``'s maintenance
    commands and ``--resume`` use to refuse typo'd paths.
    """

    def __init__(self, root, create: bool = True) -> None:
        self.root = Path(root)
        manifest = self.root / _MANIFEST_NAME
        if manifest.exists():
            try:
                with open(manifest, "r", encoding="utf-8") as fh:
                    meta = json.load(fh)
            except (OSError, json.JSONDecodeError) as exc:
                raise StoreError(
                    f"unreadable store manifest at {manifest}: {exc}"
                ) from None
            if meta.get("kind") != _STORE_KIND:
                raise StoreError(
                    f"{self.root} is not a repro results store "
                    f"(manifest kind {meta.get('kind')!r})"
                )
            if meta.get("schema") != STORE_SCHEMA:
                raise StoreError(
                    f"store schema {meta.get('schema')!r} at {self.root} "
                    f"does not match this version's schema {STORE_SCHEMA}"
                )
        elif not create:
            raise StoreError(f"no results store at {self.root}")
        else:
            if self.root.exists() and any(self.root.iterdir()):
                raise StoreError(
                    f"refusing to initialize a store in non-empty "
                    f"directory {self.root}"
                )
            for sub in ("objects", "tmp", "quarantine"):
                (self.root / sub).mkdir(parents=True, exist_ok=True)
            _write_file(
                manifest,
                (
                    json.dumps({"kind": _STORE_KIND, "schema": STORE_SCHEMA})
                    + "\n"
                ).encode("utf-8"),
            )
        for sub in ("objects", "tmp", "quarantine"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------

    def _entry_dir(self, spec_digest: str, cell: str) -> Path:
        return self.root / "objects" / str(spec_digest) / str(cell)

    def contains(self, spec_digest: str, cell: str) -> bool:
        """Whether a committed entry exists (no integrity check)."""
        return (self._entry_dir(spec_digest, cell) / _ENTRY_NAME).exists()

    def entry_keys(self) -> List[Tuple[str, str]]:
        """All committed ``(spec_digest, cell_digest)`` keys, sorted."""
        keys = []
        objects = self.root / "objects"
        for spec_dir in sorted(p for p in objects.iterdir() if p.is_dir()):
            for cell_dir in sorted(p for p in spec_dir.iterdir() if p.is_dir()):
                keys.append((spec_dir.name, cell_dir.name))
        return keys

    def __len__(self) -> int:
        return len(self.entry_keys())

    # ------------------------------------------------------------------
    # Commit / read
    # ------------------------------------------------------------------

    def put(
        self,
        spec_digest: str,
        cell: str,
        metrics: Mapping[str, Any],
        params: Optional[Mapping[str, Any]] = None,
        seed: Optional[int] = None,
    ) -> bool:
        """Commit one cell's metrics atomically; ``False`` if already present.

        Scalar and JSON-plain metric values land in ``entry.json``;
        :class:`numpy.ndarray` values are written as ``.npy`` payloads
        with a sha256 each.  The whole entry materializes in ``tmp/``
        and enters ``objects/`` through a single directory rename, so a
        crash mid-commit leaves only garbage-collectable temp files,
        never a half-entry.
        """
        final = self._entry_dir(spec_digest, cell)
        if (final / _ENTRY_NAME).exists():
            return False
        tmp = self.root / "tmp" / uuid.uuid4().hex
        tmp.mkdir(parents=True)
        try:
            entry: Dict[str, Any] = {
                "schema": STORE_SCHEMA,
                "spec_digest": str(spec_digest),
                "cell_digest": str(cell),
                "params": None if params is None else _plain(dict(params)),
                "seed": None if seed is None else int(seed),
                "order": [str(name) for name in metrics],
                "scalars": {},
                "arrays": {},
            }
            for i, (name, value) in enumerate(metrics.items()):
                if isinstance(value, np.ndarray):
                    fname = f"arr{i}.npy"
                    with open(tmp / fname, "wb") as fh:
                        np.save(fh, np.ascontiguousarray(value))
                        fh.flush()
                        os.fsync(fh.fileno())
                    entry["arrays"][str(name)] = {
                        "file": fname,
                        "dtype": str(value.dtype),
                        "shape": list(value.shape),
                        "sha256": _sha256_file(tmp / fname),
                        "nbytes": int(value.nbytes),
                    }
                else:
                    entry["scalars"][str(name)] = _plain(value)
            entry["checksum"] = _entry_checksum(entry)
            _write_file(
                tmp / _ENTRY_NAME,
                (json.dumps(entry, indent=1) + "\n").encode("utf-8"),
            )
            final.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(tmp, final)
            except OSError:
                if (final / _ENTRY_NAME).exists():
                    # Lost a commit race: someone landed the identical
                    # (deterministic) result first.  Keep theirs.
                    shutil.rmtree(tmp, ignore_errors=True)
                    return False
                raise
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        return True

    def get(
        self, spec_digest: str, cell: str, verify: bool = True
    ) -> Optional[Dict[str, Any]]:
        """The committed metrics for a key, or ``None``.

        With ``verify`` (the default) the entry checksum and every array
        sha256 are checked; anything inconsistent — torn JSON, missing
        payload, flipped bits — quarantines the entry and returns
        ``None``, so a corrupt cache degrades to a recompute instead of
        poisoning a sweep.
        """
        entry_dir = self._entry_dir(spec_digest, cell)
        entry_path = entry_dir / _ENTRY_NAME
        if not entry_path.exists():
            return None
        try:
            entry = self._load_entry(entry_dir, verify=verify)
        except StoreError as exc:
            logger.warning(
                "quarantining corrupt store entry %s/%s: %s",
                spec_digest, cell, exc,
            )
            self._quarantine(entry_dir, str(exc))
            return None
        metrics: Dict[str, Any] = {}
        for name in entry["order"]:
            if name in entry["arrays"]:
                meta = entry["arrays"][name]
                metrics[name] = np.load(
                    entry_dir / meta["file"], allow_pickle=False
                )
            else:
                metrics[name] = entry["scalars"][name]
        return metrics

    def _load_entry(self, entry_dir: Path, verify: bool) -> Dict[str, Any]:
        """Parse + integrity-check one entry; :class:`StoreError` if bad."""
        try:
            with open(entry_dir / _ENTRY_NAME, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreError(f"unreadable entry.json: {exc}") from None
        if not isinstance(entry, dict) or entry.get("schema") != STORE_SCHEMA:
            raise StoreError(
                f"entry schema {entry.get('schema')!r} != {STORE_SCHEMA}"
                if isinstance(entry, dict)
                else "entry.json is not an object"
            )
        for key in ("order", "scalars", "arrays", "checksum"):
            if key not in entry:
                raise StoreError(f"entry.json missing {key!r}")
        if _entry_checksum(entry) != entry["checksum"]:
            raise StoreError("entry checksum mismatch")
        missing = [
            name
            for name in entry["order"]
            if name not in entry["arrays"] and name not in entry["scalars"]
        ]
        if missing:
            raise StoreError(f"entry order names missing values: {missing}")
        for name, meta in entry["arrays"].items():
            path = entry_dir / meta["file"]
            if not path.exists():
                raise StoreError(f"array payload {meta['file']} missing")
            if verify and _sha256_file(path) != meta["sha256"]:
                raise StoreError(f"array payload {meta['file']} corrupt")
        return entry

    def _quarantine(self, entry_dir: Path, reason: str) -> Path:
        token = uuid.uuid4().hex[:8]
        dest = (
            self.root
            / "quarantine"
            / f"{entry_dir.parent.name}-{entry_dir.name}-{token}"
        )
        os.rename(entry_dir, dest)
        _write_file(dest / "reason.txt", (reason + "\n").encode("utf-8"))
        return dest

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def ls(self) -> List[Dict[str, Any]]:
        """Summaries of every committed entry (no payload verification)."""
        rows = []
        for spec_digest, cell in self.entry_keys():
            entry_dir = self._entry_dir(spec_digest, cell)
            row: Dict[str, Any] = {
                "spec_digest": spec_digest,
                "cell_digest": cell,
            }
            try:
                entry = self._load_entry(entry_dir, verify=False)
            except StoreError as exc:
                row.update(status="corrupt", detail=str(exc))
            else:
                row.update(
                    status="ok",
                    params=entry.get("params"),
                    seed=entry.get("seed"),
                    metrics=len(entry["order"]),
                    arrays=len(entry["arrays"]),
                    bytes=sum(
                        meta["nbytes"] for meta in entry["arrays"].values()
                    ),
                )
            rows.append(row)
        return rows

    def verify(self, quarantine: bool = True) -> Dict[str, Any]:
        """Full-integrity sweep over every entry.

        Returns ``{"checked", "ok", "corrupt": [...], "quarantined"}``;
        with ``quarantine`` (the default) corrupt entries are moved
        aside so the next sweep recomputes them.
        """
        corrupt: List[Dict[str, str]] = []
        checked = 0
        for spec_digest, cell in self.entry_keys():
            entry_dir = self._entry_dir(spec_digest, cell)
            checked += 1
            try:
                self._load_entry(entry_dir, verify=True)
            except StoreError as exc:
                corrupt.append(
                    {
                        "spec_digest": spec_digest,
                        "cell_digest": cell,
                        "reason": str(exc),
                    }
                )
                if quarantine:
                    self._quarantine(entry_dir, str(exc))
        return {
            "checked": checked,
            "ok": checked - len(corrupt),
            "corrupt": corrupt,
            "quarantined": len(corrupt) if quarantine else 0,
        }

    def gc(
        self,
        keep_specs: Optional[Sequence[str]] = None,
        dry_run: bool = False,
    ) -> Dict[str, int]:
        """Reclaim space: torn commits, quarantined entries, stale specs.

        Removes everything under ``tmp/`` (interrupted commits never
        referenced by ``objects/``) and ``quarantine/``.  With
        ``keep_specs``, entries whose spec digest is not listed are
        removed too — the pruning mode for retiring superseded
        experiment versions.  Returns removal counts plus bytes freed.

        With ``dry_run=True`` nothing is touched: the same counts are
        computed and returned as a would-remove report, so a
        ``--keep-spec`` pruning run can be previewed before committing
        to it.
        """
        freed = 0
        tmp_removed = quarantine_removed = entries_removed = 0
        for path in (self.root / "tmp").iterdir():
            freed += _tree_bytes(path)
            if not dry_run:
                _remove_tree(path)
            tmp_removed += 1
        for path in (self.root / "quarantine").iterdir():
            freed += _tree_bytes(path)
            if not dry_run:
                _remove_tree(path)
            quarantine_removed += 1
        if keep_specs is not None:
            keep = {str(s) for s in keep_specs}
            for spec_dir in list((self.root / "objects").iterdir()):
                if spec_dir.is_dir() and spec_dir.name not in keep:
                    entries_removed += sum(
                        1 for p in spec_dir.iterdir() if p.is_dir()
                    )
                    freed += _tree_bytes(spec_dir)
                    if not dry_run:
                        shutil.rmtree(spec_dir)
        return {
            "tmp_removed": tmp_removed,
            "quarantine_removed": quarantine_removed,
            "entries_removed": entries_removed,
            "bytes_freed": freed,
        }


def _tree_bytes(path: Path) -> int:
    if path.is_file():
        return path.stat().st_size
    return sum(p.stat().st_size for p in path.rglob("*") if p.is_file())


def _remove_tree(path: Path) -> None:
    if path.is_dir():
        shutil.rmtree(path, ignore_errors=True)
    else:
        path.unlink(missing_ok=True)


def iter_array_payloads(root) -> Iterator[Path]:
    """Every committed ``.npy`` payload under a store root (test/chaos aid)."""
    yield from sorted(Path(root).glob("objects/*/*/*.npy"))
