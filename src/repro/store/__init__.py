"""``repro.store`` — content-addressed on-disk results store.

The durability layer under sweep execution: every completed sweep cell
commits to a :class:`ResultsStore` keyed by ``(spec_digest,
cell_digest)`` — the experiment's result-determining content hash
(:meth:`repro.spec.ExperimentSpec.result_digest`) plus a digest of the
cell's parameter overrides and derived seed.  Because per-cell seeds are
deterministic, a committed cell is *the* answer for that key: reruns of
an unchanged cell are cache hits (no worker dispatched) and interrupted
sweeps resume for free.

Commits are atomic (write into a temp directory, then one ``rename``
into place), payload arrays reuse the ``.npy`` format of the sweep
handoff machinery, and every entry carries checksums — a torn write or
bit rot is detected on read, quarantined, and transparently recomputed.
``verify``/``gc`` are the maintenance ops, exposed on the CLI as
``repro store {ls,verify,gc}``.
"""

from repro.store.results import (
    STORE_SCHEMA,
    ResultsStore,
    StoreError,
    cell_digest,
)

__all__ = [
    "ResultsStore",
    "StoreError",
    "cell_digest",
    "STORE_SCHEMA",
]
