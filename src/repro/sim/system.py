"""The multi-channel P2P streaming system (paper Secs. I and IV).

Wires the substrate together: a :class:`~repro.sim.engine.Simulator` drives
periodic learning rounds; helper bandwidth follows the Markov capacity
process; peers run plug-in learners (RTHS/R2HS/baselines); a tracker hands
joining peers their channel's helper list; churn (optional) adds and
removes peers; the origin server tops up any peer whose helper share falls
short of its demand.  Each round:

1. every online peer draws a helper from its learner;
2. helper capacities split evenly among their connected peers — peer ``i``
   receives the share ``C_j / n_j`` (its game utility);
3. the server serves every peer's deficit ``max(0, d_i - share_i)``;
4. learners observe their share; metrics are recorded.

The per-round aggregates (welfare, server load, minimum bandwidth deficit,
helper loads) are exactly the series plotted in Figs. 3–5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.game.interfaces import Learner
from repro.sim.bandwidth import (
    PAPER_BANDWIDTH_LEVELS,
    MarkovCapacityProcess,
    paper_bandwidth_process,
)
from repro.sim.churn import ChurnConfig, ChurnProcess
from repro.sim.engine import Simulator
from repro.sim.entities import Channel, Helper, Peer, StreamingServer
from repro.sim.trace import RoundRecord, SystemTrace
from repro.sim.tracker import Tracker
from repro.util.rng import Seedish, as_generator, spawn

LearnerFactory = Callable[[int, np.random.Generator], Learner]


def drive_rounds(
    sim: Simulator,
    period: float,
    execute: Callable[[Simulator], None],
    completed_rounds: Callable[[], int],
    num_rounds: int,
) -> None:
    """Fire ``execute`` for ``num_rounds`` periodic learning rounds.

    Rounds land at fixed absolute times; other events (churn, switches)
    interleave naturally.  Shared by the scalar and vectorized systems so
    the two backends cannot drift in round scheduling semantics.
    """
    if num_rounds < 1:
        raise ValueError("num_rounds must be >= 1")
    target = completed_rounds() + num_rounds
    start = sim.now
    offset = 1
    while completed_rounds() < target:
        sim.schedule_at(start + offset * period, execute)
        sim.run_until(start + offset * period)
        offset += 1


def install_channel_switching(
    sim: Simulator,
    config: "SystemConfig",
    switch_rng: np.random.Generator,
    churn: ChurnProcess,
    switch_once: Callable[[], Optional[int]],
) -> None:
    """Install the Poisson viewer channel-switch process.

    ``switch_once`` performs one backend-specific switch (pick a random
    online viewer, retire it, create a replacement) and returns the new
    peer's churn handle, or ``None`` when nobody is online.  The gap
    sampling, rescheduling and lifetime wiring here are shared by both
    backends.
    """

    def schedule_next() -> None:
        gap = float(switch_rng.exponential(1.0 / config.channel_switch_rate))

        def fire(inner_sim: Simulator) -> None:
            handle = switch_once()
            if (
                handle is not None
                and config.churn.mean_lifetime
                and config.churn.initial_peer_lifetimes
            ):
                churn.schedule_lifetime(inner_sim, handle)
            schedule_next()

        sim.schedule(gap, fire)

    schedule_next()


def install_popularity_drift(
    sim: Simulator,
    config: "SystemConfig",
    drift_rng: np.random.Generator,
    get_weights: Callable[[], np.ndarray],
    set_weights: Callable[[np.ndarray], None],
) -> None:
    """Install the periodic popularity-drift process (diurnal skew).

    Every ``config.popularity_drift_period`` simulation-time units the
    backend's channel weights (read through ``get_weights``, written back
    through ``set_weights``) are re-mixed with
    :func:`repro.workloads.popularity.popularity_drift` at rate
    ``config.popularity_drift_rate`` — so churn joins and viewer channel
    switches gradually shift toward a new popularity profile, the way
    real deployments' hot channels move through the day.  Only the
    *weights* drift; each peer keeps its channel until it leaves or
    switches.  Both the scheduling and the mixing live here, shared by
    both backends, so drift semantics cannot diverge.
    """

    def drift_once(_sim: Simulator) -> None:
        # Lazy import: the workloads layer may import the spec layer,
        # which reaches back into the systems.
        from repro.workloads.popularity import popularity_drift

        set_weights(
            popularity_drift(
                get_weights(), config.popularity_drift_rate, rng=drift_rng
            )
        )

    sim.schedule_periodic(config.popularity_drift_period, drift_once)


def normalized_channel_weights(
    num_channels: int, popularity: Optional[Sequence[float]]
) -> np.ndarray:
    """Validate and normalize channel popularity weights.

    Shared by the scalar system and the vectorized runtime so both apply
    identical popularity semantics.
    """
    weights = popularity
    if weights is None:
        weights = [1.0] * num_channels
    weights = np.asarray(list(weights), dtype=float)
    if weights.size != num_channels or np.any(weights < 0):
        raise ValueError("channel_popularity must be non-negative, one per channel")
    if weights.sum() <= 0:
        raise ValueError("channel_popularity must not be all zero")
    return weights / weights.sum()


@dataclass(frozen=True)
class SystemConfig:
    """Configuration of a streaming-system experiment.

    Attributes
    ----------
    num_peers:
        Initial population size.
    num_helpers:
        Total helpers across all channels (partitioned round-robin).
    num_channels:
        Number of live channels; helpers and peers are spread across them.
    channel_bitrates:
        Per-channel playback bitrate (kbit/s) = per-peer demand.  A single
        float applies to every channel.
    channel_popularity:
        Relative weights used to assign (initial and churning) peers to
        channels; defaults to uniform.
    bandwidth_levels, stay_probability:
        Helper-capacity Markov chain parameters (paper: ``[700, 800, 900]``
        with slow switching).
    round_duration:
        Simulated time between learning rounds.
    server_capacity:
        Origin server upload budget per round (default unbounded).
    churn:
        Join/leave configuration (disabled by default).
    channel_switch_rate:
        Poisson rate of viewer channel switches (time-varying channel
        popularity, paper Sec. I): each event, a random online peer stops
        watching its channel and re-joins one drawn from the popularity
        weights with a fresh learner (its helper history is channel-local
        and does not transfer).  0 disables switching.
    record_peers:
        Record dense per-peer actions/utilities (fixed populations only),
        enabling :meth:`~repro.sim.trace.SystemTrace.to_trajectory`.
    """

    num_peers: int
    num_helpers: int
    num_channels: int = 1
    channel_bitrates: Sequence[float] | float = 350.0
    channel_popularity: Optional[Sequence[float]] = None
    bandwidth_levels: Sequence[float] = PAPER_BANDWIDTH_LEVELS
    stay_probability: float = 0.9
    round_duration: float = 1.0
    server_capacity: float = float("inf")
    churn: ChurnConfig = field(default_factory=ChurnConfig)
    channel_switch_rate: float = 0.0
    record_peers: bool = False
    popularity_drift_rate: float = 0.0
    popularity_drift_period: float = 10.0

    def __post_init__(self) -> None:
        if self.channel_switch_rate < 0:
            raise ValueError("channel_switch_rate must be >= 0")
        if not 0 <= self.popularity_drift_rate <= 1:
            raise ValueError("popularity_drift_rate must lie in [0, 1]")
        if self.popularity_drift_period <= 0:
            raise ValueError("popularity_drift_period must be positive")
        if self.num_peers < 1:
            raise ValueError("num_peers must be >= 1")
        if self.num_channels < 1:
            raise ValueError("num_channels must be >= 1")
        if self.num_helpers < self.num_channels:
            raise ValueError("need at least one helper per channel")
        if self.round_duration <= 0:
            raise ValueError("round_duration must be positive")
        if self.server_capacity <= 0:
            raise ValueError("server_capacity must be positive")
        # Normalize channel_bitrates to one float per channel so that a
        # misconfigured sequence fails here, at construction, and
        # ``bitrate_of`` is a plain tuple lookup.
        rates = self.channel_bitrates
        if isinstance(rates, (int, float)):
            normalized = (float(rates),) * self.num_channels
        else:
            normalized = tuple(float(r) for r in rates)
            if len(normalized) != self.num_channels:
                raise ValueError(
                    "channel_bitrates must have one entry per channel"
                )
        if any(r <= 0 for r in normalized):
            raise ValueError("channel bitrates must be positive")
        object.__setattr__(self, "channel_bitrates", normalized)

    def bitrate_of(self, channel_id: int) -> float:
        """Playback bitrate of ``channel_id``."""
        return self.channel_bitrates[channel_id]


class StreamingSystem:
    """A runnable multi-channel P2P streaming deployment."""

    def __init__(
        self,
        config: SystemConfig,
        learner_factory: LearnerFactory,
        rng: Seedish = None,
        capacity_process: Optional[MarkovCapacityProcess] = None,
        initial_channels: Optional[Sequence[int]] = None,
        capacity_backend: str = "scalar",
    ) -> None:
        self._config = config
        self._factory = learner_factory
        self._rng = as_generator(rng)
        self._sim = Simulator()
        self._server = StreamingServer(capacity=config.server_capacity)
        self._tracker = Tracker()
        self._trace = SystemTrace(
            actions=[] if config.record_peers else None,
            utilities=[] if config.record_peers else None,
        )
        self._round_index = 0
        self._population_changed = False

        if capacity_process is None:
            capacity_process = paper_bandwidth_process(
                config.num_helpers,
                levels=config.bandwidth_levels,
                stay_probability=config.stay_probability,
                rng=spawn(self._rng),
                backend=capacity_backend,
            )
        if capacity_process.num_helpers != config.num_helpers:
            raise ValueError("capacity process size does not match num_helpers")
        self._capacity_process = capacity_process

        # Channels and their popularity weights.
        self._channel_weights = normalized_channel_weights(
            config.num_channels, config.channel_popularity
        )
        self._channels = [
            Channel(
                channel_id=c,
                bitrate=config.bitrate_of(c),
                popularity=float(self._channel_weights[c]),
            )
            for c in range(config.num_channels)
        ]

        # Helpers, partitioned round-robin over channels.
        self._helpers: List[Helper] = []
        for h in range(config.num_helpers):
            channel_id = h % config.num_channels
            helper = Helper(helper_id=h, channel_id=channel_id)
            self._helpers.append(helper)
            self._tracker.register_helper(h, channel_id)

        # Initial peer population.  An explicit channel assignment makes
        # paired scalar-vs-vectorized runs start from identical populations.
        self._peers: List[Peer] = []
        if initial_channels is not None:
            if len(initial_channels) != config.num_peers:
                raise ValueError(
                    "initial_channels must list one channel per initial peer"
                )
            for channel_id in initial_channels:
                channel_id = int(channel_id)
                if not 0 <= channel_id < config.num_channels:
                    raise ValueError(f"channel {channel_id} out of range")
                self._create_peer(channel_id)
        else:
            for _ in range(config.num_peers):
                self._create_peer()

        # Churn.
        self._churn = ChurnProcess(
            config.churn,
            on_join=self._churn_join,
            on_leave=self._churn_leave,
            rng=spawn(self._rng),
        )
        if config.churn.initial_peer_lifetimes and config.churn.mean_lifetime:
            for peer in self._peers:
                self._churn.schedule_lifetime(self._sim, peer.peer_id)
        self._churn.start(self._sim)

        # Viewer channel switching (time-varying popularity).
        self._switch_rng = spawn(self._rng)
        self._channel_switches = 0
        if config.channel_switch_rate > 0:
            install_channel_switching(
                self._sim, config, self._switch_rng, self._churn,
                self._switch_once,
            )

        # Diurnal popularity drift (only spawns its generator when on, so
        # drift-free configs keep their RNG streams bit-identical).
        if config.popularity_drift_rate > 0:
            install_popularity_drift(
                self._sim, config, spawn(self._rng),
                lambda: self._channel_weights, self._set_channel_weights,
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _draw_channel(self) -> int:
        return int(self._rng.choice(self._config.num_channels, p=self._channel_weights))

    def _set_channel_weights(self, weights: np.ndarray) -> None:
        self._channel_weights = weights

    @property
    def channel_weights(self) -> np.ndarray:
        """Current channel popularity weights (drift updates them)."""
        return self._channel_weights.copy()

    def _create_peer(self, channel_id: Optional[int] = None) -> Peer:
        if channel_id is None:
            channel_id = self._draw_channel()
        helpers = self._tracker.helpers_for(channel_id)
        learner = self._factory(len(helpers), spawn(self._rng))
        if learner.num_actions != len(helpers):
            raise ValueError(
                f"learner_factory produced {learner.num_actions} actions for "
                f"a channel with {len(helpers)} helpers"
            )
        peer = Peer(
            peer_id=len(self._peers),
            channel_id=channel_id,
            demand=self._channels[channel_id].bitrate,
            learner=learner,
            joined_at=self._sim.now,
        )
        self._peers.append(peer)
        return peer

    def _churn_join(self) -> int:
        peer = self._create_peer()
        self._population_changed = True
        return peer.peer_id

    def _switch_once(self) -> Optional[int]:
        """One viewer channel switch; returns the replacement's peer id."""
        online = self.online_peers()
        if not online:
            return None
        peer = online[int(self._switch_rng.integers(len(online)))]
        self._churn_leave(peer.peer_id)
        replacement = self._create_peer()
        self._channel_switches += 1
        self._population_changed = True
        return replacement.peer_id

    @property
    def channel_switches(self) -> int:
        """Viewer channel-switch events processed so far."""
        return self._channel_switches

    def _churn_leave(self, peer_id: int) -> None:
        peer = self._peers[peer_id]
        if not peer.online:
            return
        peer.online = False
        peer.left_at = self._sim.now
        self._population_changed = True
        if peer.current_helper is not None:
            helpers = self._tracker.helpers_for(peer.channel_id)
            self._helpers[helpers[peer.current_helper]].detach(peer_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def config(self) -> SystemConfig:
        """The experiment configuration."""
        return self._config

    @property
    def simulator(self) -> Simulator:
        """The underlying event engine."""
        return self._sim

    @property
    def peers(self) -> List[Peer]:
        """All peers ever created (online and departed)."""
        return self._peers

    @property
    def helpers(self) -> List[Helper]:
        """All helpers."""
        return self._helpers

    @property
    def channels(self) -> List[Channel]:
        """All channels."""
        return self._channels

    @property
    def server(self) -> StreamingServer:
        """The origin server."""
        return self._server

    @property
    def trace(self) -> SystemTrace:
        """The recorded per-round history."""
        return self._trace

    def online_peers(self) -> List[Peer]:
        """Peers currently participating."""
        return [p for p in self._peers if p.online]

    # ------------------------------------------------------------------
    # The learning round
    # ------------------------------------------------------------------

    def _execute_round(self, _: Simulator) -> None:
        config = self._config
        caps = self._capacity_process.capacities()
        online = self.online_peers()

        # 1. Everyone picks a helper (local index within their channel).
        choices: Dict[int, int] = {}
        for helper in self._helpers:
            helper.connected.clear()
        for peer in online:
            local = peer.learner.act()
            choices[peer.peer_id] = local
            helper_id = self._tracker.helpers_for(peer.channel_id)[local]
            self._helpers[helper_id].attach(peer.peer_id)
            peer.current_helper = local

        loads = np.array([h.load for h in self._helpers], dtype=int)

        # 2./3. Shares realize; the server covers deficits.
        total_share = 0.0
        total_deficit_requested = 0.0
        shares: Dict[int, float] = {}
        for peer in online:
            helper_id = self._tracker.helpers_for(peer.channel_id)[
                choices[peer.peer_id]
            ]
            share = caps[helper_id] / loads[helper_id]
            shares[peer.peer_id] = share
            total_share += share
            total_deficit_requested += max(0.0, peer.demand - share)
        granted = self._server.serve(total_deficit_requested)

        # 4. Learners observe their raw helper share (the game utility).
        for peer in online:
            share = shares[peer.peer_id]
            peer.learner.observe(choices[peer.peer_id], share)
            peer.rounds_participated += 1
            peer.cumulative_rate += share
            peer.cumulative_deficit += max(0.0, peer.demand - share)

        total_demand = float(sum(p.demand for p in online))
        min_caps = self._capacity_process.minimum_capacities()
        min_deficit = max(0.0, total_demand - float(min_caps.sum()))
        record = RoundRecord(
            time=self._sim.now,
            capacities=caps,
            loads=loads,
            welfare=total_share,
            server_load=granted,
            min_deficit=min_deficit,
            online_peers=len(online),
            total_demand=total_demand,
        )
        self._trace.append(record)

        if config.record_peers:
            if self._population_changed:
                raise RuntimeError(
                    "record_peers=True requires a fixed population; disable "
                    "churn or per-peer recording"
                )
            # Global helper ids so the trajectory indexes all H helpers.
            action_row = np.array(
                [
                    self._tracker.helpers_for(p.channel_id)[choices[p.peer_id]]
                    for p in online
                ],
                dtype=int,
            )
            util_row = np.array([shares[p.peer_id] for p in online])
            self._trace.actions.append(action_row)  # type: ignore[union-attr]
            self._trace.utilities.append(util_row)  # type: ignore[union-attr]

        self._capacity_process.advance()
        self._round_index += 1

    def run(self, num_rounds: int) -> SystemTrace:
        """Advance the system by ``num_rounds`` learning rounds.

        May be called repeatedly; the trace accumulates.
        """
        drive_rounds(
            self._sim,
            self._config.round_duration,
            self._execute_round,
            lambda: self._round_index,
            num_rounds,
        )
        return self._trace
