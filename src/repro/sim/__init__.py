"""Discrete-event P2P streaming substrate.

* :mod:`repro.sim.engine` — the event engine (calendar queue, periodic
  events, deterministic tie-breaking).
* :mod:`repro.sim.bandwidth` — Markov-modulated helper capacity processes
  (the paper's ``[700, 800, 900]`` slow-switching environment) and trace
  replay for paired comparisons.
* :mod:`repro.sim.entities` / :mod:`repro.sim.tracker` — channels, helpers,
  peers, origin server, and the directory service.
* :mod:`repro.sim.churn` — Poisson join / exponential-lifetime leave.
* :mod:`repro.sim.system` — the runnable system tying it all together.
* :mod:`repro.sim.trace` — per-round metric recording.
"""

from repro.sim.bandwidth import (
    CAPACITY_BACKENDS,
    PAPER_BANDWIDTH_LEVELS,
    MarkovCapacityProcess,
    TraceCapacityProcess,
    VectorizedCapacityProcess,
    paper_bandwidth_process,
    record_capacity_trace,
)
from repro.sim.chunks import ChunkConfig, ChunkLevelSystem, HelperUploader
from repro.sim.churn import ChurnConfig, ChurnProcess
from repro.sim.engine import EventHandle, Simulator
from repro.sim.adversarial import OscillatingCapacityProcess
from repro.sim.failures import CorrelatedFailureProcess, FailureInjectingProcess
from repro.sim.playback import PlaybackBuffer, QoEReport, playback_qoe, switch_rate
from repro.sim.entities import Channel, Helper, Peer, StreamingServer
from repro.sim.system import LearnerFactory, StreamingSystem, SystemConfig
from repro.sim.trace import RoundRecord, SystemTrace
from repro.sim.tracker import Tracker

__all__ = [
    "Simulator",
    "EventHandle",
    "PAPER_BANDWIDTH_LEVELS",
    "MarkovCapacityProcess",
    "VectorizedCapacityProcess",
    "CAPACITY_BACKENDS",
    "TraceCapacityProcess",
    "paper_bandwidth_process",
    "record_capacity_trace",
    "ChurnConfig",
    "ChurnProcess",
    "Channel",
    "Helper",
    "Peer",
    "StreamingServer",
    "StreamingSystem",
    "SystemConfig",
    "LearnerFactory",
    "RoundRecord",
    "SystemTrace",
    "Tracker",
    "PlaybackBuffer",
    "QoEReport",
    "playback_qoe",
    "switch_rate",
    "ChunkConfig",
    "ChunkLevelSystem",
    "HelperUploader",
    "FailureInjectingProcess",
    "CorrelatedFailureProcess",
    "OscillatingCapacityProcess",
]
