"""The tracker: the only (lightweight) central component.

Real multi-channel P2P deployments run a tracker that hands joining peers a
contact list — here, the helpers assigned to their channel.  The tracker
does *not* coordinate helper selection (that is the point of the paper);
it only maintains the channel -> helpers directory and hands out lists.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


class Tracker:
    """Directory of helpers per channel."""

    def __init__(self) -> None:
        self._by_channel: Dict[int, List[int]] = {}

    def register_helper(self, helper_id: int, channel_id: int) -> None:
        """Add a helper to a channel's directory (idempotent)."""
        helpers = self._by_channel.setdefault(channel_id, [])
        if helper_id not in helpers:
            helpers.append(helper_id)

    def unregister_helper(self, helper_id: int, channel_id: int) -> None:
        """Remove a helper from a channel's directory."""
        helpers = self._by_channel.get(channel_id, [])
        if helper_id in helpers:
            helpers.remove(helper_id)

    def helpers_for(self, channel_id: int) -> List[int]:
        """Contact list (helper ids) for ``channel_id`` (copy)."""
        if channel_id not in self._by_channel:
            raise KeyError(f"unknown channel {channel_id}")
        return list(self._by_channel[channel_id])

    def channels(self) -> Sequence[int]:
        """All channels with at least one registered helper."""
        return sorted(self._by_channel)

    def num_helpers(self, channel_id: int) -> int:
        """Number of helpers registered for ``channel_id``."""
        return len(self._by_channel.get(channel_id, []))
