"""Entities of the multi-channel P2P streaming system.

Plain state holders — behaviour lives in :mod:`repro.sim.system` (the
round loop) and :mod:`repro.sim.churn` (population dynamics).  Identifiers
are small integers assigned by the system; helpers and peers are looked up
in dense lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.game.interfaces import Learner


@dataclass
class Channel:
    """A live video channel.

    Attributes
    ----------
    channel_id:
        Dense index of the channel.
    bitrate:
        Streaming rate (kbit/s) each viewer needs for smooth playback —
        the per-peer demand ``d_i`` of the Fig. 5 experiment.
    popularity:
        Relative popularity weight (drives how churn assigns new peers).
    """

    channel_id: int
    bitrate: float
    popularity: float = 1.0

    def __post_init__(self) -> None:
        if self.bitrate <= 0:
            raise ValueError(f"bitrate must be positive, got {self.bitrate}")
        if self.popularity < 0:
            raise ValueError("popularity must be non-negative")


@dataclass
class Helper:
    """A helper peer acting as a micro-server.

    The helper's available upload bandwidth is driven externally by the
    capacity process; ``connected`` tracks the peers currently attached.
    """

    helper_id: int
    channel_id: int
    connected: Set[int] = field(default_factory=set)

    @property
    def load(self) -> int:
        """Number of peers currently connected."""
        return len(self.connected)

    def attach(self, peer_id: int) -> None:
        """Connect ``peer_id`` to this helper."""
        self.connected.add(peer_id)

    def detach(self, peer_id: int) -> None:
        """Disconnect ``peer_id`` (no-op if not connected)."""
        self.connected.discard(peer_id)


@dataclass
class Peer:
    """A viewing peer.

    Attributes
    ----------
    peer_id:
        Dense index (stable for the peer's lifetime; reused after leave
        only by explicitly re-joining peers).
    channel_id:
        The channel this peer watches.
    demand:
        Required streaming rate (kbit/s), normally the channel bitrate.
    learner:
        The helper-selection strategy object (RTHS/R2HS/baseline).
    online:
        Whether the peer currently participates in rounds.
    current_helper:
        Helper index within the channel's helper list, or ``None`` before
        the first round.
    """

    peer_id: int
    channel_id: int
    demand: float
    learner: Learner
    online: bool = True
    current_helper: Optional[int] = None
    joined_at: float = 0.0
    left_at: Optional[float] = None
    rounds_participated: int = 0
    cumulative_rate: float = 0.0
    cumulative_deficit: float = 0.0

    def __post_init__(self) -> None:
        if self.demand <= 0:
            raise ValueError(f"demand must be positive, got {self.demand}")

    @property
    def average_rate(self) -> float:
        """Mean received helper rate over participated rounds (0 if none)."""
        if self.rounds_participated == 0:
            return 0.0
        return self.cumulative_rate / self.rounds_participated


@dataclass
class StreamingServer:
    """The origin streaming server.

    The server tops up every peer whose helper share falls below its
    demand, so playback never stalls; its per-round load is the headline
    Fig. 5 metric.  ``capacity`` may be ``float('inf')`` (the paper never
    saturates the server in the reported figures).
    """

    capacity: float = float("inf")
    total_load: float = 0.0
    rounds: int = 0

    def serve(self, requested: float) -> float:
        """Serve up to ``requested`` kbit/s this round; returns granted."""
        if requested < 0:
            raise ValueError("requested must be >= 0")
        granted = min(requested, self.capacity)
        self.total_load += granted
        self.rounds += 1
        return granted

    @property
    def average_load(self) -> float:
        """Mean per-round server load so far."""
        if self.rounds == 0:
            return 0.0
        return self.total_load / self.rounds
