"""Adversarial capacity dynamics for the evaluation corpus.

The paper's environment is benignly stochastic: each helper's bandwidth
wanders a slow Markov chain, independently of everything else.  The
processes here are the *unkind* counterparts the prequential corpus
evaluates learners against:

* :class:`OscillatingCapacityProcess` — a deterministic square wave that
  rotates degradation across helper cohorts.  Whichever helpers look
  best now are exactly the ones about to be throttled, so a policy that
  locks onto current winners (sticky) keeps paying the flip, while a
  regret tracker re-adapts within a period.  This is the classic
  adversarial-bandit stressor, made reproducible: no RNG, the wave is a
  pure function of the stage counter.

The correlated-outage counterpart (whole failure domains going dark at
once) lives in :mod:`repro.sim.failures` next to the independent-outage
process it generalizes.  Both register as capacity backends in
:mod:`repro.spec.builtins` (``"oscillating"``, ``"correlated_failures"``)
so specs reach them by name via ``capacity.backend`` + ``options``.
"""

from __future__ import annotations

import numpy as np

from repro.game.repeated_game import CapacityProcess
from repro.util.validation import (
    require_in_closed_unit_interval,
    require_positive_int,
)


class OscillatingCapacityProcess:
    """Deterministic rotating degradation over helper cohorts.

    Helpers split into ``num_groups`` interleaved cohorts (helper ``j``
    belongs to cohort ``j % num_groups``).  Time splits into blocks of
    ``period`` stages; during block ``b`` the cohort ``b % num_groups``
    reads its base capacity scaled by ``low_fraction`` while the others
    pass through untouched.  The degradation therefore *rotates*: every
    cohort is healthy for ``(num_groups - 1) * period`` stages, then
    throttled for ``period`` — and the flip always hits the cohort that
    has most recently looked attractive.

    Base-process stochasticity (the Markov wander) is preserved; only
    the adversarial envelope is deterministic, so two runs with the same
    base seed see the identical wave.
    """

    def __init__(
        self,
        base: CapacityProcess,
        low_fraction: float = 0.25,
        period: int = 20,
        num_groups: int = 2,
    ) -> None:
        require_in_closed_unit_interval(low_fraction, "low_fraction")
        require_positive_int(period, "period")
        require_positive_int(num_groups, "num_groups")
        if num_groups > base.num_helpers:
            raise ValueError(
                f"num_groups={num_groups} exceeds the helper count "
                f"({base.num_helpers}); every cohort needs a member"
            )
        self._base = base
        self._low_fraction = float(low_fraction)
        self._period = int(period)
        self._num_groups = int(num_groups)
        self._stage = 0
        self._groups = np.arange(base.num_helpers) % num_groups

    @property
    def num_helpers(self) -> int:
        """Helper count of the wrapped process."""
        return self._base.num_helpers

    @property
    def degraded(self) -> np.ndarray:
        """Current degradation mask (True = helper throttled this stage)."""
        active = (self._stage // self._period) % self._num_groups
        return self._groups == active

    def capacities(self) -> np.ndarray:
        """Base capacities with the active cohort scaled down."""
        caps = np.asarray(self._base.capacities(), dtype=float).copy()
        caps[self.degraded] *= self._low_fraction
        return caps

    def minimum_capacities(self) -> np.ndarray:
        """Per-helper lower bound: every helper periodically degrades."""
        base_min = np.asarray(self._base.minimum_capacities(), dtype=float)
        return base_min * self._low_fraction

    def advance(self) -> None:
        """Advance the base process and the square-wave clock."""
        self._base.advance()
        self._stage += 1
