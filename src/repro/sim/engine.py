"""A small discrete-event simulation engine.

The streaming system (helpers, peers, churn, bandwidth switches, learning
rounds) runs on this engine.  It is a classic calendar-queue design:

* events are ``(time, priority, sequence, callback)`` tuples in a binary
  heap; ties break by priority, then FIFO by insertion sequence, so runs
  are fully deterministic;
* callbacks receive the :class:`Simulator` and may schedule further events;
* :meth:`Simulator.schedule_periodic` installs recurring events (learning
  rounds, metric sampling).

The engine knows nothing about streaming — it is reused by the churn and
bandwidth processes and available to downstream users as a substrate.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

EventCallback = Callable[["Simulator"], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    priority: int
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Returned by ``schedule``; allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (lazy deletion from the heap)."""
        self._event.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for e in self._queue if not e.cancelled)

    def schedule_at(
        self, time: float, callback: EventCallback, priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        event = _ScheduledEvent(
            time=float(time),
            priority=int(priority),
            sequence=next(self._sequence),
            callback=callback,
        )
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule(
        self, delay: float, callback: EventCallback, priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` after ``delay`` time units (>= 0)."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback, priority=priority)

    def schedule_periodic(
        self,
        period: float,
        callback: EventCallback,
        priority: int = 0,
        first_delay: Optional[float] = None,
    ) -> EventHandle:
        """Schedule ``callback`` every ``period`` units until cancelled.

        The returned handle cancels the *whole series*.
        """
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        delay = period if first_delay is None else first_delay
        series_cancelled = {"flag": False}

        outer_handle: List[EventHandle] = []

        def fire(sim: "Simulator") -> None:
            if series_cancelled["flag"]:
                return
            callback(sim)
            if not series_cancelled["flag"]:
                inner = sim.schedule(period, fire, priority=priority)
                outer_handle[0] = inner

        first = self.schedule(delay, fire, priority=priority)
        outer_handle.append(first)

        class _SeriesHandle(EventHandle):
            def __init__(self) -> None:  # noqa: D401 - wraps the live handle
                pass

            @property
            def time(self) -> float:
                return outer_handle[0].time

            @property
            def cancelled(self) -> bool:
                return series_cancelled["flag"]

            def cancel(self) -> None:
                series_cancelled["flag"] = True
                outer_handle[0].cancel()

        return _SeriesHandle()

    def step(self) -> bool:
        """Run the next event; return False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback(self)
            return True
        return False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> None:
        """Run all events with ``time <= end_time`` then set now = end_time."""
        if end_time < self._now:
            raise ValueError(f"end_time {end_time} is before now {self._now}")
        budget = max_events
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > end_time:
                break
            if budget is not None:
                if budget <= 0:
                    raise RuntimeError("max_events exhausted before end_time")
                budget -= 1
            self.step()
        self._now = float(end_time)

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue drains (or ``max_events`` is hit)."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                raise RuntimeError("max_events exhausted with events still pending")
