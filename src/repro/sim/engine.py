"""A small discrete-event simulation engine.

The streaming system (helpers, peers, churn, bandwidth switches, learning
rounds) runs on this engine.  It is a classic calendar-queue design:

* events are ``(time, priority, sequence, callback)`` tuples in a binary
  heap; ties break by priority, then FIFO by insertion sequence, so runs
  are fully deterministic;
* callbacks receive the :class:`Simulator` and may schedule further events;
* :meth:`Simulator.schedule_periodic` installs recurring events (learning
  rounds, metric sampling) at drift-free absolute times;
* cancellation is lazy (a flag on the heap entry), but the simulator keeps
  a live-event counter so :attr:`Simulator.pending` is O(1), and it
  compacts the heap whenever cancelled entries outnumber live ones — a
  long-running system with heavy churn cannot leak dead events.

The engine knows nothing about streaming — it is reused by the churn and
bandwidth processes and available to downstream users as a substrate.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.telemetry import get_telemetry

EventCallback = Callable[["Simulator"], None]

# Compaction keeps amortized O(log n) scheduling: rebuilds are triggered at
# most once per O(n) cancellations, so their linear cost amortizes away.
_COMPACT_MIN_QUEUE = 16


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    priority: int
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(compare=False, default=False)
    in_queue: bool = field(compare=False, default=True)


class EventHandle:
    """Returned by ``schedule``; allows cancellation."""

    def __init__(
        self, event: _ScheduledEvent, simulator: Optional["Simulator"] = None
    ) -> None:
        self._event = event
        self._simulator = simulator

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (lazy deletion from the heap)."""
        event = self._event
        if event.cancelled:
            return
        event.cancelled = True
        if self._simulator is not None and event.in_queue:
            self._simulator._note_cancelled()


class Simulator:
    """Deterministic discrete-event simulator."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._live = 0       # non-cancelled events currently in the heap
        self._dead = 0       # cancelled entries awaiting lazy removal
        tel = get_telemetry()
        self._ph_dispatch = tel.phase("sim.dispatch")
        self._ctr_events = tel.counter("sim.events")

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of queued (non-cancelled) events — O(1)."""
        return self._live

    @property
    def queue_size(self) -> int:
        """Heap entries including not-yet-compacted cancelled ones."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Internal bookkeeping
    # ------------------------------------------------------------------

    def _note_cancelled(self) -> None:
        """A queued event was cancelled: update counters, maybe compact."""
        self._live -= 1
        self._dead += 1
        if (
            len(self._queue) >= _COMPACT_MIN_QUEUE
            and self._dead * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (ordering is preserved
        because entries compare by ``(time, priority, sequence)``)."""
        for event in self._queue:
            if event.cancelled:
                event.in_queue = False
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._dead = 0

    def _pop(self) -> Optional[_ScheduledEvent]:
        """Pop the next live event, discarding stale cancelled entries."""
        while self._queue:
            event = heapq.heappop(self._queue)
            event.in_queue = False
            if event.cancelled:
                self._dead -= 1
                continue
            self._live -= 1
            return event
        return None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule_at(
        self, time: float, callback: EventCallback, priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        event = _ScheduledEvent(
            time=float(time),
            priority=int(priority),
            sequence=next(self._sequence),
            callback=callback,
        )
        heapq.heappush(self._queue, event)
        self._live += 1
        return EventHandle(event, self)

    def schedule(
        self, delay: float, callback: EventCallback, priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` after ``delay`` time units (>= 0)."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback, priority=priority)

    def schedule_periodic(
        self,
        period: float,
        callback: EventCallback,
        priority: int = 0,
        first_delay: Optional[float] = None,
    ) -> EventHandle:
        """Schedule ``callback`` every ``period`` units until cancelled.

        The ``k``-th firing lands at the absolute time
        ``first + k * period`` (``first`` being the first firing time), not
        at accumulated ``now + period`` offsets, so long series do not
        drift from float rounding.  The returned handle cancels the *whole
        series*.
        """
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        delay = period if first_delay is None else first_delay
        first_time = self._now + delay
        series_cancelled = {"flag": False}
        fired = itertools.count(1)

        outer_handle: List[EventHandle] = []

        def fire(sim: "Simulator") -> None:
            if series_cancelled["flag"]:
                return
            callback(sim)
            if not series_cancelled["flag"]:
                inner = sim.schedule_at(
                    first_time + next(fired) * period, fire, priority=priority
                )
                outer_handle[0] = inner

        first = self.schedule_at(first_time, fire, priority=priority)
        outer_handle.append(first)

        class _SeriesHandle(EventHandle):
            def __init__(self) -> None:  # noqa: D401 - wraps the live handle
                pass

            @property
            def time(self) -> float:
                return outer_handle[0].time

            @property
            def cancelled(self) -> bool:
                return series_cancelled["flag"]

            def cancel(self) -> None:
                series_cancelled["flag"] = True
                outer_handle[0].cancel()

        return _SeriesHandle()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Run the next event; return False if the queue is empty."""
        event = self._pop()
        if event is None:
            return False
        self._now = event.time
        self._events_processed += 1
        self._ctr_events.inc()
        t0 = self._ph_dispatch.start()
        event.callback(self)
        self._ph_dispatch.stop(t0)
        return True

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> None:
        """Run all events with ``time <= end_time`` then set now = end_time."""
        if end_time < self._now:
            raise ValueError(f"end_time {end_time} is before now {self._now}")
        budget = max_events
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                head.in_queue = False
                self._dead -= 1
                continue
            if head.time > end_time:
                break
            if budget is not None:
                if budget <= 0:
                    raise RuntimeError("max_events exhausted before end_time")
                budget -= 1
            self.step()
        self._now = float(end_time)

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue drains (or ``max_events`` is hit)."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                raise RuntimeError("max_events exhausted with events still pending")
