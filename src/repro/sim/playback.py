"""Playback buffers and quality-of-experience metrics.

The paper motivates correlated equilibria with QoE: herding "will result in
frequent interruption in the streaming flow and poor quality of
experience" (Sec. III-B).  This module makes that claim measurable: a
standard fluid playback-buffer model driven by the per-stage rates a peer
received, plus the QoE summaries used by the QoE ablation bench —

* stall (rebuffering) fraction,
* number of distinct stall events,
* startup delay,
* helper-switch rate (each switch interrupts the one-directional stream).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.game.repeated_game import Trajectory
from repro.util.validation import require_non_negative, require_positive


@dataclass
class PlaybackBuffer:
    """Fluid playback buffer for one viewer.

    Content arrives at the received rate and drains at the channel bitrate
    while playing.  Playback starts (and restarts after a stall) once
    ``startup_buffer`` seconds of content are buffered.

    Parameters
    ----------
    bitrate:
        Playback rate (kbit/s).
    startup_buffer:
        Seconds of content required before playback (re)starts.
    capacity_seconds:
        Maximum buffered content; surplus arrivals are discarded.
    """

    bitrate: float
    startup_buffer: float = 2.0
    capacity_seconds: float = 30.0

    def __post_init__(self) -> None:
        require_positive(self.bitrate, "bitrate")
        require_non_negative(self.startup_buffer, "startup_buffer")
        require_positive(self.capacity_seconds, "capacity_seconds")
        self._level = 0.0           # seconds of content buffered
        self._playing = False
        self._stalled_time = 0.0
        self._played_time = 0.0
        self._stall_events = 0
        self._startup_delay: Optional[float] = None
        self._clock = 0.0

    @property
    def level_seconds(self) -> float:
        """Seconds of content currently buffered."""
        return self._level

    @property
    def playing(self) -> bool:
        """Whether playback is currently running."""
        return self._playing

    @property
    def stalled_fraction(self) -> float:
        """Fraction of elapsed time spent stalled (after first start)."""
        total = self._played_time + self._stalled_time
        if total <= 0:
            return 0.0
        return self._stalled_time / total

    @property
    def stall_events(self) -> int:
        """Number of distinct rebuffering events (excludes initial startup)."""
        return self._stall_events

    @property
    def startup_delay(self) -> Optional[float]:
        """Time until playback first started (None if it never did)."""
        return self._startup_delay

    def advance(self, received_rate: float, duration: float = 1.0) -> None:
        """Advance ``duration`` seconds with the given arrival rate.

        Uses a conservative order: content arrives, then playback drains;
        a stall is declared when the buffer cannot cover the interval.
        """
        if received_rate < 0:
            raise ValueError("received_rate must be >= 0")
        require_positive(duration, "duration")
        self._clock += duration
        self._level += received_rate / self.bitrate * duration
        self._level = min(self._level, self.capacity_seconds)

        if not self._playing:
            if self._level >= self.startup_buffer:
                self._playing = True
                if self._startup_delay is None:
                    self._startup_delay = self._clock
            else:
                if self._startup_delay is not None:
                    self._stalled_time += duration
                return

        # Playing: drain.
        if self._level >= duration:
            self._level -= duration
            self._played_time += duration
        else:
            played = max(0.0, self._level)
            self._level = 0.0
            self._played_time += played
            self._stalled_time += duration - played
            self._playing = False
            self._stall_events += 1


@dataclass(frozen=True)
class QoEReport:
    """Population-level quality-of-experience summary."""

    stall_fraction: np.ndarray     # (N,) per-peer stalled-time fraction
    stall_events: np.ndarray       # (N,) per-peer rebuffer count
    startup_delay: np.ndarray      # (N,) NaN if playback never started
    switch_rate: np.ndarray        # (N,) fraction of stages with a switch

    @property
    def mean_stall_fraction(self) -> float:
        """Population mean stalled-time fraction."""
        return float(self.stall_fraction.mean())

    @property
    def mean_switch_rate(self) -> float:
        """Population mean helper-switch rate."""
        return float(self.switch_rate.mean())

    @property
    def peers_with_stalls(self) -> float:
        """Fraction of peers that rebuffered at least once."""
        return float(np.mean(self.stall_events > 0))


def switch_rate(trajectory: Trajectory) -> np.ndarray:
    """Per-peer fraction of stages where the chosen helper changed."""
    actions = trajectory.actions
    if actions.shape[0] < 2:
        return np.zeros(actions.shape[1])
    changes = actions[1:] != actions[:-1]
    return changes.mean(axis=0)


def playback_qoe(
    trajectory: Trajectory,
    bitrate: float,
    round_duration: float = 1.0,
    startup_buffer: float = 2.0,
) -> QoEReport:
    """Run every peer's received-rate series through a playback buffer.

    Parameters
    ----------
    trajectory:
        A recorded run; ``utilities`` are the per-stage received rates.
    bitrate:
        Channel playback bitrate (kbit/s).
    round_duration:
        Seconds per stage.
    startup_buffer:
        Buffer threshold (seconds) for starting/resuming playback.
    """
    t, n = trajectory.utilities.shape
    stall_fraction = np.empty(n)
    stall_events = np.empty(n, dtype=int)
    startup = np.full(n, np.nan)
    for i in range(n):
        buffer = PlaybackBuffer(bitrate=bitrate, startup_buffer=startup_buffer)
        for stage in range(t):
            buffer.advance(float(trajectory.utilities[stage, i]), round_duration)
        stall_fraction[i] = buffer.stalled_fraction
        stall_events[i] = buffer.stall_events
        if buffer.startup_delay is not None:
            startup[i] = buffer.startup_delay
    return QoEReport(
        stall_fraction=stall_fraction,
        stall_events=stall_events,
        startup_delay=startup,
        switch_rate=switch_rate(trajectory),
    )
