"""Peer churn: Poisson arrivals, exponential lifetimes.

Paper Sec. I lists "join/leave of peers" among the non-stationarities the
adaptive algorithm must cope with; the churn ablation bench exercises it.
The process schedules join and leave events on the simulation engine; the
system supplies the actual join/leave mechanics via callbacks, so the churn
model stays independent of streaming details.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.util.rng import Seedish, as_generator
from repro.util.validation import require_non_negative


@dataclass(frozen=True)
class ChurnConfig:
    """Churn parameters.

    Attributes
    ----------
    arrival_rate:
        Poisson rate of new-peer arrivals (peers per time unit); 0 disables
        arrivals.
    mean_lifetime:
        Mean of the exponential online duration assigned to each arriving
        peer; ``None`` means peers never leave.
    initial_peer_lifetimes:
        If True, initial peers also get exponential lifetimes.
    """

    arrival_rate: float = 0.0
    mean_lifetime: Optional[float] = None
    initial_peer_lifetimes: bool = False

    def __post_init__(self) -> None:
        require_non_negative(self.arrival_rate, "arrival_rate")
        if self.mean_lifetime is not None and self.mean_lifetime <= 0:
            raise ValueError("mean_lifetime must be positive or None")


class ChurnProcess:
    """Drives join/leave events on a :class:`~repro.sim.engine.Simulator`.

    Parameters
    ----------
    config:
        Rates and lifetime settings.
    on_join:
        Callback ``() -> peer_id`` executed at each arrival; returns the id
        of the newly joined peer (the system creates the peer and learner).
    on_leave:
        Callback ``(peer_id) -> None`` executed when a lifetime expires.
    """

    def __init__(
        self,
        config: ChurnConfig,
        on_join: Callable[[], int],
        on_leave: Callable[[int], None],
        rng: Seedish = None,
    ) -> None:
        self._config = config
        self._on_join = on_join
        self._on_leave = on_leave
        self._rng = as_generator(rng)
        self._joins = 0
        self._leaves = 0

    @property
    def joins(self) -> int:
        """Arrivals processed so far."""
        return self._joins

    @property
    def leaves(self) -> int:
        """Departures processed so far."""
        return self._leaves

    def start(self, sim: Simulator) -> None:
        """Install the first arrival event (if arrivals are enabled)."""
        if self._config.arrival_rate > 0:
            self._schedule_next_arrival(sim)

    def schedule_lifetime(self, sim: Simulator, peer_id: int) -> None:
        """Give ``peer_id`` an exponential online duration (if configured)."""
        if self._config.mean_lifetime is None:
            return
        lifetime = float(self._rng.exponential(self._config.mean_lifetime))

        def leave(_: Simulator) -> None:
            self._leaves += 1
            self._on_leave(peer_id)

        sim.schedule(lifetime, leave)

    def _schedule_next_arrival(self, sim: Simulator) -> None:
        gap = float(self._rng.exponential(1.0 / self._config.arrival_rate))

        def arrive(inner_sim: Simulator) -> None:
            self._joins += 1
            peer_id = self._on_join()
            self.schedule_lifetime(inner_sim, peer_id)
            self._schedule_next_arrival(inner_sim)

        sim.schedule(gap, arrive)
