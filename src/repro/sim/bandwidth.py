"""Helper-bandwidth processes (the environment of the repeated game).

The paper's evaluation drives each helper's available upload bandwidth with
an independent, slowly-switching ergodic Markov chain over the levels
``[700, 800, 900]`` kbit/s.  :class:`MarkovCapacityProcess` implements the
:class:`repro.game.repeated_game.CapacityProcess` protocol on top of
:mod:`repro.mdp.markov_chain`; :func:`paper_bandwidth_process` builds the
canonical paper configuration; :class:`TraceCapacityProcess` replays a
recorded path (for deterministic tests and paired algorithm comparisons).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.mdp.markov_chain import MarkovChain, birth_death_chain
from repro.util.rng import Seedish, as_generator, spawn_many

PAPER_BANDWIDTH_LEVELS = (700.0, 800.0, 900.0)


class MarkovCapacityProcess:
    """Per-helper capacities driven by independent Markov chains."""

    def __init__(self, chains: Sequence[MarkovChain]) -> None:
        if not chains:
            raise ValueError("need at least one chain")
        self._chains = list(chains)

    @property
    def num_helpers(self) -> int:
        """Number of helpers ``H``."""
        return len(self._chains)

    @property
    def chains(self) -> List[MarkovChain]:
        """The underlying chains (same objects)."""
        return self._chains

    def capacities(self) -> np.ndarray:
        """Current per-helper capacities."""
        return np.array([c.state_value for c in self._chains])

    def advance(self) -> None:
        """Step every chain once."""
        for chain in self._chains:
            chain.step()

    def expected_capacities(self) -> np.ndarray:
        """Stationary mean capacity of each helper."""
        return np.array([c.expected_state_value() for c in self._chains])

    def minimum_capacities(self) -> np.ndarray:
        """Lowest bandwidth level of each helper (for the Fig. 5 deficit)."""
        return np.array([float(np.min(c.states)) for c in self._chains])


def paper_bandwidth_process(
    num_helpers: int,
    levels: Sequence[float] = PAPER_BANDWIDTH_LEVELS,
    stay_probability: float = 0.9,
    rng: Seedish = None,
) -> MarkovCapacityProcess:
    """The paper's environment: independent slow birth–death chains.

    Each helper switches between ``levels`` (default ``[700, 800, 900]``)
    with the given per-stage stay probability.
    """
    if num_helpers < 1:
        raise ValueError("num_helpers must be >= 1")
    parent = as_generator(rng)
    children = spawn_many(parent, num_helpers)
    chains = [
        birth_death_chain(levels, stay_probability=stay_probability, rng=child)
        for child in children
    ]
    return MarkovCapacityProcess(chains)


class TraceCapacityProcess:
    """Replay a recorded ``(T, H)`` capacity path; wraps around at the end."""

    def __init__(self, trace: np.ndarray) -> None:
        arr = np.asarray(trace, dtype=float)
        if arr.ndim != 2 or arr.shape[0] == 0 or arr.shape[1] == 0:
            raise ValueError("trace must be a non-empty (T, H) array")
        if np.any(arr < 0) or np.any(~np.isfinite(arr)):
            raise ValueError("trace capacities must be finite and non-negative")
        self._trace = arr
        self._min = arr.min(axis=0)
        self._t = 0

    @property
    def num_helpers(self) -> int:
        """Number of helpers ``H``."""
        return self._trace.shape[1]

    @property
    def length(self) -> int:
        """Length of the recorded path ``T``."""
        return self._trace.shape[0]

    def capacities(self) -> np.ndarray:
        """Capacities at the current position."""
        return self._trace[self._t % self.length].copy()

    def advance(self) -> None:
        """Move to the next recorded stage (wrapping)."""
        self._t += 1

    def reset(self) -> None:
        """Rewind to the start of the trace."""
        self._t = 0

    def minimum_capacities(self) -> np.ndarray:
        """Per-helper minimum over the recorded path (Fig. 5 deficit bound).

        Mirrors :meth:`MarkovCapacityProcess.minimum_capacities` so a
        recorded trace can drive the streaming systems directly.
        """
        return self._min.copy()


def record_capacity_trace(
    process: MarkovCapacityProcess, num_stages: int
) -> np.ndarray:
    """Sample a ``(num_stages, H)`` path from a live process.

    Advances the process; use the result with
    :class:`TraceCapacityProcess` to give several algorithms the *same*
    environment realization (paired comparisons in the ablation benches).
    """
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    out = np.empty((num_stages, process.num_helpers))
    for t in range(num_stages):
        out[t] = process.capacities()
        process.advance()
    return out
