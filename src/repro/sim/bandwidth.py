"""Helper-bandwidth processes (the environment of the repeated game).

The paper's evaluation drives each helper's available upload bandwidth with
an independent, slowly-switching ergodic Markov chain over the levels
``[700, 800, 900]`` kbit/s.  Two interchangeable implementations of the
:class:`repro.game.repeated_game.CapacityProcess` protocol live here:

* :class:`MarkovCapacityProcess` — one scalar
  :class:`~repro.mdp.markov_chain.MarkovChain` object per helper; the
  reference implementation, and the one to use when individual chains need
  to be inspected or heterogeneous per-chain plumbing is easiest object by
  object.
* :class:`VectorizedCapacityProcess` — all ``H`` chains in one
  :class:`~repro.mdp.markov_chain.BatchMarkovChains` bank; one uniform draw
  and one inverse-CDF lookup per stage regardless of ``H``, the backend for
  helper counts in the thousands.

:func:`paper_bandwidth_process` builds the canonical paper configuration on
either backend; :class:`TraceCapacityProcess` replays a recorded path (for
deterministic tests and paired algorithm comparisons);
:func:`record_capacity_trace` samples a path from a live process, with a
one-shot fast path when the process exposes one.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.mdp.markov_chain import (
    BatchMarkovChains,
    MarkovChain,
    birth_death_chain,
)
from repro.util.rng import Seedish, as_generator, spawn_many

PAPER_BANDWIDTH_LEVELS = (700.0, 800.0, 900.0)

#: Capacity-process backends accepted by :func:`paper_bandwidth_process`.
CAPACITY_BACKENDS = ("scalar", "vectorized")


class MarkovCapacityProcess:
    """Per-helper capacities driven by independent Markov chains."""

    def __init__(self, chains: Sequence[MarkovChain]) -> None:
        if not chains:
            raise ValueError("need at least one chain")
        self._chains = list(chains)
        # Level-value lookup table, built once: row i holds chain i's state
        # values (rows padded to the widest chain; a chain's state index
        # never reaches the padding).  capacities() indexes this table
        # instead of rebuilding a Python list -> np.array every stage.
        width = max(c.num_states for c in self._chains)
        self._values = np.zeros((len(self._chains), width))
        for i, chain in enumerate(self._chains):
            self._values[i, : chain.num_states] = chain.states
        self._rows = np.arange(len(self._chains))

    @property
    def num_helpers(self) -> int:
        """Number of helpers ``H``."""
        return len(self._chains)

    @property
    def chains(self) -> List[MarkovChain]:
        """The underlying chains (same objects)."""
        return self._chains

    def capacities(self) -> np.ndarray:
        """Current per-helper capacities."""
        states = np.fromiter(
            (c.state_index for c in self._chains),
            dtype=np.intp,
            count=len(self._chains),
        )
        return self._values[self._rows, states]

    def advance(self) -> None:
        """Step every chain once."""
        for chain in self._chains:
            chain.step()

    def expected_capacities(self) -> np.ndarray:
        """Stationary mean capacity of each helper."""
        return np.array([c.expected_state_value() for c in self._chains])

    def minimum_capacities(self) -> np.ndarray:
        """Lowest bandwidth level of each helper (for the Fig. 5 deficit)."""
        return np.array([float(np.min(c.states)) for c in self._chains])


class VectorizedCapacityProcess:
    """Per-helper capacities driven by a :class:`BatchMarkovChains` bank.

    Implements the same :class:`~repro.game.repeated_game.CapacityProcess`
    protocol (plus :meth:`minimum_capacities`) as
    :class:`MarkovCapacityProcess`, so it drops into both streaming systems
    and the repeated-game drivers unchanged.  Advancing is O(H) array work
    with no per-chain Python — the environment-side counterpart of the
    vectorized learner runtime.
    """

    def __init__(self, chains: BatchMarkovChains) -> None:
        if not isinstance(chains, BatchMarkovChains):
            raise TypeError(
                f"chains must be a BatchMarkovChains, got {type(chains)!r}"
            )
        self._batch = chains

    @property
    def num_helpers(self) -> int:
        """Number of helpers ``H``."""
        return self._batch.num_chains

    @property
    def chains(self) -> BatchMarkovChains:
        """The underlying chain bank (same object)."""
        return self._batch

    def capacities(self) -> np.ndarray:
        """Current per-helper capacities."""
        return self._batch.state_values()

    def advance(self) -> None:
        """Step every chain once (one vectorized draw)."""
        self._batch.step()

    def expected_capacities(self) -> np.ndarray:
        """Stationary mean capacity of each helper."""
        return self._batch.expected_state_values()

    def minimum_capacities(self) -> np.ndarray:
        """Lowest bandwidth level of each helper (for the Fig. 5 deficit)."""
        return self._batch.minimum_values()

    def record_trace(self, num_stages: int) -> np.ndarray:
        """Sample a ``(num_stages, H)`` path in one shot.

        Same contract as :func:`record_capacity_trace` (row 0 is the
        current state; the process ends ``num_stages`` steps ahead), but a
        single batched draw instead of a Python loop per stage.
        """
        if num_stages < 1:
            raise ValueError("num_stages must be >= 1")
        return self._batch.sample_value_paths(num_stages)


def paper_bandwidth_process(
    num_helpers: int,
    levels: Sequence[float] = PAPER_BANDWIDTH_LEVELS,
    stay_probability: float = 0.9,
    rng: Seedish = None,
    backend: str = "scalar",
):
    """The paper's environment: independent slow birth–death chains.

    Each helper switches between ``levels`` (default ``[700, 800, 900]``)
    with the given per-stage stay probability.  ``backend`` selects the
    representation: ``"scalar"`` builds one
    :class:`~repro.mdp.markov_chain.MarkovChain` per helper (the seed
    default, one spawned child generator each), ``"vectorized"`` builds one
    :class:`~repro.mdp.markov_chain.BatchMarkovChains` bank (one generator,
    one draw per stage — the default inside the vectorized runtime).  The
    two backends realize the same process law on different RNG stream
    layouts, so paths with the same seed differ but statistics agree.
    """
    if num_helpers < 1:
        raise ValueError("num_helpers must be >= 1")
    if backend not in CAPACITY_BACKENDS:
        raise ValueError(
            f"backend must be one of {CAPACITY_BACKENDS}, got {backend!r}"
        )
    parent = as_generator(rng)
    if backend == "vectorized":
        return VectorizedCapacityProcess(
            BatchMarkovChains.birth_death(
                levels,
                num_chains=num_helpers,
                stay_probability=stay_probability,
                rng=parent,
            )
        )
    children = spawn_many(parent, num_helpers)
    chains = [
        birth_death_chain(levels, stay_probability=stay_probability, rng=child)
        for child in children
    ]
    return MarkovCapacityProcess(chains)


class TraceCapacityProcess:
    """Replay a recorded ``(T, H)`` capacity path; wraps around at the end."""

    def __init__(self, trace: np.ndarray) -> None:
        arr = np.asarray(trace, dtype=float)
        if arr.ndim != 2 or arr.shape[0] == 0 or arr.shape[1] == 0:
            raise ValueError("trace must be a non-empty (T, H) array")
        if np.any(arr < 0) or np.any(~np.isfinite(arr)):
            raise ValueError("trace capacities must be finite and non-negative")
        self._trace = arr
        self._min = arr.min(axis=0)
        self._t = 0

    @property
    def num_helpers(self) -> int:
        """Number of helpers ``H``."""
        return self._trace.shape[1]

    @property
    def length(self) -> int:
        """Length of the recorded path ``T``."""
        return self._trace.shape[0]

    def capacities(self) -> np.ndarray:
        """Capacities at the current position."""
        return self._trace[self._t % self.length].copy()

    def advance(self) -> None:
        """Move to the next recorded stage (wrapping)."""
        self._t += 1

    def reset(self) -> None:
        """Rewind to the start of the trace."""
        self._t = 0

    def minimum_capacities(self) -> np.ndarray:
        """Per-helper minimum over the recorded path (Fig. 5 deficit bound).

        Mirrors :meth:`MarkovCapacityProcess.minimum_capacities` so a
        recorded trace can drive the streaming systems directly.
        """
        return self._min.copy()


def record_capacity_trace(process, num_stages: int) -> np.ndarray:
    """Sample a ``(num_stages, H)`` path from a live process.

    Advances the process; use the result with
    :class:`TraceCapacityProcess` to give several algorithms the *same*
    environment realization (paired comparisons in the ablation benches).
    Processes exposing a one-shot ``record_trace`` (the vectorized backend)
    take that fast path; anything else falls back to the generic
    ``capacities()`` / ``advance()`` loop.
    """
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    fast = getattr(process, "record_trace", None)
    if fast is not None:
        return np.asarray(fast(num_stages), dtype=float)
    out = np.empty((num_stages, process.num_helpers))
    for t in range(num_stages):
        out[t] = process.capacities()
        process.advance()
    return out
