"""Chunk-level video delivery.

The analytical model of the paper is fluid: a helper's capacity splits
evenly, ``r_i = C_j / n_j``.  Real streaming systems move fixed-size video
*chunks*; this module implements that granularity so the fluid model can be
validated against a packetized one:

* a helper has a per-round upload budget of ``C_j * duration`` kbits;
* connected peers request chunks in playback order; the helper serves them
  round-robin, one chunk at a time, until the budget (plus banked
  remainder) is exhausted;
* peers therefore receive an integer number of chunks per round whose
  long-run average rate equals the fluid share.

:class:`ChunkLevelSystem` replays a learner population on top of chunk
delivery and reports both the game-level trajectory (learners observe
their *delivered* rate) and playback QoE.  The consistency test
(`tests/sim/test_chunks.py`) checks the fluid and chunk-level paths agree
on long-run rates, which is what justifies using the fast fluid model in
the headline experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.game.interfaces import Learner
from repro.game.repeated_game import CapacityProcess, Trajectory
from repro.util.validation import require_positive


@dataclass
class ChunkConfig:
    """Chunking parameters.

    Attributes
    ----------
    chunk_seconds:
        Playback duration of one chunk.
    bitrate:
        Channel bitrate (kbit/s); chunk size is ``bitrate * chunk_seconds``
        kbits.
    round_duration:
        Seconds per learning round.
    """

    chunk_seconds: float = 1.0
    bitrate: float = 300.0
    round_duration: float = 1.0

    def __post_init__(self) -> None:
        require_positive(self.chunk_seconds, "chunk_seconds")
        require_positive(self.bitrate, "bitrate")
        require_positive(self.round_duration, "round_duration")

    @property
    def chunk_kbits(self) -> float:
        """Size of one chunk in kbits."""
        return self.bitrate * self.chunk_seconds


class HelperUploader:
    """Round-robin chunk server for one helper.

    Unused budget fractions are banked across rounds (a helper mid-chunk at
    the round boundary finishes it next round), so no capacity is lost to
    rounding and long-run delivered totals match capacity exactly.
    """

    def __init__(self, chunk_kbits: float) -> None:
        require_positive(chunk_kbits, "chunk_kbits")
        self._chunk_kbits = float(chunk_kbits)
        self._banked = 0.0
        self._rr_offset = 0

    @property
    def banked_kbits(self) -> float:
        """Budget carried over from previous rounds (< one chunk)."""
        return self._banked

    def serve_round(
        self, budget_kbits: float, num_peers: int
    ) -> np.ndarray:
        """Serve one round; returns chunks delivered per connected peer.

        Peers are addressed by position ``0..num_peers-1``; the round-robin
        pointer persists across rounds so service stays fair even when the
        per-round chunk count is not a multiple of the peer count.
        """
        if budget_kbits < 0:
            raise ValueError("budget_kbits must be >= 0")
        if num_peers < 0:
            raise ValueError("num_peers must be >= 0")
        delivered = np.zeros(max(num_peers, 1), dtype=int)[:num_peers]
        if num_peers == 0:
            # No one to serve; budget is not banked (capacity is perishable
            # when unused — matches the fluid model's occupied-only welfare).
            self._banked = 0.0
            self._rr_offset = 0
            return delivered
        total = self._banked + budget_kbits
        chunks = int(total // self._chunk_kbits)
        self._banked = total - chunks * self._chunk_kbits
        if chunks:
            base, extra = divmod(chunks, num_peers)
            delivered += base
            for k in range(extra):
                delivered[(self._rr_offset + k) % num_peers] += 1
            self._rr_offset = (self._rr_offset + extra) % num_peers
        return delivered


@dataclass
class ChunkRunResult:
    """Output of a chunk-level run."""

    trajectory: Trajectory       # delivered *rates* as utilities
    chunks: np.ndarray           # (T, N) chunks delivered per peer per round
    fluid_rates: np.ndarray      # (T, N) what the fluid model would give


class ChunkLevelSystem:
    """Learner population on chunk-granular helper delivery."""

    def __init__(
        self,
        learners: Sequence[Learner],
        capacity_process: CapacityProcess,
        config: ChunkConfig,
    ) -> None:
        if not learners:
            raise ValueError("need at least one learner")
        h = capacity_process.num_helpers
        for idx, learner in enumerate(learners):
            if learner.num_actions != h:
                raise ValueError(
                    f"learner {idx} has {learner.num_actions} actions for "
                    f"{h} helpers"
                )
        self._learners = list(learners)
        self._process = capacity_process
        self._config = config
        self._uploaders = [
            HelperUploader(config.chunk_kbits) for _ in range(h)
        ]

    @property
    def num_peers(self) -> int:
        """Population size."""
        return len(self._learners)

    @property
    def num_helpers(self) -> int:
        """Helper count."""
        return self._process.num_helpers

    def run(self, num_rounds: int) -> ChunkRunResult:
        """Play ``num_rounds`` rounds of chunk-level delivery."""
        if num_rounds < 1:
            raise ValueError("num_rounds must be >= 1")
        n, h = self.num_peers, self.num_helpers
        cfg = self._config
        capacities = np.empty((num_rounds, h))
        actions = np.empty((num_rounds, n), dtype=int)
        loads = np.empty((num_rounds, h), dtype=int)
        rates = np.empty((num_rounds, n))
        chunks_out = np.empty((num_rounds, n), dtype=int)
        fluid = np.empty((num_rounds, n))
        for t in range(num_rounds):
            caps = np.asarray(self._process.capacities(), dtype=float)
            acts = np.fromiter(
                (learner.act() for learner in self._learners), dtype=int, count=n
            )
            counts = np.bincount(acts, minlength=h)
            # Chunk delivery per helper.
            delivered = np.zeros(n, dtype=int)
            for j in range(h):
                members = np.flatnonzero(acts == j)
                served = self._uploaders[j].serve_round(
                    caps[j] * cfg.round_duration, members.size
                )
                delivered[members] = served
            rate = delivered * cfg.chunk_kbits / cfg.round_duration
            for i, learner in enumerate(self._learners):
                learner.observe(int(acts[i]), float(rate[i]))
            capacities[t] = caps
            actions[t] = acts
            loads[t] = counts
            rates[t] = rate
            chunks_out[t] = delivered
            fluid[t] = caps[acts] / counts[acts]
            self._process.advance()
        trajectory = Trajectory(
            capacities=capacities, actions=actions, loads=loads, utilities=rates
        )
        return ChunkRunResult(
            trajectory=trajectory, chunks=chunks_out, fluid_rates=fluid
        )
