"""Recorded output of a streaming-system run.

:class:`SystemTrace` accumulates one row per learning round and exposes the
aggregates the paper's figures are built from.  Per-peer detail is kept as
cumulative statistics on the :class:`~repro.sim.entities.Peer` objects
(population size may change under churn); when the population is fixed the
system can additionally export a dense
:class:`~repro.game.repeated_game.Trajectory` for CE analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.game.repeated_game import Trajectory
from repro.telemetry import get_telemetry


@dataclass
class RoundRecord:
    """Aggregates of one learning round."""

    time: float
    capacities: np.ndarray          # (H,) helper capacities this round
    loads: np.ndarray               # (H,) connected-peer counts
    welfare: float                  # sum of helper shares delivered
    server_load: float              # total server top-up requested
    min_deficit: float              # Fig. 5 lower bound this round
    online_peers: int
    total_demand: float


@dataclass
class SystemTrace:
    """Dense per-round history of a system run."""

    rounds: List[RoundRecord] = field(default_factory=list)
    actions: Optional[List[np.ndarray]] = None     # per-round (N,) if fixed pop
    utilities: Optional[List[np.ndarray]] = None   # per-round (N,) if fixed pop

    def __post_init__(self) -> None:
        self._ctr_appends = get_telemetry().counter("trace.appends")

    def append(self, record: RoundRecord) -> None:
        """Add one round."""
        self.rounds.append(record)
        self._ctr_appends.inc()

    # ------------------------------------------------------------------
    # Column views
    # ------------------------------------------------------------------

    @property
    def num_rounds(self) -> int:
        """Rounds recorded."""
        return len(self.rounds)

    def _column(self, name: str) -> np.ndarray:
        return np.array([getattr(r, name) for r in self.rounds])

    @property
    def times(self) -> np.ndarray:
        """Round timestamps, shape ``(T,)``."""
        return self._column("time")

    @property
    def welfare(self) -> np.ndarray:
        """Per-round social welfare, shape ``(T,)``."""
        return self._column("welfare")

    @property
    def server_load(self) -> np.ndarray:
        """Per-round server top-up, shape ``(T,)`` (Fig. 5 solid line)."""
        return self._column("server_load")

    @property
    def min_deficit(self) -> np.ndarray:
        """Per-round minimum bandwidth deficit, shape ``(T,)`` (Fig. 5 bound)."""
        return self._column("min_deficit")

    @property
    def online_peers(self) -> np.ndarray:
        """Per-round online population, shape ``(T,)``."""
        return self._column("online_peers")

    @property
    def total_demand(self) -> np.ndarray:
        """Per-round aggregate demand, shape ``(T,)``."""
        return self._column("total_demand")

    @property
    def loads(self) -> np.ndarray:
        """Per-round helper loads, shape ``(T, H)``."""
        return np.stack([r.loads for r in self.rounds])

    @property
    def capacities(self) -> np.ndarray:
        """Per-round helper capacities, shape ``(T, H)``."""
        return np.stack([r.capacities for r in self.rounds])

    def to_trajectory(self) -> Trajectory:
        """Dense trajectory for CE analysis (fixed population runs only)."""
        if not self.actions or not self.utilities:
            raise ValueError(
                "per-peer recording was not enabled or the population changed; "
                "run the system with record_peers=True and no churn"
            )
        return Trajectory(
            capacities=self.capacities,
            actions=np.stack(self.actions),
            loads=self.loads,
            utilities=np.stack(self.utilities),
        )

    def summary(self) -> Dict[str, float]:
        """Headline aggregates over the whole run."""
        if not self.rounds:
            raise ValueError("trace is empty")
        return {
            "rounds": float(self.num_rounds),
            "mean_welfare": float(self.welfare.mean()),
            "mean_server_load": float(self.server_load.mean()),
            "mean_min_deficit": float(self.min_deficit.mean()),
            "mean_online_peers": float(self.online_peers.mean()),
            "final_welfare": float(self.welfare[-1]),
        }
