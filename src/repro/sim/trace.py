"""Recorded output of a streaming-system run.

:class:`SystemTrace` accumulates one row per learning round and exposes the
aggregates the paper's figures are built from.  Per-peer detail is kept as
cumulative statistics on the :class:`~repro.sim.entities.Peer` objects
(population size may change under churn); when the population is fixed the
system can additionally export a dense
:class:`~repro.game.repeated_game.Trajectory` for CE analysis.

Storage is *columnar*: rounds land in preallocated block arrays (scalar
columns plus ``(block, H)`` capacity/load panels) that roll over to a
completed-block list every :data:`_TRACE_BLOCK` rounds, so the per-round
append cost is a handful of array element writes instead of a Python
object construction.  The legacy ``rounds`` list of
:class:`RoundRecord` objects is materialized lazily (and cached) for
callers that still want row-oriented access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.game.repeated_game import Trajectory
from repro.telemetry import get_telemetry

# Rounds per preallocated column block.  A block of 1024 rounds costs
# ~48 KiB of scalar columns plus 16 * H bytes per round of panel data —
# small enough to never matter, large enough that the roll-over branch is
# amortized away.
_TRACE_BLOCK = 1024

_SCALAR_COLUMNS = (
    ("time", np.float64),
    ("welfare", np.float64),
    ("server_load", np.float64),
    ("min_deficit", np.float64),
    ("online_peers", np.int64),
    ("total_demand", np.float64),
)


@dataclass
class RoundRecord:
    """Aggregates of one learning round."""

    time: float
    capacities: np.ndarray          # (H,) helper capacities this round
    loads: np.ndarray               # (H,) connected-peer counts
    welfare: float                  # sum of helper shares delivered
    server_load: float              # total server top-up requested
    min_deficit: float              # Fig. 5 lower bound this round
    online_peers: int
    total_demand: float


class SystemTrace:
    """Dense per-round history of a system run (columnar storage)."""

    def __init__(
        self,
        rounds: Optional[List[RoundRecord]] = None,
        actions: Optional[List[np.ndarray]] = None,
        utilities: Optional[List[np.ndarray]] = None,
    ) -> None:
        self.actions = actions        # per-round (N,) if fixed pop
        self.utilities = utilities    # per-round (N,) if fixed pop
        self._count = 0
        self._width: Optional[int] = None
        self._full: List[Dict[str, np.ndarray]] = []
        self._active: Optional[Dict[str, np.ndarray]] = None
        self._fill = 0
        self._rounds_cache: Optional[List[RoundRecord]] = None
        self._ctr_appends = get_telemetry().counter("trace.appends")
        for record in rounds or ():
            self.append(record)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def _new_block(self, width: int) -> Dict[str, np.ndarray]:
        block = {
            name: np.empty(_TRACE_BLOCK, dtype=dtype)
            for name, dtype in _SCALAR_COLUMNS
        }
        block["capacities"] = np.empty((_TRACE_BLOCK, width))
        block["loads"] = np.empty((_TRACE_BLOCK, width), dtype=np.int64)
        return block

    def append_round(
        self,
        time: float,
        capacities: np.ndarray,
        loads: np.ndarray,
        welfare: float,
        server_load: float,
        min_deficit: float,
        online_peers: int,
        total_demand: float,
    ) -> None:
        """Record one round straight into the column blocks.

        The fast path for the vectorized round loop: no
        :class:`RoundRecord` is constructed, and the capacity/load rows
        are copied into the preallocated panels (so callers may reuse
        their buffers).
        """
        if self._active is None or self._fill == _TRACE_BLOCK:
            if self._active is not None:
                self._full.append(self._active)
            if self._width is None:
                self._width = int(np.shape(capacities)[0])
            self._active = self._new_block(self._width)
            self._fill = 0
        i = self._fill
        block = self._active
        block["time"][i] = time
        block["welfare"][i] = welfare
        block["server_load"][i] = server_load
        block["min_deficit"][i] = min_deficit
        block["online_peers"][i] = online_peers
        block["total_demand"][i] = total_demand
        block["capacities"][i] = capacities
        block["loads"][i] = loads
        self._fill = i + 1
        self._count += 1
        self._rounds_cache = None
        self._ctr_appends.inc()

    def append(self, record: RoundRecord) -> None:
        """Add one round."""
        self.append_round(
            record.time,
            record.capacities,
            record.loads,
            record.welfare,
            record.server_load,
            record.min_deficit,
            record.online_peers,
            record.total_demand,
        )

    # ------------------------------------------------------------------
    # Column views
    # ------------------------------------------------------------------

    @property
    def num_rounds(self) -> int:
        """Rounds recorded."""
        return self._count

    def _blocks(self) -> Iterator[Tuple[Dict[str, np.ndarray], int]]:
        for block in self._full:
            yield block, _TRACE_BLOCK
        if self._active is not None and self._fill:
            yield self._active, self._fill

    def _column(self, name: str) -> np.ndarray:
        parts = [block[name][:fill] for block, fill in self._blocks()]
        if not parts:
            return np.array([])
        return np.concatenate(parts)

    @property
    def times(self) -> np.ndarray:
        """Round timestamps, shape ``(T,)``."""
        return self._column("time")

    @property
    def welfare(self) -> np.ndarray:
        """Per-round social welfare, shape ``(T,)``."""
        return self._column("welfare")

    @property
    def server_load(self) -> np.ndarray:
        """Per-round server top-up, shape ``(T,)`` (Fig. 5 solid line)."""
        return self._column("server_load")

    @property
    def min_deficit(self) -> np.ndarray:
        """Per-round minimum bandwidth deficit, shape ``(T,)`` (Fig. 5 bound)."""
        return self._column("min_deficit")

    @property
    def online_peers(self) -> np.ndarray:
        """Per-round online population, shape ``(T,)``."""
        return self._column("online_peers")

    @property
    def total_demand(self) -> np.ndarray:
        """Per-round aggregate demand, shape ``(T,)``."""
        return self._column("total_demand")

    @property
    def loads(self) -> np.ndarray:
        """Per-round helper loads, shape ``(T, H)``."""
        if not self._count:
            raise ValueError("trace is empty")
        return self._column("loads")

    @property
    def capacities(self) -> np.ndarray:
        """Per-round helper capacities, shape ``(T, H)``."""
        if not self._count:
            raise ValueError("trace is empty")
        return self._column("capacities")

    @property
    def rounds(self) -> List[RoundRecord]:
        """Row-oriented view: one :class:`RoundRecord` per round.

        Materialized lazily from the column blocks and cached until the
        next append; mutating the returned records does not write back.
        """
        if self._rounds_cache is None:
            records: List[RoundRecord] = []
            for block, fill in self._blocks():
                for i in range(fill):
                    records.append(
                        RoundRecord(
                            time=float(block["time"][i]),
                            capacities=block["capacities"][i].copy(),
                            loads=block["loads"][i].copy(),
                            welfare=float(block["welfare"][i]),
                            server_load=float(block["server_load"][i]),
                            min_deficit=float(block["min_deficit"][i]),
                            online_peers=int(block["online_peers"][i]),
                            total_demand=float(block["total_demand"][i]),
                        )
                    )
            self._rounds_cache = records
        return self._rounds_cache

    def to_trajectory(self) -> Trajectory:
        """Dense trajectory for CE analysis (fixed population runs only)."""
        if not self.actions or not self.utilities:
            raise ValueError(
                "per-peer recording was not enabled or the population changed; "
                "run the system with record_peers=True and no churn"
            )
        return Trajectory(
            capacities=self.capacities,
            actions=np.stack(self.actions),
            loads=self.loads,
            utilities=np.stack(self.utilities),
        )

    def summary(self) -> Dict[str, float]:
        """Headline aggregates over the whole run."""
        if not self._count:
            raise ValueError("trace is empty")
        return {
            "rounds": float(self.num_rounds),
            "mean_welfare": float(self.welfare.mean()),
            "mean_server_load": float(self.server_load.mean()),
            "mean_min_deficit": float(self.min_deficit.mean()),
            "mean_online_peers": float(self.online_peers.mean()),
            "final_welfare": float(self.welfare[-1]),
        }
