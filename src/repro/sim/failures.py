"""Helper failure injection.

Helpers are ordinary peers volunteering surplus bandwidth; they crash,
leave, or throttle without warning.  :class:`FailureInjectingProcess`
wraps any capacity process and knocks helpers out for random outages:

* each stage, every healthy helper fails independently with probability
  ``failure_rate``;
* a failed helper's capacity reads 0 until it recovers;
* outage lengths are geometric with mean ``mean_outage_rounds``.

Because a failed helper still *accepts* connections (peers discover the
outage only through a zero rate — bandit feedback, as everywhere in the
paper), failure injection exercises exactly the adaptation path RTHS is
designed for.  The failure ablation bench compares RTHS against a sticky
(fixed-overlay) population under increasing failure rates.
"""

from __future__ import annotations


import numpy as np

from repro.game.repeated_game import CapacityProcess
from repro.util.rng import Seedish, as_generator
from repro.util.validation import (
    require_in_closed_unit_interval,
    require_positive,
    require_positive_int,
)


class FailureInjectingProcess:
    """Wrap a capacity process with random helper outages."""

    def __init__(
        self,
        base: CapacityProcess,
        failure_rate: float,
        mean_outage_rounds: float = 20.0,
        rng: Seedish = None,
    ) -> None:
        require_in_closed_unit_interval(failure_rate, "failure_rate")
        require_positive(mean_outage_rounds, "mean_outage_rounds")
        self._base = base
        self._failure_rate = float(failure_rate)
        self._recovery_probability = 1.0 / float(mean_outage_rounds)
        self._rng = as_generator(rng)
        self._failed = np.zeros(base.num_helpers, dtype=bool)
        self._outages_started = 0
        self._stages_failed = 0

    @property
    def num_helpers(self) -> int:
        """Helper count of the wrapped process."""
        return self._base.num_helpers

    @property
    def failed(self) -> np.ndarray:
        """Current outage mask (True = helper down)."""
        return self._failed.copy()

    @property
    def outages_started(self) -> int:
        """Total outage events injected so far."""
        return self._outages_started

    @property
    def failed_helper_stages(self) -> int:
        """Cumulative helper-stages spent in outage."""
        return self._stages_failed

    def capacities(self) -> np.ndarray:
        """Base capacities with failed helpers zeroed."""
        caps = np.asarray(self._base.capacities(), dtype=float).copy()
        caps[self._failed] = 0.0
        return caps

    def minimum_capacities(self) -> np.ndarray:
        """Per-helper lower bound over time (the systems' deficit floor).

        With a positive failure rate every helper can read zero during an
        outage, so the bound is zero everywhere; at rate zero the wrapped
        process's bound passes through.
        """
        if self._failure_rate > 0:
            return np.zeros(self.num_helpers, dtype=float)
        return np.asarray(self._base.minimum_capacities(), dtype=float)

    def advance(self) -> None:
        """Advance the base process and the failure/recovery dynamics."""
        self._base.advance()
        self._stages_failed += int(self._failed.sum())
        draws = self._rng.random(self.num_helpers)
        # Recoveries first (a helper cannot fail and recover in one stage).
        recovering = self._failed & (draws < self._recovery_probability)
        self._failed[recovering] = False
        fresh = (~self._failed) & ~recovering & (draws < self._failure_rate)
        self._outages_started += int(fresh.sum())
        self._failed[fresh] = True


class CorrelatedFailureProcess:
    """Whole failure domains going dark as a unit.

    Real helper fleets fail *together* — a rack loses power, an ISP
    region drops, a software push bricks one deployment cohort.
    Independent per-helper outages (:class:`FailureInjectingProcess`)
    leave the learner plenty of healthy alternatives; correlated outages
    are the adversarial version: helpers split into ``num_groups``
    contiguous domains, and each stage every healthy domain fails *as a
    whole* with probability ``group_failure_rate``, staying dark for a
    geometric outage (mean ``mean_outage_rounds``).  A peer whose whole
    preferred neighborhood vanishes at once must re-explore from scratch
    — the regime where regret tracking should decisively beat sticking.

    Feedback stays bandit, as everywhere in the paper: a failed domain
    still accepts connections and simply reads 0.
    """

    def __init__(
        self,
        base: CapacityProcess,
        num_groups: int = 4,
        group_failure_rate: float = 0.02,
        mean_outage_rounds: float = 20.0,
        rng: Seedish = None,
    ) -> None:
        require_positive_int(num_groups, "num_groups")
        require_in_closed_unit_interval(group_failure_rate, "group_failure_rate")
        require_positive(mean_outage_rounds, "mean_outage_rounds")
        if num_groups > base.num_helpers:
            raise ValueError(
                f"num_groups={num_groups} exceeds the helper count "
                f"({base.num_helpers}); every domain needs a member"
            )
        self._base = base
        self._group_failure_rate = float(group_failure_rate)
        self._recovery_probability = 1.0 / float(mean_outage_rounds)
        self._rng = as_generator(rng)
        # Contiguous domains (np.array_split sizing): helpers j in
        # domain g share fate, modeling rack/region locality.
        self._groups = np.repeat(
            np.arange(num_groups),
            [len(part) for part in np.array_split(np.arange(base.num_helpers), num_groups)],
        )
        self._num_groups = int(num_groups)
        self._group_failed = np.zeros(num_groups, dtype=bool)
        self._outages_started = 0
        self._stages_failed = 0

    @property
    def num_helpers(self) -> int:
        """Helper count of the wrapped process."""
        return self._base.num_helpers

    @property
    def failed(self) -> np.ndarray:
        """Current per-helper outage mask (True = helper down)."""
        return self._group_failed[self._groups].copy()

    @property
    def failed_groups(self) -> np.ndarray:
        """Current per-domain outage mask."""
        return self._group_failed.copy()

    @property
    def outages_started(self) -> int:
        """Total domain-outage events injected so far."""
        return self._outages_started

    @property
    def failed_helper_stages(self) -> int:
        """Cumulative helper-stages spent in outage."""
        return self._stages_failed

    def capacities(self) -> np.ndarray:
        """Base capacities with failed domains zeroed."""
        caps = np.asarray(self._base.capacities(), dtype=float).copy()
        caps[self.failed] = 0.0
        return caps

    def minimum_capacities(self) -> np.ndarray:
        """Per-helper lower bound (zero whenever outages are possible)."""
        if self._group_failure_rate > 0:
            return np.zeros(self.num_helpers, dtype=float)
        return np.asarray(self._base.minimum_capacities(), dtype=float)

    def advance(self) -> None:
        """Advance the base process and the domain failure/recovery dynamics."""
        self._base.advance()
        self._stages_failed += int(self.failed.sum())
        draws = self._rng.random(self._num_groups)
        # Recoveries first (a domain cannot fail and recover in one stage).
        recovering = self._group_failed & (draws < self._recovery_probability)
        self._group_failed[recovering] = False
        fresh = (
            (~self._group_failed)
            & ~recovering
            & (draws < self._group_failure_rate)
        )
        self._outages_started += int(fresh.sum())
        self._group_failed[fresh] = True


def availability(process: FailureInjectingProcess, num_stages: int) -> float:
    """Empirical helper availability over ``num_stages`` advances.

    Advances the process; returns the fraction of helper-stages that were
    healthy.  Utility for calibrating failure parameters in experiments.
    """
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    healthy = 0
    total = num_stages * process.num_helpers
    for _ in range(num_stages):
        healthy += int((~process.failed).sum())
        process.advance()
    return healthy / total
