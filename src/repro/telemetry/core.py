"""Telemetry primitives: counters, gauges, histograms, phase timers.

The design goal is **zero overhead when off**.  Every instrument the
:class:`Telemetry` registry hands out when disabled is the shared
module-level :data:`NULL` object, whose methods are empty one-liners —
so instrumented hot loops pay exactly one attribute call (bound-method
lookup) per instrument touch, no branching, no allocation, and nothing
accumulates.  Instrumented code therefore fetches its instruments once
(at construction or import) and uses them unconditionally::

    tel = get_telemetry()
    self._ph_act = tel.phase("round.act")     # NULL when disabled
    ...
    with self._ph_act:                        # no-op enter/exit when off
        local = bank.act_all(offsets, rows)

Enable telemetry by installing an enabled registry as the process-wide
active one (:func:`set_telemetry` / the :func:`session` context manager
in :mod:`repro.telemetry`), *before* constructing the systems to be
observed — instruments are bound at construction.

Instrument semantics (and how fleet snapshots merge, see
:func:`merge_snapshots`):

* **Counter** — monotonically increasing event count; merges by sum.
* **Gauge** — a last-written level (RSS, queue depth); merges by max.
* **Histogram** — fixed upper-bound buckets plus an overflow bucket,
  with sum/count/min/max; merges bucket-wise (bounds must match).
* **PhaseTimer** — accumulated wall-clock of a named code region
  (count/total/min/max seconds); merges like a counter over time.
"""

from __future__ import annotations

import bisect
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Version tag stamped into every snapshot record (bump when the snapshot
#: layout changes incompatibly).
SNAPSHOT_SCHEMA = 1

#: Default histogram bucket upper bounds for duration-style observations,
#: in seconds: half-decade log spacing from 10 us to 10 s.
DURATION_BUCKETS_S = (
    1e-5, 3.16e-5, 1e-4, 3.16e-4, 1e-3, 3.16e-3,
    1e-2, 3.16e-2, 1e-1, 3.16e-1, 1.0, 3.16, 10.0,
)


class _NullInstrument:
    """The shared do-nothing stand-in for every instrument type.

    One singleton (:data:`NULL`) implements the union of all instrument
    surfaces, so disabled call sites never branch: ``inc``/``add``,
    ``set``, ``observe``, context-manager enter/exit, and the
    ``start``/``stop`` timer protocol all fall through immediately.
    """

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def add(self, value: float) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def start(self) -> float:
        return 0.0

    def stop(self, started: float) -> float:
        return 0.0

    def maybe(self, tick: int) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return "<telemetry NULL>"


#: The module-level null object every disabled instrument resolves to.
NULL = _NullInstrument()


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Count ``n`` more events."""
        self.value += n

    # ``add`` aliases ``inc`` so float totals (bytes, kbit) also work.
    def add(self, value: float) -> None:
        """Accumulate a float quantity (bytes moved, kbit served)."""
        self.value += value


class Gauge:
    """A last-written level (RSS, live peers, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


class Histogram:
    """A fixed-bucket histogram with sum/count/min/max.

    ``bounds`` are inclusive upper bucket bounds in ascending order; one
    implicit overflow bucket catches everything above the last bound, so
    ``counts`` has ``len(bounds) + 1`` entries.  Buckets are fixed at
    construction — snapshots are therefore constant-size and two
    histograms of the same name merge bucket-wise across workers.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count", "min", "max")

    def __init__(
        self, name: str, bounds: Sequence[float] = DURATION_BUCKETS_S
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"histogram bounds must be strictly ascending, got {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value


class PhaseTimer:
    """Accumulated wall-clock time of a named code region.

    Usable as a context manager (``with tel.phase("round.act"): ...``)
    or via the allocation-free ``t0 = p.start() ... p.stop(t0)`` pair
    when the elapsed time is also needed by the caller (``stop`` returns
    the elapsed seconds).  Not re-entrant — one region, one timer.
    """

    __slots__ = ("name", "count", "total_s", "min_s", "max_s", "_entered")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = float("-inf")
        self._entered = 0.0

    def start(self) -> float:
        """Begin one timed pass; returns the token ``stop`` consumes."""
        return time.perf_counter()

    def stop(self, started: float) -> float:
        """End a pass begun by ``start``; returns the elapsed seconds."""
        elapsed = time.perf_counter() - started
        self.count += 1
        self.total_s += elapsed
        if elapsed < self.min_s:
            self.min_s = elapsed
        if elapsed > self.max_s:
            self.max_s = elapsed
        return elapsed

    def __enter__(self) -> "PhaseTimer":
        self._entered = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop(self._entered)
        return False


class Telemetry:
    """The instrument registry: one namespace of named instruments.

    ``enabled=False`` (the default for the process-wide registry) makes
    every accessor return :data:`NULL` — the zero-overhead-off path.
    Instruments are created on first access and live for the registry's
    lifetime; :meth:`snapshot` captures all of them as one plain dict,
    :meth:`flush` emits that snapshot to the attached sinks.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._phases: Dict[str, PhaseTimer] = {}
        self._sinks: List = []
        self._seq = 0
        self._born = time.perf_counter()
        #: Rounds (or ticks) between resource samples; 0 = off.
        self.sample_period = 0
        #: Rounds (or ticks) between sink flushes; 0 = final flush only.
        self.flush_interval = 0

    # ------------------------------------------------------------------
    # Instrument accessors
    # ------------------------------------------------------------------

    def counter(self, name: str):
        """The named counter (:data:`NULL` when disabled)."""
        if not self.enabled:
            return NULL
        try:
            return self._counters[name]
        except KeyError:
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str):
        """The named gauge (:data:`NULL` when disabled)."""
        if not self.enabled:
            return NULL
        try:
            return self._gauges[name]
        except KeyError:
            return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str, bounds: Sequence[float] = DURATION_BUCKETS_S):
        """The named histogram (:data:`NULL` when disabled).

        ``bounds`` applies on first access; later accesses return the
        existing histogram and raise if they request different bounds
        (silent bucket drift would make merges meaningless).
        """
        if not self.enabled:
            return NULL
        existing = self._histograms.get(name)
        if existing is not None:
            if tuple(float(b) for b in bounds) != existing.bounds:
                raise ValueError(
                    f"histogram {name!r} already exists with bounds "
                    f"{existing.bounds}; cannot re-declare with {tuple(bounds)}"
                )
            return existing
        return self._histograms.setdefault(name, Histogram(name, bounds))

    def phase(self, name: str):
        """The named phase timer (:data:`NULL` when disabled)."""
        if not self.enabled:
            return NULL
        try:
            return self._phases[name]
        except KeyError:
            return self._phases.setdefault(name, PhaseTimer(name))

    # ------------------------------------------------------------------
    # Sinks and snapshots
    # ------------------------------------------------------------------

    def add_sink(self, sink) -> None:
        """Attach a sink; :meth:`flush` emits snapshots to it."""
        self._sinks.append(sink)

    @property
    def sinks(self) -> List:
        """The attached sinks (read-only view)."""
        return list(self._sinks)

    def snapshot(self) -> Dict:
        """All instruments as one JSON-plain dict (see the module doc).

        Disabled registries snapshot to empty sections — nothing was
        collected, and sinks attached to a disabled registry receive
        nothing (``flush`` is a no-op).
        """
        return {
            "schema": SNAPSHOT_SCHEMA,
            "seq": self._seq,
            "elapsed_s": time.perf_counter() - self._born,
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "phases": {
                name: {
                    "count": p.count,
                    "total_s": p.total_s,
                    "min_s": p.min_s if p.count else 0.0,
                    "max_s": p.max_s if p.count else 0.0,
                }
                for name, p in sorted(self._phases.items())
            },
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                    "min": h.min if h.count else 0.0,
                    "max": h.max if h.count else 0.0,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def flush(self) -> Optional[Dict]:
        """Emit one snapshot to every sink; returns it (None when off)."""
        if not self.enabled:
            return None
        snap = self.snapshot()
        self._seq += 1
        for sink in self._sinks:
            sink.emit(snap)
        return snap

    def close(self) -> None:
        """Flush a final snapshot and close every sink."""
        if self.enabled and self._sinks:
            self.flush()
        for sink in self._sinks:
            sink.close()
        self._sinks.clear()

    def reset(self) -> None:
        """Drop all instruments and restart the sequence counter.

        Existing instrument *references* held by already-constructed
        systems keep accumulating into orphaned objects; reset between
        runs only when the instrumented systems are rebuilt too.
        """
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._phases.clear()
        self._seq = 0
        self._born = time.perf_counter()

    def pump(self):
        """A per-run :class:`Pump` driving sampling and periodic flushes.

        :data:`NULL` when disabled, so round loops call
        ``pump.maybe(round_index)`` unconditionally.
        """
        if not self.enabled:
            return NULL
        return Pump(self)


class Pump:
    """Drives periodic resource sampling and sink flushing from a loop.

    The instrumented round loops call :meth:`maybe` once per round with
    their round index; the pump samples process gauges every
    ``sample_period`` ticks and flushes the registry's sinks every
    ``flush_interval`` ticks (0 disables either).
    """

    __slots__ = ("_tel",)

    def __init__(self, telemetry: Telemetry) -> None:
        self._tel = telemetry

    def maybe(self, tick: int) -> None:
        """Run any sampling/flushing due at ``tick`` (1-based)."""
        tel = self._tel
        if tel.sample_period and tick % tel.sample_period == 0:
            sample_process(tel)
        if tel.flush_interval and tick % tel.flush_interval == 0:
            tel.flush()


def sample_process(telemetry: Telemetry) -> None:
    """Record process-level gauges: RSS, peak RSS, GC activity.

    Current RSS comes from ``/proc/self/statm`` where available (Linux);
    peak RSS from ``resource.getrusage`` everywhere.  GC is summarized
    as total collections and collected objects across generations.
    """
    import gc

    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        import sys as _sys

        if _sys.platform == "darwin":  # bytes on macOS, KiB on Linux
            peak_mib = peak / (1024 * 1024)
        else:
            peak_mib = peak / 1024
        telemetry.gauge("proc.peak_rss_mib").set(peak_mib)
    except ImportError:  # pragma: no cover - non-POSIX
        pass
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            pages = int(fh.read().split()[1])
        import os

        telemetry.gauge("proc.rss_mib").set(
            pages * os.sysconf("SC_PAGE_SIZE") / (1024 * 1024)
        )
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        pass
    stats = gc.get_stats()
    telemetry.gauge("gc.collections").set(
        float(sum(s.get("collections", 0) for s in stats))
    )
    telemetry.gauge("gc.collected").set(
        float(sum(s.get("collected", 0) for s in stats))
    )


# ----------------------------------------------------------------------
# Snapshot merging (fleet-wide aggregation)
# ----------------------------------------------------------------------


def merge_snapshots(snapshots: Iterable[Dict]) -> Optional[Dict]:
    """Merge worker snapshots into one fleet-wide view.

    Counters and phase totals sum (work done anywhere is work done);
    gauges take the max (the question a fleet gauge answers is "how high
    did any worker get"); histograms of the same name merge bucket-wise
    and must agree on bounds.  Returns ``None`` for an empty input, and
    annotates the result with ``merged_from`` (the snapshot count).
    """
    snapshots = [s for s in snapshots if s]
    if not snapshots:
        return None
    out: Dict = {
        "schema": SNAPSHOT_SCHEMA,
        "merged_from": len(snapshots),
        "elapsed_s": max(float(s.get("elapsed_s", 0.0)) for s in snapshots),
        "counters": {},
        "gauges": {},
        "phases": {},
        "histograms": {},
    }
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            out["counters"][name] = out["counters"].get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            prev = out["gauges"].get(name)
            out["gauges"][name] = (
                value if prev is None else max(prev, value)
            )
        for name, phase in snap.get("phases", {}).items():
            agg = out["phases"].get(name)
            if agg is None:
                out["phases"][name] = dict(phase)
                continue
            if phase["count"]:
                # A count-0 side reports min/max as 0.0 placeholders;
                # never let those poison the merged extremes.
                agg["min_s"] = (
                    phase["min_s"] if not agg["count"]
                    else min(agg["min_s"], phase["min_s"])
                )
                agg["max_s"] = (
                    phase["max_s"] if not agg["count"]
                    else max(agg["max_s"], phase["max_s"])
                )
            agg["count"] += phase["count"]
            agg["total_s"] += phase["total_s"]
        for name, hist in snap.get("histograms", {}).items():
            agg = out["histograms"].get(name)
            if agg is None:
                out["histograms"][name] = {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                    "min": hist["min"],
                    "max": hist["max"],
                }
                continue
            if agg["bounds"] != list(hist["bounds"]):
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket bounds differ "
                    f"({agg['bounds']} vs {list(hist['bounds'])})"
                )
            agg["counts"] = [
                a + b for a, b in zip(agg["counts"], hist["counts"])
            ]
            agg["sum"] += hist["sum"]
            if hist["count"]:
                agg["min"] = (
                    hist["min"] if not agg["count"] else min(agg["min"], hist["min"])
                )
                agg["max"] = (
                    hist["max"] if not agg["count"] else max(agg["max"], hist["max"])
                )
            agg["count"] += hist["count"]
    return out


def validate_snapshot(record: Dict) -> List[str]:
    """Validate one snapshot record's shape; returns problem strings.

    The contract the :class:`~repro.telemetry.sinks.JsonlSink` golden
    test and the CI telemetry-guard both check: an empty return value
    means the record is well-formed.
    """
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"record is not an object: {type(record).__name__}"]
    if record.get("schema") != SNAPSHOT_SCHEMA:
        problems.append(
            f"schema must be {SNAPSHOT_SCHEMA}, got {record.get('schema')!r}"
        )
    for key, kind in (
        ("counters", dict), ("gauges", dict),
        ("phases", dict), ("histograms", dict),
    ):
        if not isinstance(record.get(key), kind):
            problems.append(f"missing or non-object section {key!r}")
    if not isinstance(record.get("seq", record.get("merged_from")), int):
        problems.append("record carries neither an int 'seq' nor 'merged_from'")
    if problems:
        return problems
    for name, value in record["counters"].items():
        if not isinstance(value, (int, float)):
            problems.append(f"counter {name!r} is not numeric: {value!r}")
    for name, value in record["gauges"].items():
        if not isinstance(value, (int, float)):
            problems.append(f"gauge {name!r} is not numeric: {value!r}")
    for name, phase in record["phases"].items():
        if not isinstance(phase, dict) or not {
            "count", "total_s", "min_s", "max_s"
        } <= set(phase):
            problems.append(f"phase {name!r} lacks count/total_s/min_s/max_s")
    for name, hist in record["histograms"].items():
        if not isinstance(hist, dict) or not {
            "bounds", "counts", "sum", "count"
        } <= set(hist):
            problems.append(f"histogram {name!r} lacks bounds/counts/sum/count")
            continue
        if len(hist["counts"]) != len(hist["bounds"]) + 1:
            problems.append(
                f"histogram {name!r} counts must have len(bounds)+1 entries"
            )
        if hist["count"] != sum(hist["counts"]):
            problems.append(
                f"histogram {name!r} count {hist['count']} != bucket sum "
                f"{sum(hist['counts'])}"
            )
    return problems


# ----------------------------------------------------------------------
# The process-wide active registry
# ----------------------------------------------------------------------

_active = Telemetry(enabled=False)


def get_telemetry() -> Telemetry:
    """The process-wide active registry (disabled by default)."""
    return _active


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` as the active registry; returns the previous.

    Install *before* constructing the systems to observe — instruments
    are bound at construction time.
    """
    global _active
    previous = _active
    _active = telemetry
    return previous
