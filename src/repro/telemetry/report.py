"""Human-readable rendering of telemetry snapshots.

The phase table is the headline: per named phase, call count, total
seconds, mean milliseconds per call, and — when the snapshot contains
the round loop's ``round.total`` envelope phase — each in-round phase's
share of the measured round and the *coverage* (how much of the round
the named sub-phases explain together).  The profiling acceptance bar
for the round loop is coverage >= 90%: anything less means a hot
unnamed region is hiding.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: The envelope phase the vectorized round loop wraps every round in.
ROUND_TOTAL = "round.total"

#: In-round phases share this prefix; everything under it except the
#: envelope itself tiles the round body.
ROUND_PREFIX = "round."


def round_phase_shares(snapshot: Dict) -> Optional[Dict[str, float]]:
    """Per-phase share of ``round.total`` (plus ``"coverage"``).

    ``None`` when the snapshot has no round envelope (e.g. a scalar-
    backend run, which is profiled through ``sim.dispatch`` instead).
    """
    phases = snapshot.get("phases", {})
    total = phases.get(ROUND_TOTAL, {}).get("total_s", 0.0)
    if not total:
        return None
    shares = {
        name: p["total_s"] / total
        for name, p in phases.items()
        if name.startswith(ROUND_PREFIX) and name != ROUND_TOTAL
    }
    shares["coverage"] = sum(shares.values())
    return shares


def _format_rows(headers: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip()
    ]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def render_phase_table(snapshot: Dict) -> str:
    """The phase breakdown as an aligned text table.

    Ordered by total time descending, with the ``round.total`` envelope
    pinned first when present; the share column is relative to it.
    """
    phases = snapshot.get("phases", {})
    if not phases:
        return "(no phases recorded)"
    total = phases.get(ROUND_TOTAL, {}).get("total_s", 0.0)
    names = sorted(
        phases,
        key=lambda n: (n != ROUND_TOTAL, -phases[n]["total_s"]),
    )
    rows = []
    for name in names:
        p = phases[name]
        mean_ms = (p["total_s"] / p["count"] * 1e3) if p["count"] else 0.0
        share = (
            f"{p['total_s'] / total:7.1%}"
            if total and name.startswith(ROUND_PREFIX)
            else ""
        )
        rows.append(
            [
                name,
                str(p["count"]),
                f"{p['total_s']:.4f}",
                f"{mean_ms:.4f}",
                share,
            ]
        )
    table = _format_rows(
        ["phase", "count", "total_s", "ms/call", "share"], rows
    )
    shares = round_phase_shares(snapshot)
    if shares is not None:
        table += (
            f"\ncoverage: named round phases explain "
            f"{shares['coverage']:.1%} of round.total"
        )
    return table


def render_snapshot(snapshot: Dict) -> str:
    """Full snapshot summary: phases, counters, gauges, histograms."""
    parts = ["telemetry summary", render_phase_table(snapshot)]
    counters = snapshot.get("counters", {})
    if counters:
        parts.append("counters:")
        parts.extend(
            f"  {name:30s} {value:>14}" for name, value in sorted(counters.items())
        )
    gauges = snapshot.get("gauges", {})
    if gauges:
        parts.append("gauges:")
        parts.extend(
            f"  {name:30s} {value:>14.3f}" for name, value in sorted(gauges.items())
        )
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        if not hist["count"]:
            continue
        mean = hist["sum"] / hist["count"]
        parts.append(
            f"histogram {name}: n={hist['count']} mean={mean:.6g} "
            f"min={hist['min']:.6g} max={hist['max']:.6g}"
        )
    return "\n".join(parts)
