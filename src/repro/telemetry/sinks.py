"""Pluggable telemetry sinks and the sink-name registry.

A sink consumes snapshot dicts: :meth:`emit` receives each flushed
snapshot, :meth:`close` runs once when the owning
:class:`~repro.telemetry.core.Telemetry` shuts down.  Three stock sinks:

* :class:`MemorySink` — keeps snapshots in a list (tests, in-process
  inspection);
* :class:`JsonlSink` — appends one JSON line per snapshot to a file,
  flushing the OS buffer each emit so a crashed run keeps its records;
* :class:`ConsoleSink` — remembers the latest snapshot and prints the
  phase/counter summary table once, on close.

Sinks are *named* so :class:`~repro.spec.model.TelemetrySpec` (and the
CLI's ``--telemetry`` flag) can address them as strings: ``"memory"``,
``"console"``, ``"jsonl:PATH"`` — the part after the first ``:`` is the
sink's argument.  Third-party sinks plug in with :func:`register_sink`::

    @register_sink("statsd")
    def make_statsd(arg):            # arg: the text after "statsd:"
        return MyStatsdSink(arg or "localhost:8125")
"""

from __future__ import annotations

import json
import sys
from typing import Callable, Dict, List, Optional


class MemorySink:
    """Collects snapshots in memory (``sink.snapshots``)."""

    def __init__(self) -> None:
        self.snapshots: List[Dict] = []
        self.closed = False

    def emit(self, snapshot: Dict) -> None:
        self.snapshots.append(snapshot)

    def close(self) -> None:
        self.closed = True

    @property
    def last(self) -> Optional[Dict]:
        """The most recent snapshot, or ``None``."""
        return self.snapshots[-1] if self.snapshots else None


class JsonlSink:
    """Appends one JSON line per snapshot to ``path``.

    The file opens lazily on first emit (a run that never flushes leaves
    no file) and is flushed after every record, so long-running processes
    stream observable state and a crash loses at most the in-flight line.
    """

    def __init__(self, path) -> None:
        if not path:
            raise ValueError(
                "jsonl sink needs a path: use 'jsonl:/path/to/telemetry.jsonl'"
            )
        self.path = str(path)
        self._fh = None

    def emit(self, snapshot: Dict) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(snapshot) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ConsoleSink:
    """Prints a one-shot summary table of the final snapshot on close."""

    def __init__(self, stream=None) -> None:
        self._stream = stream
        self._last: Optional[Dict] = None

    def emit(self, snapshot: Dict) -> None:
        self._last = snapshot

    def close(self) -> None:
        if self._last is None:
            return
        from repro.telemetry.report import render_snapshot

        stream = self._stream if self._stream is not None else sys.stderr
        print(render_snapshot(self._last), file=stream)


#: Sink name -> factory taking the (possibly empty) text after ``name:``.
_SINK_FACTORIES: Dict[str, Callable[[Optional[str]], object]] = {}


def register_sink(name: str, factory=None, *, overwrite: bool = False):
    """Register a sink factory under ``name``; usable as a decorator.

    The factory receives the text after the first ``:`` in the sink
    reference (``None`` when absent) and returns a sink object.
    """
    if not name or not isinstance(name, str) or ":" in name:
        raise ValueError(
            f"sink name must be a non-empty string without ':', got {name!r}"
        )

    def _add(fn):
        if fn is None:
            raise ValueError(f"cannot register None as sink {name!r}")
        if name in _SINK_FACTORIES and not overwrite:
            raise ValueError(
                f"sink {name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        _SINK_FACTORIES[name] = fn
        return fn

    if factory is None:
        return _add
    return _add(factory)


def sink_names() -> List[str]:
    """Sorted registered sink names."""
    return sorted(_SINK_FACTORIES)


def parse_sink_reference(reference: str) -> tuple:
    """Split ``"name[:arg]"`` and validate the name against the registry.

    Returns ``(name, arg)``; unknown names raise ``ValueError`` listing
    the registered sinks (the validation
    :class:`~repro.spec.model.TelemetrySpec` applies at construction).
    """
    if not reference or not isinstance(reference, str):
        raise ValueError(f"sink reference must be a string, got {reference!r}")
    name, _, arg = reference.partition(":")
    if name not in _SINK_FACTORIES:
        raise ValueError(
            f"unknown telemetry sink {name!r}; registered sinks: "
            f"{', '.join(sink_names())}"
        )
    return name, (arg or None)


def build_sink(reference: str):
    """Instantiate the sink a ``"name[:arg]"`` reference describes."""
    name, arg = parse_sink_reference(reference)
    return _SINK_FACTORIES[name](arg)


register_sink("memory", lambda arg: MemorySink())
register_sink("console", lambda arg: ConsoleSink())
register_sink("jsonl", JsonlSink)
