"""``repro.telemetry`` — zero-overhead-when-off instrumentation.

The observability substrate of the simulator: counters, gauges,
fixed-bucket histograms and phase timers behind one
:class:`~repro.telemetry.core.Telemetry` registry, pluggable sinks
(memory / JSONL / console, see :mod:`repro.telemetry.sinks`), and
fleet-wide snapshot merging for multi-worker sweeps.

The process-wide registry starts **disabled**: every instrument the hot
paths fetch resolves to the shared null object, whose methods are empty
— instrumented code costs one attribute call when telemetry is off, and
the CI ``--channels-guard`` budgets hold unchanged.  Turn collection on
for a scope with :func:`session`::

    from repro import telemetry

    with telemetry.session(sinks=["jsonl:/tmp/run.jsonl"]) as tel:
        system = spec.build()        # instruments bind at construction
        system.run(500)
    # session exit flushes the final snapshot and closes the sinks

or declaratively through :class:`repro.spec.TelemetrySpec` /
``repro run --telemetry`` / ``repro profile``.
"""

from contextlib import contextmanager

from repro.telemetry.core import (
    DURATION_BUCKETS_S,
    NULL,
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    PhaseTimer,
    Pump,
    Telemetry,
    get_telemetry,
    merge_snapshots,
    sample_process,
    set_telemetry,
    validate_snapshot,
)
from repro.telemetry.report import (
    render_phase_table,
    render_snapshot,
    round_phase_shares,
)
from repro.telemetry.sinks import (
    ConsoleSink,
    JsonlSink,
    MemorySink,
    build_sink,
    parse_sink_reference,
    register_sink,
    sink_names,
)


@contextmanager
def session(
    enabled: bool = True,
    sinks=(),
    flush_interval: int = 0,
    sample_period: int = 0,
):
    """Activate a fresh :class:`Telemetry` registry for a ``with`` scope.

    ``sinks`` are ``"name[:arg]"`` references resolved through the sink
    registry (or ready sink objects, passed through).  On exit the final
    snapshot is flushed to every sink, sinks are closed, and the
    previously active registry (usually the disabled default) is
    restored — so tests and CLI commands cannot leak an enabled registry
    into unrelated code.

    With ``enabled=False`` this is a transparent no-op scope: the
    yielded registry hands out null instruments and its sinks receive
    nothing.
    """
    telemetry = Telemetry(enabled=enabled)
    telemetry.flush_interval = int(flush_interval)
    telemetry.sample_period = int(sample_period)
    for ref in sinks:
        telemetry.add_sink(build_sink(ref) if isinstance(ref, str) else ref)
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
        telemetry.close()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseTimer",
    "Pump",
    "Telemetry",
    "NULL",
    "SNAPSHOT_SCHEMA",
    "DURATION_BUCKETS_S",
    "get_telemetry",
    "set_telemetry",
    "session",
    "sample_process",
    "merge_snapshots",
    "validate_snapshot",
    "MemorySink",
    "JsonlSink",
    "ConsoleSink",
    "register_sink",
    "sink_names",
    "build_sink",
    "parse_sink_reference",
    "render_phase_table",
    "render_snapshot",
    "round_phase_shares",
]
