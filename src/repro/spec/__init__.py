"""Declarative experiment specs and component registries.

The public API of the spec layer:

* :class:`~repro.spec.model.ExperimentSpec` and its section dataclasses —
  one serializable description of an experiment that every layer
  (workloads, analysis, CLI, both system backends) consumes;
* the component registries and their ``register_*`` hooks — the plug-in
  points for third-party capacity backends, learners, scenarios and
  metrics;
* :func:`~repro.spec.cells.run_spec_cell` — the picklable sweep cell.

Built-in components register on import (:mod:`repro.spec.builtins`);
scenario presets register from :mod:`repro.workloads.scenarios`.
"""

from repro.spec.registry import (
    CAPACITY_BACKENDS,
    CAPACITY_TRANSFORMS,
    LEARNERS,
    METRICS,
    SCENARIOS,
    LearnerEntry,
    Registry,
    TransformEntry,
    UnknownComponentError,
    register_capacity_backend,
    register_capacity_transform,
    register_learner,
    register_metric,
    register_scenario,
)

import repro.spec.builtins  # noqa: F401  (registers the stock components)

from repro.spec.cells import run_spec_cell
from repro.spec.model import (
    SPEC_DTYPES,
    SYSTEM_BACKENDS,
    CapacitySpec,
    ChurnSpec,
    ExecutionSpec,
    ExperimentSpec,
    LearnerSpec,
    MetricsSpec,
    NetworkSpec,
    RunResult,
    SweepSpec,
    TelemetrySpec,
    TopologySpec,
    TransformSpec,
)

__all__ = [
    # registries
    "Registry",
    "LearnerEntry",
    "TransformEntry",
    "UnknownComponentError",
    "CAPACITY_BACKENDS",
    "CAPACITY_TRANSFORMS",
    "LEARNERS",
    "SCENARIOS",
    "METRICS",
    "register_capacity_backend",
    "register_capacity_transform",
    "register_learner",
    "register_scenario",
    "register_metric",
    # model
    "ExperimentSpec",
    "TopologySpec",
    "CapacitySpec",
    "NetworkSpec",
    "TransformSpec",
    "LearnerSpec",
    "ChurnSpec",
    "MetricsSpec",
    "TelemetrySpec",
    "ExecutionSpec",
    "SweepSpec",
    "RunResult",
    "SYSTEM_BACKENDS",
    "SPEC_DTYPES",
    # cells
    "run_spec_cell",
]
