"""Built-in registry entries: the components the core packages ship.

Imported for its side effects by :mod:`repro.spec` before the spec model,
so every :class:`~repro.spec.model.ExperimentSpec` can resolve the stock
names.  Scenario presets register themselves from
:mod:`repro.workloads.scenarios` (the workloads layer depends on the spec
layer, never the reverse).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.r2hs import R2HSLearner
from repro.core.rths import RTHSLearner
from repro.game.baselines import StickyLearner, UniformRandomLearner
from repro.metrics.fairness import jain_index
from repro.runtime.learner_bank import bank_factory as _runtime_bank_factory
from repro.sim.bandwidth import paper_bandwidth_process
from repro.spec.registry import (
    CAPACITY_TRANSFORMS,
    register_capacity_backend,
    register_capacity_transform,
    register_learner,
    register_metric,
)

# ----------------------------------------------------------------------
# Capacity backends
# ----------------------------------------------------------------------


def _paper_backend(backend: str):
    def build(num_helpers, *, levels, stay_probability, rng):
        return paper_bandwidth_process(
            num_helpers,
            levels=levels,
            stay_probability=stay_probability,
            rng=rng,
            backend=backend,
        )

    return build


register_capacity_backend("scalar", _paper_backend("scalar"))
register_capacity_backend("vectorized", _paper_backend("vectorized"))


# ----------------------------------------------------------------------
# Capacity transforms (the composable pipeline stages)
# ----------------------------------------------------------------------


def _failures_transform(
    process,
    *,
    rng,
    failure_rate: float = 0.02,
    mean_outage_rounds: float = 20.0,
):
    """Random independent helper outages (capacity reads 0 until recovery)."""
    from repro.sim.failures import FailureInjectingProcess

    return FailureInjectingProcess(
        process,
        failure_rate,
        mean_outage_rounds=mean_outage_rounds,
        rng=rng,
    )


register_capacity_transform(
    "failures",
    _failures_transform,
    description=(
        "independent per-helper crash/recovery outages "
        "(geometric outage length, bandit-observed zero rate)"
    ),
)


def _correlated_failures_transform(
    process,
    *,
    rng,
    num_groups: int = 4,
    group_failure_rate: float = 0.02,
    mean_outage_rounds: float = 20.0,
):
    """Whole contiguous failure domains going dark as a unit."""
    from repro.sim.failures import CorrelatedFailureProcess

    return CorrelatedFailureProcess(
        process,
        num_groups=num_groups,
        group_failure_rate=group_failure_rate,
        mean_outage_rounds=mean_outage_rounds,
        rng=rng,
    )


register_capacity_transform(
    "correlated_failures",
    _correlated_failures_transform,
    description=(
        "contiguous helper domains (racks/regions) failing and "
        "recovering as a unit"
    ),
)


def _oscillating_transform(
    process,
    *,
    rng,
    low_fraction: float = 0.25,
    period: int = 20,
    num_groups: int = 2,
):
    """Deterministic rotating degradation square wave over helper cohorts."""
    from repro.sim.adversarial import OscillatingCapacityProcess

    # The wave is a pure function of the stage counter; the pipeline's
    # child stream is deliberately unused.
    return OscillatingCapacityProcess(
        process,
        low_fraction=low_fraction,
        period=period,
        num_groups=num_groups,
    )


register_capacity_transform(
    "oscillating",
    _oscillating_transform,
    description=(
        "adversarial square wave throttling the currently-attractive "
        "helper cohort each period (deterministic)"
    ),
)


def _link_effects_transform(
    process,
    *,
    rng,
    latency_ms=0.0,
    jitter_ms=0.0,
    loss_rate=0.0,
    capacity_scale=1.0,
    rtt_reference_ms: float = 50.0,
):
    """Per-link latency/jitter/loss folding into observed capacity.

    Options accept scalars or per-helper lists; for region matrices and
    helper-class mixes use the spec's ``network`` section, which
    compiles to this same wrapper.
    """
    from repro.network.links import LinkEffectProcess

    return LinkEffectProcess(
        process,
        latency_ms=latency_ms,
        jitter_ms=jitter_ms,
        loss_rate=loss_rate,
        capacity_scale=capacity_scale,
        rtt_reference_ms=rtt_reference_ms,
        rng=rng,
    )


register_capacity_transform(
    "link_effects",
    _link_effects_transform,
    description=(
        "latency/jitter/loss link model scaling capacity to observed "
        "goodput (scalar or per-helper parameters)"
    ),
)


def _clamp_transform(
    process,
    *,
    rng,
    min_capacity: float = 0.0,
    max_capacity=None,
):
    """Hard per-helper capacity floor/ceiling (an access-link cap)."""
    from repro.network.links import ClampedCapacityProcess

    return ClampedCapacityProcess(
        process, min_capacity=min_capacity, max_capacity=max_capacity
    )


register_capacity_transform(
    "clamp",
    _clamp_transform,
    description=(
        "clip capacities into [min_capacity, max_capacity] "
        "(deterministic; does not commute with scaling transforms)"
    ),
)


# ----------------------------------------------------------------------
# Legacy wrapper backends -> warn-once shims over the transforms.
#
# Each shim reproduces the retired monolithic factory's RNG layout
# exactly — parent = as_generator(rng), base gets the first child, the
# wrapper the second — which is also exactly the pipeline's layout for
# ``backend=<base>, transforms=[{name}]``, so old specs stay
# bit-identical both to their historical traces and to their modern
# spelling (the golden-spec check pins this).
# ----------------------------------------------------------------------

_LEGACY_BACKEND_WARNED: set = set()


def _warn_legacy_backend(name: str) -> None:
    if name in _LEGACY_BACKEND_WARNED:
        return
    _LEGACY_BACKEND_WARNED.add(name)
    warnings.warn(
        f"capacity backend {name!r} is deprecated and will be removed in "
        f"the next release; use capacity.transforms = "
        f'[{{"name": {name!r}, "options": {{...}}}}] over a base backend '
        "instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _legacy_transform_backend(name: str, summary: str):
    def build(
        num_helpers,
        *,
        levels,
        stay_probability,
        rng,
        base: str = "vectorized",
        **options,
    ):
        from repro.util.rng import as_generator, spawn

        _warn_legacy_backend(name)
        parent = as_generator(rng)
        process = paper_bandwidth_process(
            num_helpers,
            levels=levels,
            stay_probability=stay_probability,
            rng=spawn(parent),
            backend=base,
        )
        entry = CAPACITY_TRANSFORMS.get(name)
        return entry.factory(process, rng=spawn(parent), **options)

    build.__doc__ = (
        f"{summary} (deprecated: use the {name!r} capacity transform)."
    )
    return build


register_capacity_backend(
    "failures",
    _legacy_transform_backend(
        "failures", "The paper environment wrapped in random helper outages"
    ),
)
register_capacity_backend(
    "correlated_failures",
    _legacy_transform_backend(
        "correlated_failures",
        "The paper environment with whole failure domains going dark",
    ),
)
register_capacity_backend(
    "oscillating",
    _legacy_transform_backend(
        "oscillating",
        "The paper environment under a rotating degradation square wave",
    ),
)


# ----------------------------------------------------------------------
# Learner families (each drives both system backends)
# ----------------------------------------------------------------------


def _regret_scalar(cls):
    def build(epsilon, delta, mu, u_max):
        return lambda h, rng: cls(
            h, rng=rng, epsilon=epsilon, delta=delta, mu=mu, u_max=u_max
        )

    return build


def _regret_bank(kind):
    def build(epsilon, delta, mu, u_max, dtype, bank="dense", topk=32):
        return _runtime_bank_factory(
            kind, epsilon=epsilon, delta=delta, mu=mu, u_max=u_max,
            dtype=dtype, bank=bank, topk=topk,
        )

    return build


def _uniform_scalar(epsilon, delta, mu, u_max):
    return lambda h, rng: UniformRandomLearner(h, rng=rng)


def _uniform_bank(epsilon, delta, mu, u_max, dtype):
    return _runtime_bank_factory("uniform")


def _sticky_scalar(epsilon, delta, mu, u_max):
    return lambda h, rng: StickyLearner(h, rng=rng)


def _sticky_bank(epsilon, delta, mu, u_max, dtype):
    return _runtime_bank_factory("sticky")


register_learner(
    "rths", scalar=_regret_scalar(RTHSLearner), bank=_regret_bank("rths"),
    min_actions=2, sparse=True, grouped=True,
    description=(
        "Regret Tracking Helper Selection (the paper's Alg. 1): "
        "decaying-memory regret matching, tracks a changing environment"
    ),
)
register_learner(
    "r2hs", scalar=_regret_scalar(R2HSLearner), bank=_regret_bank("r2hs"),
    min_actions=2, sparse=True, grouped=True,
    description=(
        "Regret-based Reinforcement Helper Selection (Alg. 2): "
        "time-averaged regrets, converges to the correlated-equilibrium set"
    ),
)
# The baselines keep no regret state; their per-round cost is the
# per-channel RNG call itself, so there is nothing to fuse — they run
# (and honestly report) the per-channel engine.
register_learner(
    "uniform", scalar=_uniform_scalar, bank=_uniform_bank,
    description="baseline: picks a helper uniformly at random every round",
)
register_learner(
    "sticky", scalar=_sticky_scalar, bank=_sticky_bank,
    description=(
        "baseline: picks a helper once and never switches (fixed overlay)"
    ),
)


# ----------------------------------------------------------------------
# Trace metrics (headline scalars + opt-in per-round series)
# ----------------------------------------------------------------------

register_metric("rounds", lambda trace: float(trace.num_rounds))
register_metric("mean_welfare", lambda trace: float(trace.welfare.mean()))
register_metric("final_welfare", lambda trace: float(trace.welfare[-1]))
register_metric(
    "tail_welfare",
    lambda trace: float(trace.welfare[-max(1, trace.num_rounds // 4):].mean()),
)
register_metric(
    "mean_server_load", lambda trace: float(trace.server_load.mean())
)
register_metric(
    "mean_min_deficit", lambda trace: float(trace.min_deficit.mean())
)
register_metric(
    "mean_online_peers", lambda trace: float(trace.online_peers.mean())
)
register_metric(
    "load_jain",
    lambda trace: float(jain_index(trace.loads.mean(axis=0).astype(float))),
)
# Per-round series: array-valued metrics.  Sweeps fan these back from
# worker processes through shared memory (see
# repro.analysis.parallel result handoff), so requesting them at scale
# does not turn result pickling into the bottleneck.
register_metric(
    "welfare_series", lambda trace: np.asarray(trace.welfare, dtype=float)
)
register_metric(
    "server_load_series",
    lambda trace: np.asarray(trace.server_load, dtype=float),
)
register_metric(
    "online_peers_series",
    lambda trace: np.asarray(trace.online_peers, dtype=float),
)
