"""Built-in registry entries: the components the core packages ship.

Imported for its side effects by :mod:`repro.spec` before the spec model,
so every :class:`~repro.spec.model.ExperimentSpec` can resolve the stock
names.  Scenario presets register themselves from
:mod:`repro.workloads.scenarios` (the workloads layer depends on the spec
layer, never the reverse).
"""

from __future__ import annotations

import numpy as np

from repro.core.r2hs import R2HSLearner
from repro.core.rths import RTHSLearner
from repro.game.baselines import StickyLearner, UniformRandomLearner
from repro.metrics.fairness import jain_index
from repro.runtime.learner_bank import bank_factory as _runtime_bank_factory
from repro.sim.bandwidth import paper_bandwidth_process
from repro.spec.registry import (
    register_capacity_backend,
    register_learner,
    register_metric,
)

# ----------------------------------------------------------------------
# Capacity backends
# ----------------------------------------------------------------------


def _paper_backend(backend: str):
    def build(num_helpers, *, levels, stay_probability, rng):
        return paper_bandwidth_process(
            num_helpers,
            levels=levels,
            stay_probability=stay_probability,
            rng=rng,
            backend=backend,
        )

    return build


register_capacity_backend("scalar", _paper_backend("scalar"))
register_capacity_backend("vectorized", _paper_backend("vectorized"))


def _failing_backend(
    num_helpers,
    *,
    levels,
    stay_probability,
    rng,
    failure_rate: float = 0.02,
    mean_outage_rounds: float = 20.0,
    base: str = "vectorized",
):
    """The paper environment wrapped in random helper outages.

    ``failure_rate`` / ``mean_outage_rounds`` parameterize
    :class:`~repro.sim.failures.FailureInjectingProcess` (reachable from
    a spec via ``capacity.options``); ``base`` picks the wrapped
    environment's backend.
    """
    from repro.sim.failures import FailureInjectingProcess
    from repro.util.rng import as_generator, spawn

    parent = as_generator(rng)
    process = paper_bandwidth_process(
        num_helpers,
        levels=levels,
        stay_probability=stay_probability,
        rng=spawn(parent),
        backend=base,
    )
    return FailureInjectingProcess(
        process,
        failure_rate,
        mean_outage_rounds=mean_outage_rounds,
        rng=spawn(parent),
    )


register_capacity_backend("failures", _failing_backend)


def _correlated_failures_backend(
    num_helpers,
    *,
    levels,
    stay_probability,
    rng,
    num_groups: int = 4,
    group_failure_rate: float = 0.02,
    mean_outage_rounds: float = 20.0,
    base: str = "vectorized",
):
    """The paper environment with whole failure domains going dark.

    Helpers split into ``num_groups`` contiguous domains failing as a
    unit (rack/region/push-cohort locality); see
    :class:`~repro.sim.failures.CorrelatedFailureProcess`.  All knobs
    are reachable from a spec via ``capacity.options``.
    """
    from repro.sim.failures import CorrelatedFailureProcess
    from repro.util.rng import as_generator, spawn

    parent = as_generator(rng)
    process = paper_bandwidth_process(
        num_helpers,
        levels=levels,
        stay_probability=stay_probability,
        rng=spawn(parent),
        backend=base,
    )
    return CorrelatedFailureProcess(
        process,
        num_groups=num_groups,
        group_failure_rate=group_failure_rate,
        mean_outage_rounds=mean_outage_rounds,
        rng=spawn(parent),
    )


register_capacity_backend("correlated_failures", _correlated_failures_backend)


def _oscillating_backend(
    num_helpers,
    *,
    levels,
    stay_probability,
    rng,
    low_fraction: float = 0.25,
    period: int = 20,
    num_groups: int = 2,
    base: str = "vectorized",
):
    """The paper environment under a rotating degradation square wave.

    A deterministic adversarial envelope: cohort ``b % num_groups`` is
    throttled to ``low_fraction`` of its base capacity during stage
    block ``b``; see
    :class:`~repro.sim.adversarial.OscillatingCapacityProcess`.  All
    knobs are reachable from a spec via ``capacity.options``.
    """
    from repro.sim.adversarial import OscillatingCapacityProcess
    from repro.util.rng import as_generator, spawn

    parent = as_generator(rng)
    process = paper_bandwidth_process(
        num_helpers,
        levels=levels,
        stay_probability=stay_probability,
        rng=spawn(parent),
        backend=base,
    )
    return OscillatingCapacityProcess(
        process,
        low_fraction=low_fraction,
        period=period,
        num_groups=num_groups,
    )


register_capacity_backend("oscillating", _oscillating_backend)


# ----------------------------------------------------------------------
# Learner families (each drives both system backends)
# ----------------------------------------------------------------------


def _regret_scalar(cls):
    def build(epsilon, delta, mu, u_max):
        return lambda h, rng: cls(
            h, rng=rng, epsilon=epsilon, delta=delta, mu=mu, u_max=u_max
        )

    return build


def _regret_bank(kind):
    def build(epsilon, delta, mu, u_max, dtype, bank="dense", topk=32):
        return _runtime_bank_factory(
            kind, epsilon=epsilon, delta=delta, mu=mu, u_max=u_max,
            dtype=dtype, bank=bank, topk=topk,
        )

    return build


def _uniform_scalar(epsilon, delta, mu, u_max):
    return lambda h, rng: UniformRandomLearner(h, rng=rng)


def _uniform_bank(epsilon, delta, mu, u_max, dtype):
    return _runtime_bank_factory("uniform")


def _sticky_scalar(epsilon, delta, mu, u_max):
    return lambda h, rng: StickyLearner(h, rng=rng)


def _sticky_bank(epsilon, delta, mu, u_max, dtype):
    return _runtime_bank_factory("sticky")


register_learner(
    "rths", scalar=_regret_scalar(RTHSLearner), bank=_regret_bank("rths"),
    min_actions=2, sparse=True, grouped=True,
    description=(
        "Regret Tracking Helper Selection (the paper's Alg. 1): "
        "decaying-memory regret matching, tracks a changing environment"
    ),
)
register_learner(
    "r2hs", scalar=_regret_scalar(R2HSLearner), bank=_regret_bank("r2hs"),
    min_actions=2, sparse=True, grouped=True,
    description=(
        "Regret-based Reinforcement Helper Selection (Alg. 2): "
        "time-averaged regrets, converges to the correlated-equilibrium set"
    ),
)
# The baselines keep no regret state; their per-round cost is the
# per-channel RNG call itself, so there is nothing to fuse — they run
# (and honestly report) the per-channel engine.
register_learner(
    "uniform", scalar=_uniform_scalar, bank=_uniform_bank,
    description="baseline: picks a helper uniformly at random every round",
)
register_learner(
    "sticky", scalar=_sticky_scalar, bank=_sticky_bank,
    description=(
        "baseline: picks a helper once and never switches (fixed overlay)"
    ),
)


# ----------------------------------------------------------------------
# Trace metrics (headline scalars + opt-in per-round series)
# ----------------------------------------------------------------------

register_metric("rounds", lambda trace: float(trace.num_rounds))
register_metric("mean_welfare", lambda trace: float(trace.welfare.mean()))
register_metric("final_welfare", lambda trace: float(trace.welfare[-1]))
register_metric(
    "tail_welfare",
    lambda trace: float(trace.welfare[-max(1, trace.num_rounds // 4):].mean()),
)
register_metric(
    "mean_server_load", lambda trace: float(trace.server_load.mean())
)
register_metric(
    "mean_min_deficit", lambda trace: float(trace.min_deficit.mean())
)
register_metric(
    "mean_online_peers", lambda trace: float(trace.online_peers.mean())
)
register_metric(
    "load_jain",
    lambda trace: float(jain_index(trace.loads.mean(axis=0).astype(float))),
)
# Per-round series: array-valued metrics.  Sweeps fan these back from
# worker processes through shared memory (see
# repro.analysis.parallel result handoff), so requesting them at scale
# does not turn result pickling into the bottleneck.
register_metric(
    "welfare_series", lambda trace: np.asarray(trace.welfare, dtype=float)
)
register_metric(
    "server_load_series",
    lambda trace: np.asarray(trace.server_load, dtype=float),
)
register_metric(
    "online_peers_series",
    lambda trace: np.asarray(trace.online_peers, dtype=float),
)
