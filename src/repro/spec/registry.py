"""String-keyed component registries for the declarative spec layer.

An :class:`~repro.spec.model.ExperimentSpec` names its parts — the
capacity backend, the learner family, the metrics it reports, the canned
scenario it came from — and the registries here resolve those names to
factories.  Third-party code plugs in new components without touching the
core packages::

    from repro.spec import register_capacity_backend

    @register_capacity_backend("satellite-uplink")
    def build_uplink(num_helpers, *, levels, stay_probability, rng):
        return MyUplinkProcess(num_helpers, levels, rng=rng)

    spec = ExperimentSpec.from_json('{"capacity": {"backend": "satellite-uplink"}}')

Unknown names raise :class:`UnknownComponentError` carrying the sorted
list of registered names, so a typo in a spec JSON fails with the menu of
valid choices instead of a bare ``KeyError``.

Registries are per-process.  Worker processes rebuild specs from their
dict form, so a sweep over a spec naming third-party components needs
those ``register_*`` calls to run in the workers too: under the ``fork``
start method (the Linux default) they are inherited automatically; under
``spawn``/``forkserver`` put the registrations at import time of a module
the cell function imports.

The registries and their entry contracts:

* **capacity backends** — ``factory(num_helpers, *, levels,
  stay_probability, rng) -> CapacityProcess`` (anything implementing
  ``capacities()`` / ``advance()`` / ``minimum_capacities()``).
* **capacity transforms** — a :class:`TransformEntry` whose
  ``factory(process, *, rng, **options) -> CapacityProcess`` wraps an
  already-built process with one composable effect (outages, waves,
  link loss).  An :class:`~repro.spec.model.ExperimentSpec` applies its
  ``capacity.transforms`` list in order, handing each stage its own
  child RNG stream.
* **learners** — a :class:`LearnerEntry` bundling a scalar
  learner-factory builder and a vectorized bank-factory builder, so one
  registered name drives both backends.
* **scenarios** — ``factory(**overrides) -> ExperimentSpec`` presets.
* **metrics** — ``fn(trace) -> float | numpy.ndarray`` computed from a
  :class:`~repro.sim.trace.SystemTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional


class UnknownComponentError(KeyError):
    """A spec named a component that is not registered.

    Subclasses :class:`KeyError` (registries are mappings) but renders as
    a plain message listing every registered name, so spec authors see
    the valid choices instead of a quoted repr.
    """

    def __init__(self, kind: str, name: str, registered: List[str]) -> None:
        self.kind = kind
        self.name = name
        self.registered = list(registered)
        menu = ", ".join(self.registered) if self.registered else "<none>"
        super().__init__(
            f"unknown {kind} {name!r}; registered {kind}s: {menu}"
        )

    def __str__(self) -> str:  # KeyError would re-quote the message
        return self.args[0]


class Registry:
    """A name -> component mapping with decorator-style registration."""

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._entries: Dict[str, object] = {}

    @property
    def kind(self) -> str:
        """Human name of the component family (used in error messages)."""
        return self._kind

    def register(
        self, name: str, obj: object = None, *, overwrite: bool = False
    ):
        """Register ``obj`` under ``name``; usable as a decorator.

        Re-registering an existing name raises unless ``overwrite=True``
        (guards against two plugins silently fighting over a name).
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"component name must be a non-empty string, got {name!r}")

        def _add(component):
            if component is None:
                raise ValueError(f"cannot register None as {self._kind} {name!r}")
            if name in self._entries and not overwrite:
                raise ValueError(
                    f"{self._kind} {name!r} is already registered; "
                    "pass overwrite=True to replace it"
                )
            self._entries[name] = component
            return component

        if obj is None:
            return _add
        return _add(obj)

    def unregister(self, name: str) -> None:
        """Remove ``name`` (missing names are ignored; test cleanup)."""
        self._entries.pop(name, None)

    def get(self, name: str):
        """Resolve ``name``; unknown names raise :class:`UnknownComponentError`."""
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownComponentError(self._kind, name, self.names()) from None

    def names(self) -> List[str]:
        """Sorted registered names."""
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class LearnerEntry:
    """One learner family, buildable on either backend.

    ``scalar(epsilon, delta, mu, u_max)`` returns a
    :data:`~repro.sim.system.LearnerFactory` (per-peer learner objects for
    :class:`~repro.sim.system.StreamingSystem`);
    ``bank(epsilon, delta, mu, u_max, dtype)`` returns a
    :data:`~repro.runtime.learner_bank.BankFactory` (one vectorized block
    per channel for
    :class:`~repro.runtime.VectorizedStreamingSystem`).  Entries without a
    vectorized implementation may leave ``bank`` as ``None`` (and vice
    versa); building a spec on the missing backend then raises a clear
    error.  ``min_actions`` is the smallest per-channel helper count the
    family can learn over (2 for the regret learners, whose action set
    must be non-degenerate); specs validate their topology against it at
    construction.  ``sparse`` declares that the bank builder additionally
    accepts ``bank=``/``topk=`` keyword arguments selecting a sparse
    top-k storage family (see
    :class:`~repro.runtime.learner_bank.TopKRegretBank`); specs with
    ``learner.bank = "topk"`` are only valid against such entries.
    ``grouped`` declares that the bank builder's factories carry a
    ``make_grouped`` hook (see
    :class:`~repro.runtime.learner_bank.GroupableBankFactory`) building
    the fused multi-channel engine; specs with
    ``learner.engine = "grouped"`` are only valid against such entries,
    and ``engine = "auto"`` resolves to the fused engine exactly for
    them.
    """

    scalar: Optional[Callable] = None
    bank: Optional[Callable] = None
    min_actions: int = 1
    sparse: bool = False
    grouped: bool = False
    description: str = ""


@dataclass(frozen=True)
class TransformEntry:
    """One capacity transform: a wrapping factory plus its summary.

    ``factory(process, *, rng, **options)`` receives the process built
    so far (the raw backend, or the previous transform's output) and
    returns it wrapped with one effect.  ``rng`` is a child generator
    spawned for this pipeline stage; purely deterministic transforms
    simply ignore it (the stream is spawned either way, so adding or
    removing RNG consumption inside one transform never perturbs its
    siblings).  ``description`` is the one-line summary ``repro list``
    prints (falls back to the factory docstring).
    """

    factory: Callable
    description: str = ""


#: The global registries.
CAPACITY_BACKENDS: Registry = Registry("capacity backend")
CAPACITY_TRANSFORMS: Registry = Registry("capacity transform")
LEARNERS: Registry = Registry("learner")
SCENARIOS: Registry = Registry("scenario")
METRICS: Registry = Registry("metric")


def register_capacity_backend(name: str, factory=None, *, overwrite: bool = False):
    """Register a capacity-process factory under ``name``.

    ``factory(num_helpers, *, levels, stay_probability, rng)`` must return
    an object implementing the
    :class:`~repro.game.repeated_game.CapacityProcess` protocol plus
    ``minimum_capacities()``.  Usable as a decorator.
    """
    return CAPACITY_BACKENDS.register(name, factory, overwrite=overwrite)


def register_capacity_transform(
    name: str, factory=None, *, description: str = "", overwrite: bool = False
):
    """Register a capacity transform under ``name``.

    ``factory(process, *, rng, **options)`` must return the given
    process wrapped with one effect (it may also return a replacement
    implementing the same
    :class:`~repro.game.repeated_game.CapacityProcess` protocol plus
    ``minimum_capacities()``).  Specs reach it through the ordered
    ``capacity.transforms`` list; unknown option names fail inside the
    factory, unknown transform *names* fail at spec construction with
    the registered menu.  Usable as a decorator.
    """

    def _add(fn):
        CAPACITY_TRANSFORMS.register(
            name,
            TransformEntry(factory=fn, description=description),
            overwrite=overwrite,
        )
        return fn

    if factory is None:
        return _add
    return _add(factory)


def register_learner(
    name: str,
    *,
    scalar=None,
    bank=None,
    min_actions: int = 1,
    sparse: bool = False,
    grouped: bool = False,
    description: str = "",
    overwrite: bool = False,
) -> LearnerEntry:
    """Register a learner family under ``name`` for one or both backends.

    Pass ``sparse=True`` when the ``bank`` builder also accepts
    ``bank=``/``topk=`` keyword arguments (sparse top-k storage) and
    ``grouped=True`` when its factories carry a ``make_grouped`` hook
    (the fused multi-channel engine; plain factories run per-channel).
    ``description`` is the one-line summary ``repro list`` prints.
    """
    if scalar is None and bank is None:
        raise ValueError("register_learner needs a scalar factory, a bank factory, or both")
    entry = LearnerEntry(
        scalar=scalar, bank=bank, min_actions=min_actions, sparse=sparse,
        grouped=grouped, description=description,
    )
    LEARNERS.register(name, entry, overwrite=overwrite)
    return entry


def register_scenario(name: str, factory=None, *, overwrite: bool = False):
    """Register a scenario preset: ``factory(**overrides) -> ExperimentSpec``.

    Usable as a decorator.
    """
    return SCENARIOS.register(name, factory, overwrite=overwrite)


def register_metric(name: str, fn=None, *, overwrite: bool = False):
    """Register a trace metric: ``fn(trace) -> float | ndarray``.

    Usable as a decorator.
    """
    return METRICS.register(name, fn, overwrite=overwrite)
