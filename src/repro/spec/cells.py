"""Picklable sweep-cell functions for spec-driven runs.

:class:`~repro.analysis.parallel.ParallelRunner` ships cell functions to
worker processes, so they must be module-level (or
:func:`functools.partial` over one).  :func:`run_spec_cell` is the single
cell every spec-driven sweep and replication study uses: rebuild the spec
from its dict form, apply the cell's overrides, run, and return the
metrics (plus wall-clock timing).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Mapping


def run_spec_cell(
    spec_dict: Mapping[str, Any], params: Mapping[str, Any], seed: int
) -> Dict[str, Any]:
    """Run one cell of a spec sweep; picklable for worker fan-out.

    ``params`` holds dotted-path overrides from a
    :class:`~repro.spec.model.SweepSpec` grid (the bookkeeping
    ``replication`` key is skipped — replications differ only by seed).
    """
    from repro.spec.model import ExperimentSpec

    spec = ExperimentSpec.from_dict(spec_dict)
    overrides = {k: v for k, v in params.items() if k != "replication"}
    if overrides:
        spec = spec.with_overrides(overrides)
    start = time.perf_counter()
    try:
        result = spec.run(seed=seed)
    except Exception as exc:
        # Name the exact experiment in the worker traceback the runner
        # ships home — a 4000-cell sweep failure is otherwise anonymous.
        exc.add_note(
            f"spec {spec.spec_digest()} ({spec.name!r}) seed={seed} "
            f"overrides={overrides}"
        )
        raise
    elapsed = time.perf_counter() - start
    metrics = dict(result.metrics)
    metrics["elapsed_s"] = elapsed
    metrics["rounds_per_s"] = spec.rounds / elapsed
    if result.telemetry is not None:
        # The worker's snapshot rides back through the runner's ordinary
        # result transport; SweepResult.merged_telemetry() aggregates the
        # fleet (counters sum, gauges max, histograms bucket-wise).
        metrics["telemetry"] = result.telemetry
    return metrics
