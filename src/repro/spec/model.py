"""The declarative experiment description: one serializable spec.

Every experiment in this repository is an instance of one shape — a
peer/helper/channel topology, a capacity process, a learner family, an
optional churn model, and a metric set.  :class:`ExperimentSpec` captures
that shape as a frozen, JSON/dict-round-trippable dataclass tree and is
the single description every layer consumes:

* ``spec.build()`` returns a configured
  :class:`~repro.sim.system.StreamingSystem` or
  :class:`~repro.runtime.VectorizedStreamingSystem` (``backend`` picks the
  representation; everything else is shared).
* ``spec.run(seed=...)`` builds, runs ``rounds`` learning rounds, and
  evaluates the spec's registered metrics.
* ``spec.sweep(workers=...)`` fans a :class:`SweepSpec` grid and/or
  replications across a
  :class:`~repro.analysis.parallel.ParallelRunner`.

Component *names* inside the spec (capacity backend, learner, metrics)
resolve through the registries in :mod:`repro.spec.registry`, so
third-party scenarios and backends plug in without touching core code.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.sim.bandwidth import PAPER_BANDWIDTH_LEVELS
from repro.sim.churn import ChurnConfig
from repro.spec.registry import (
    CAPACITY_BACKENDS,
    CAPACITY_TRANSFORMS,
    LEARNERS,
    METRICS,
)
from repro.telemetry import parse_sink_reference
from repro.telemetry import session as telemetry_session
from repro.util.rng import Seedish, as_generator, spawn

#: System backends a spec can target.
SYSTEM_BACKENDS = ("scalar", "vectorized")

#: Learner storage precisions a spec can request.
SPEC_DTYPES = ("float32", "float64")

#: Learner-bank storage families a spec can request.
SPEC_BANKS = ("dense", "topk")

#: Learner dispatch engines a spec can request (vectorized backend).
SPEC_ENGINES = ("auto", "grouped", "per_channel")


def _check_unknown_keys(cls, data: Mapping[str, Any]) -> None:
    allowed = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} field(s) {unknown}; "
            f"allowed: {sorted(allowed)}"
        )


def _opt_tuple(value) -> Optional[Tuple]:
    if value is None:
        return None
    return tuple(value)


@dataclass(frozen=True)
class TopologySpec:
    """Who is in the system: peers, helpers, channels.

    ``channel_bitrates`` is the per-peer playback demand (kbit/s) — one
    float for all channels or one per channel.  ``channel_popularity``
    weights initial and churn-time channel assignment (``None`` =
    uniform); ``channel_switch_rate`` is the Poisson rate of viewer
    channel switches.  ``popularity_drift_rate`` > 0 re-mixes the
    popularity weights every ``popularity_drift_period`` time units
    (diurnal skew shift; see
    :func:`repro.workloads.popularity.popularity_drift`), steering churn
    joins and viewer switches toward the drifting profile.
    """

    num_peers: int = 1000
    num_helpers: int = 20
    num_channels: int = 1
    channel_bitrates: Any = 350.0
    channel_popularity: Optional[Tuple[float, ...]] = None
    channel_switch_rate: float = 0.0
    round_duration: float = 1.0
    popularity_drift_rate: float = 0.0
    popularity_drift_period: float = 10.0

    def __post_init__(self) -> None:
        if not isinstance(self.channel_bitrates, (int, float)):
            object.__setattr__(
                self, "channel_bitrates", tuple(float(r) for r in self.channel_bitrates)
            )
        object.__setattr__(
            self, "channel_popularity", _opt_tuple(self.channel_popularity)
        )
        # Mirror SystemConfig's construction-time checks so malformed
        # specs fail here (where the CLI reports cleanly) instead of deep
        # inside build().
        if self.num_peers < 1:
            raise ValueError("topology num_peers must be >= 1")
        if self.num_channels < 1:
            raise ValueError("topology num_channels must be >= 1")
        if self.num_helpers < self.num_channels:
            raise ValueError(
                "topology needs at least one helper per channel "
                f"(num_helpers={self.num_helpers}, "
                f"num_channels={self.num_channels})"
            )
        rates = self.channel_bitrates
        rates = (rates,) if isinstance(rates, (int, float)) else rates
        if any(r <= 0 for r in rates):
            raise ValueError("topology channel_bitrates must be positive")
        if self.channel_switch_rate < 0:
            raise ValueError("topology channel_switch_rate must be >= 0")
        if self.round_duration <= 0:
            raise ValueError("topology round_duration must be positive")
        if not 0 <= self.popularity_drift_rate <= 1:
            raise ValueError(
                "topology popularity_drift_rate must lie in [0, 1]"
            )
        if self.popularity_drift_period <= 0:
            raise ValueError(
                "topology popularity_drift_period must be positive"
            )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        _check_unknown_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class TransformSpec:
    """One stage of the capacity-transform pipeline.

    ``name`` resolves through the capacity-transform registry (unknown
    names raise with the registered menu at spec construction);
    ``options`` carries the stage's keyword arguments through to the
    registered factory and must stay JSON-plain for the spec to
    round-trip.
    """

    name: str
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        CAPACITY_TRANSFORMS.get(self.name)  # raises with the menu
        if not isinstance(self.options, Mapping) or any(
            not isinstance(key, str) for key in self.options
        ):
            raise ValueError(
                f"transform {self.name!r} options must be a mapping with "
                "string keys"
            )
        object.__setattr__(self, "options", dict(self.options))

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TransformSpec":
        _check_unknown_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class CapacitySpec:
    """The helper-bandwidth environment and the origin server budget.

    ``backend`` names a registered capacity backend (``"scalar"``,
    ``"vectorized"``, or a plug-in); ``"auto"`` follows the system
    backend.  ``server_capacity`` is the origin server's per-round
    upload budget (``None`` = unbounded; JSON has no ``inf``).
    ``options`` carries backend-specific keyword arguments through to the
    registered factory; it must stay JSON-plain for the spec to
    round-trip.

    ``transforms`` is the ordered capacity-transform pipeline: each
    entry names a registered transform (``"failures"``,
    ``"correlated_failures"``, ``"oscillating"``, ``"link_effects"``,
    ``"clamp"``, or a plug-in) that wraps the process built so far, so
    effects compose — the first transform wraps the raw backend, later
    transforms observe everything upstream.  Each stage is handed its
    own child RNG stream in pipeline order (deterministic transforms
    ignore theirs), so reordering, adding or removing a stage perturbs
    only the stages at and after the edit.  The ``network`` spec section
    (see :class:`NetworkSpec`) applies *after* the last transform: link
    effects fold into the capacity every other effect produced.
    """

    backend: str = "auto"
    levels: Tuple[float, ...] = PAPER_BANDWIDTH_LEVELS
    stay_probability: float = 0.9
    server_capacity: Optional[float] = None
    options: Mapping[str, Any] = field(default_factory=dict)
    transforms: Tuple[TransformSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "levels", tuple(float(v) for v in self.levels))
        if self.backend != "auto":
            CAPACITY_BACKENDS.get(self.backend)  # raises with the menu
        if not self.levels:
            raise ValueError("capacity levels must not be empty")
        if not 0 < self.stay_probability < 1:
            raise ValueError("stay_probability must lie strictly in (0, 1)")
        if self.server_capacity is not None and self.server_capacity <= 0:
            raise ValueError("server_capacity must be positive or None")
        if not isinstance(self.options, Mapping) or any(
            not isinstance(key, str) for key in self.options
        ):
            raise ValueError(
                "capacity options must be a mapping with string keys"
            )
        object.__setattr__(self, "options", dict(self.options))
        transforms = tuple(
            t if isinstance(t, TransformSpec) else TransformSpec.from_dict(t)
            for t in self.transforms
        )
        object.__setattr__(self, "transforms", transforms)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CapacitySpec":
        _check_unknown_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class NetworkSpec:
    """The path between viewers and helpers (all-default = no network).

    The paper's environment is placeless; this section adds the link
    layer, applied *after* the capacity-transform pipeline so path
    effects fold into the observed capacity every other effect produced
    (see :mod:`repro.network`).

    ``regions`` names the geography and ``latency_matrix`` (ms, square
    over the regions, possibly asymmetric) its pairwise RTTs; helpers
    place into contiguous region blocks unless ``helper_regions`` pins
    an explicit per-helper placement, and viewers observe every helper
    through the RTT from its region to ``viewer_region``.
    ``helper_classes`` maps registered helper-class names (``seedbox``,
    ``residential``, ``mobile``, or plug-ins; see
    :mod:`repro.network.classes`) to population fractions — assignment
    is deterministic, contiguous and key-order-independent.
    ``latency_ms`` / ``jitter_ms`` / ``loss_rate`` are global per-link
    parameters added on top of region and class contributions;
    ``rtt_reference_ms`` is the RTT below which latency costs no
    throughput.  Links with any positive jitter redraw their RTT every
    round from a dedicated child RNG stream.
    """

    regions: Tuple[str, ...] = ()
    latency_matrix: Optional[Tuple[Tuple[float, ...], ...]] = None
    helper_regions: Optional[Tuple[int, ...]] = None
    viewer_region: int = 0
    helper_classes: Mapping[str, float] = field(default_factory=dict)
    latency_ms: float = 0.0
    jitter_ms: float = 0.0
    loss_rate: float = 0.0
    rtt_reference_ms: float = 50.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "regions", tuple(str(name) for name in self.regions)
        )
        if self.latency_matrix is not None:
            object.__setattr__(
                self,
                "latency_matrix",
                tuple(tuple(float(v) for v in row) for row in self.latency_matrix),
            )
        object.__setattr__(
            self, "helper_regions", _opt_tuple(self.helper_regions)
        )
        if not isinstance(self.helper_classes, Mapping) or any(
            not isinstance(key, str) for key in self.helper_classes
        ):
            raise ValueError(
                "network helper_classes must be a mapping with string keys"
            )
        object.__setattr__(
            self,
            "helper_classes",
            {name: float(frac) for name, frac in self.helper_classes.items()},
        )
        if self.regions:
            if len(set(self.regions)) != len(self.regions):
                raise ValueError(
                    f"network regions must be unique, got {self.regions}"
                )
            if not 0 <= self.viewer_region < len(self.regions):
                raise ValueError(
                    f"network viewer_region {self.viewer_region} must index "
                    f"the {len(self.regions)} region(s)"
                )
        elif self.latency_matrix is not None:
            raise ValueError("network latency_matrix requires regions")
        elif self.helper_regions is not None:
            raise ValueError("network helper_regions requires regions")
        elif self.viewer_region != 0:
            raise ValueError("network viewer_region requires regions")
        if self.latency_matrix is not None:
            rows = self.latency_matrix
            if len(rows) != len(self.regions) or any(
                len(row) != len(self.regions) for row in rows
            ):
                raise ValueError(
                    "network latency_matrix must be square over the "
                    f"{len(self.regions)} region(s)"
                )
            if any(v < 0 or not np.isfinite(v) for row in rows for v in row):
                raise ValueError(
                    "network latency_matrix entries must be finite and >= 0"
                )
        if self.helper_regions is not None and any(
            not 0 <= int(r) < len(self.regions) for r in self.helper_regions
        ):
            raise ValueError(
                "network helper_regions entries must index the "
                f"{len(self.regions)} region(s)"
            )
        if self.helper_classes:
            from repro.network.classes import HELPER_CLASSES

            for name in self.helper_classes:
                HELPER_CLASSES.get(name)  # raises with the menu
            fractions = list(self.helper_classes.values())
            if any(f < 0 or not np.isfinite(f) for f in fractions):
                raise ValueError(
                    "network helper_classes fractions must be finite and >= 0"
                )
            if sum(fractions) <= 0:
                raise ValueError(
                    "network helper_classes fractions must sum to > 0"
                )
        if self.latency_ms < 0 or self.jitter_ms < 0:
            raise ValueError("network latency_ms/jitter_ms must be >= 0")
        if not 0 <= self.loss_rate < 1:
            raise ValueError("network loss_rate must lie in [0, 1)")
        if self.rtt_reference_ms <= 0:
            raise ValueError("network rtt_reference_ms must be positive")

    @property
    def active(self) -> bool:
        """Whether any field requests a link layer (default = off).

        An inactive section is a guaranteed no-op: the capacity pipeline
        skips it entirely, so all-default specs stay bit-identical to
        the pre-network layout.
        """
        return bool(
            self.regions
            or self.helper_classes
            or self.latency_ms > 0
            or self.jitter_ms > 0
            or self.loss_rate > 0
        )

    def compile(self, num_helpers: int):
        """The per-helper :class:`~repro.network.links.LinkParameters`."""
        from repro.network.links import compile_link_parameters

        return compile_link_parameters(
            num_helpers,
            regions=self.regions,
            latency_matrix=self.latency_matrix,
            helper_regions=self.helper_regions,
            viewer_region=self.viewer_region,
            helper_classes=self.helper_classes,
            latency_ms=self.latency_ms,
            jitter_ms=self.jitter_ms,
            loss_rate=self.loss_rate,
            rtt_reference_ms=self.rtt_reference_ms,
        )

    def apply(self, process, num_helpers: int, rng: Seedish = None):
        """Wrap ``process`` in the compiled link layer."""
        from repro.network.links import LinkEffectProcess

        params = self.compile(num_helpers)
        return LinkEffectProcess(
            process,
            latency_ms=params.latency_ms,
            jitter_ms=params.jitter_ms,
            loss_rate=params.loss_rate,
            capacity_scale=params.capacity_scale,
            rtt_reference_ms=params.rtt_reference_ms,
            rng=rng,
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NetworkSpec":
        _check_unknown_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class LearnerSpec:
    """The helper-selection strategy family and its hyper-parameters.

    ``name`` resolves through the learner registry on either backend.
    ``u_max`` is the utility normalizer; ``None`` defaults to the highest
    capacity level.  ``dtype`` selects the vectorized banks' storage
    precision (``"float32"`` is vectorized-backend-only).  ``bank``
    selects the regret storage family: ``"dense"`` keeps the full
    per-peer regret tensor, ``"topk"`` the sparse top-k blocks of
    :class:`~repro.runtime.learner_bank.TopKRegretBank` tracking ``topk``
    arms per peer (vectorized backend, regret families only; the memory
    unlock for giant helper counts).  ``engine`` selects the vectorized
    round's learner dispatch: ``"grouped"`` (one fused
    ``act_all``/``observe_all`` across every channel — bit-identical to
    per-channel, removes the O(C) dispatch wall), ``"per_channel"``
    (private per-channel banks), or ``"auto"`` (grouped for families
    registered with ``grouped=True`` — every builtin — per-channel
    otherwise).  It composes with ``bank="topk"``.

    ``shards`` > 1 channel-partitions the learner banks across that many
    worker processes (:class:`~repro.runtime.sharded.ShardedSystem`) —
    the single-run parallelism unlock.  Traces are bit-identical to the
    single-process engine for any shard count, so ``shards`` is a pure
    execution knob: it is excluded from the result digest and composes
    with every other learner field (vectorized backend, grouped-capable
    families, ``shards <= num_channels``).
    """

    name: str = "r2hs"
    epsilon: float = 0.05
    delta: float = 0.1
    mu: Optional[float] = None
    u_max: Optional[float] = None
    dtype: str = "float64"
    bank: str = "dense"
    topk: int = 32
    engine: str = "auto"
    shards: int = 1

    def __post_init__(self) -> None:
        LEARNERS.get(self.name)  # raises with the menu
        if self.dtype not in SPEC_DTYPES:
            raise ValueError(
                f"dtype must be one of {SPEC_DTYPES}, got {self.dtype!r}"
            )
        if self.bank not in SPEC_BANKS:
            raise ValueError(
                f"bank must be one of {SPEC_BANKS}, got {self.bank!r}"
            )
        if self.engine not in SPEC_ENGINES:
            raise ValueError(
                f"engine must be one of {SPEC_ENGINES}, got {self.engine!r}"
            )
        if not isinstance(self.topk, int) or self.topk < 2:
            raise ValueError(
                f"topk must be an integer >= 2, got {self.topk!r}"
            )
        if not isinstance(self.shards, int) or self.shards < 1:
            raise ValueError(
                f"shards must be an integer >= 1, got {self.shards!r}"
            )
        if not 0 < self.epsilon <= 1 or not 0 < self.delta < 1:
            raise ValueError("epsilon in (0,1], delta in (0,1) required")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LearnerSpec":
        _check_unknown_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class ChurnSpec:
    """Peer join/leave dynamics (all zeros = a fixed population)."""

    arrival_rate: float = 0.0
    mean_lifetime: Optional[float] = None
    initial_peer_lifetimes: bool = False

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError("churn arrival_rate must be >= 0")
        if self.mean_lifetime is not None and self.mean_lifetime <= 0:
            raise ValueError("churn mean_lifetime must be positive or None")

    def to_config(self) -> ChurnConfig:
        return ChurnConfig(
            arrival_rate=self.arrival_rate,
            mean_lifetime=self.mean_lifetime,
            initial_peer_lifetimes=self.initial_peer_lifetimes,
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChurnSpec":
        _check_unknown_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class MetricsSpec:
    """Which registered metrics a run reports.

    An empty ``metrics`` tuple means the trace's headline ``summary()``
    dict.  ``record_peers`` enables dense per-peer recording (fixed
    populations only).
    """

    metrics: Tuple[str, ...] = ()
    record_peers: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "metrics", tuple(self.metrics))
        for name in self.metrics:
            METRICS.get(name)  # raises with the menu

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsSpec":
        _check_unknown_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class TelemetrySpec:
    """Instrumentation collection for a run (off by default).

    ``sinks`` are ``"name[:arg]"`` references resolved through the
    telemetry sink registry — ``"memory"``, ``"console"``,
    ``"jsonl:PATH"`` or a plug-in registered with
    :func:`repro.telemetry.register_sink`.  Names are validated at spec
    construction, so a typo fails with the registered menu instead of
    deep inside a worker.  ``flush_interval`` emits a snapshot to the
    sinks every that many rounds (0 = final snapshot only);
    ``sample_period`` records process gauges (RSS, GC) every that many
    rounds (0 = off).  When ``enabled`` is false the run pays only the
    null-object attribute calls — the zero-overhead-off contract the CI
    latency guards hold the round loop to.
    """

    enabled: bool = False
    sinks: Tuple[str, ...] = ()
    flush_interval: int = 0
    sample_period: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "sinks", tuple(str(ref) for ref in self.sinks)
        )
        for ref in self.sinks:
            parse_sink_reference(ref)  # raises with the registered menu
        if not isinstance(self.flush_interval, int) or self.flush_interval < 0:
            raise ValueError(
                "telemetry flush_interval must be an integer >= 0 "
                f"(rounds between flushes; 0 = final only), got "
                f"{self.flush_interval!r}"
            )
        if not isinstance(self.sample_period, int) or self.sample_period < 0:
            raise ValueError(
                "telemetry sample_period must be an integer >= 0 "
                f"(rounds between resource samples; 0 = off), got "
                f"{self.sample_period!r}"
            )

    def session(self):
        """A :func:`repro.telemetry.session` scope matching this spec."""
        return telemetry_session(
            enabled=self.enabled,
            sinks=self.sinks,
            flush_interval=self.flush_interval,
            sample_period=self.sample_period,
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TelemetrySpec":
        _check_unknown_keys(cls, data)
        data = dict(data)
        if "sinks" in data:
            data["sinks"] = tuple(data["sinks"])
        return cls(**data)


#: Failure policies an :class:`ExecutionSpec` can request.
EXECUTION_ON_FAILURE = ("raise", "record")


@dataclass(frozen=True)
class ExecutionSpec:
    """Sweep-execution fault-tolerance policy (plain fan-out by default).

    Controls how :class:`~repro.analysis.parallel.ParallelRunner`
    supervises worker processes.  All-default means the historical
    behaviour: cells fan out unsupervised and the first failure aborts
    the sweep.  Any non-default field (or an attached results store)
    switches the runner to the supervised dispatcher in
    :mod:`repro.analysis.supervision`: one worker process per cell,
    per-attempt wall-clock limits, heartbeat liveness, and retry with
    exponential backoff + deterministic jitter on worker death.

    ``max_retries`` is the number of *extra* attempts after the first;
    retried cells reuse the cell's derived seed, so a retry is
    bit-identical to a first-try run.  ``cell_timeout`` (seconds) kills
    and retries an attempt that outlives it — the only way out of a cell
    that hangs while its heartbeat thread keeps beating.
    ``heartbeat_interval`` (seconds; 0 = off) makes workers emit
    liveness beats; a worker silent for ~4 intervals is presumed frozen
    (SIGSTOP, scheduler wedge) and is killed and retried.  Retry ``k``
    sleeps ``min(backoff_max, backoff_base * 2**(k-1)) * (1 + jitter)``
    with jitter drawn deterministically from the cell seed.
    ``on_failure`` decides what happens to a cell that exhausts its
    retries: ``"raise"`` aborts the sweep with a structured
    :class:`~repro.analysis.supervision.SweepError`; ``"record"`` lets
    the sweep complete and ships the failure (attempt history included)
    on :attr:`~repro.analysis.sweeps.SweepResult.failures`, with the
    cell's row rendered as a hole in ``to_table()``.

    Like every spec section this JSON round-trips; unlike the others it
    never influences results — only whether and when they arrive — so it
    is excluded from :meth:`ExperimentSpec.result_digest`, and changing
    a retry knob does not invalidate a results store.
    """

    max_retries: int = 0
    cell_timeout: Optional[float] = None
    backoff_base: float = 0.5
    backoff_max: float = 30.0
    heartbeat_interval: float = 0.0
    on_failure: str = "raise"

    def __post_init__(self) -> None:
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ValueError(
                "execution max_retries must be an integer >= 0, got "
                f"{self.max_retries!r}"
            )
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError(
                "execution cell_timeout must be positive seconds or None"
            )
        if self.backoff_base < 0:
            raise ValueError("execution backoff_base must be >= 0")
        if self.backoff_max < self.backoff_base:
            raise ValueError(
                "execution backoff_max must be >= backoff_base "
                f"({self.backoff_max} < {self.backoff_base})"
            )
        if self.heartbeat_interval < 0:
            raise ValueError("execution heartbeat_interval must be >= 0")
        if self.on_failure not in EXECUTION_ON_FAILURE:
            raise ValueError(
                f"execution on_failure must be one of {EXECUTION_ON_FAILURE}, "
                f"got {self.on_failure!r}"
            )

    @property
    def supervised(self) -> bool:
        """Whether any field requests the supervised dispatcher."""
        return (
            self.max_retries > 0
            or self.cell_timeout is not None
            or self.heartbeat_interval > 0
            or self.on_failure != "raise"
        )

    def retry_delay(self, seed: int, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), in seconds.

        Deterministic in ``(seed, attempt)`` — the jitter decorrelates
        cells without perturbing reproducibility of the schedule itself.
        """
        import random

        if attempt < 1:
            raise ValueError("retry attempt numbering starts at 1")
        base = min(self.backoff_max, self.backoff_base * 2.0 ** (attempt - 1))
        jitter = random.Random((int(seed) * 1000003) ^ attempt).random()
        return base * (1.0 + jitter)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionSpec":
        _check_unknown_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class SweepSpec:
    """A grid of spec overrides plus a replication count.

    ``grid`` maps override paths — dotted spec-field paths such as
    ``"learner.epsilon"`` or top-level fields such as ``"backend"`` — to
    value lists; the cross product is evaluated, each cell ``replications``
    times with independently derived seeds.
    """

    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    replications: int = 1

    def __post_init__(self) -> None:
        grid = {}
        for name, values in dict(self.grid).items():
            # Any iterable of values works (list, tuple, ndarray, range),
            # but a bare scalar — notably a string, which would iterate
            # into per-character cells — is a spec mistake.
            if isinstance(values, (str, bytes)):
                raise ValueError(
                    f"sweep grid entry {name!r} must be a list of values, "
                    f"got the string {values!r}"
                )
            try:
                grid[str(name)] = tuple(values)
            except TypeError:
                raise ValueError(
                    f"sweep grid entry {name!r} must be a list of values, "
                    f"got {values!r}"
                ) from None
        object.__setattr__(self, "grid", grid)
        if self.replications < 1:
            raise ValueError("replications must be >= 1")
        for name, values in self.grid.items():
            if not values:
                raise ValueError(f"sweep grid entry {name!r} must not be empty")

    def parameter_sets(self) -> List[Dict[str, Any]]:
        """All cells, in grid order: override dicts (plus ``replication``)."""
        names = list(self.grid)
        combos = (
            itertools.product(*(self.grid[name] for name in names))
            if names
            else [()]
        )
        sets: List[Dict[str, Any]] = []
        for combo in combos:
            base = dict(zip(names, combo))
            for r in range(self.replications):
                cell = dict(base)
                if self.replications > 1:
                    cell["replication"] = r
                sets.append(cell)
        return sets

    def to_dict(self) -> Dict[str, Any]:
        return {
            "grid": {name: list(values) for name, values in self.grid.items()},
            "replications": self.replications,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        _check_unknown_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class RunResult:
    """One executed spec: the trace plus the spec's evaluated metrics.

    ``telemetry`` carries the run's final instrumentation snapshot when
    the spec enabled collection (``None`` otherwise).
    """

    spec: "ExperimentSpec"
    trace: Any
    metrics: Dict[str, Any]
    telemetry: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete, serializable experiment description.

    See the module docstring for the facade methods.  All component names
    (``backend``, ``capacity.backend``, ``learner.name``,
    ``metrics.metrics``) are validated against the registries at
    construction, so a malformed spec fails immediately — with the list
    of registered names — rather than deep inside system construction.
    """

    name: str = "experiment"
    backend: str = "vectorized"
    rounds: int = 200
    seed: int = 0
    topology: TopologySpec = field(default_factory=TopologySpec)
    capacity: CapacitySpec = field(default_factory=CapacitySpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    learner: LearnerSpec = field(default_factory=LearnerSpec)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    metrics: MetricsSpec = field(default_factory=MetricsSpec)
    telemetry: TelemetrySpec = field(default_factory=TelemetrySpec)
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    sweep_spec: Optional[SweepSpec] = None

    def __post_init__(self) -> None:
        if self.backend not in SYSTEM_BACKENDS:
            raise ValueError(
                f"backend must be one of {SYSTEM_BACKENDS}, got {self.backend!r}"
            )
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.learner.dtype == "float32" and self.backend == "scalar":
            raise ValueError(
                "dtype float32 requires the vectorized backend "
                "(scalar learners store float64 state); use "
                'backend="vectorized" or dtype="float64"'
            )
        entry = LEARNERS.get(self.learner.name)
        if self.backend == "scalar" and entry.scalar is None:
            raise ValueError(
                f"learner {self.learner.name!r} has no scalar implementation"
            )
        if self.backend == "vectorized" and entry.bank is None:
            raise ValueError(
                f"learner {self.learner.name!r} has no vectorized bank"
            )
        if self.learner.bank == "topk":
            if self.backend == "scalar":
                raise ValueError(
                    "bank 'topk' requires the vectorized backend (scalar "
                    "learners keep per-object regret state); use "
                    'backend="vectorized" or bank="dense"'
                )
            if not entry.sparse:
                raise ValueError(
                    f"learner {self.learner.name!r} has no sparse top-k "
                    "bank; families registered with sparse=True: "
                    f"{[n for n in LEARNERS if LEARNERS.get(n).sparse]}"
                )
        if self.learner.engine != "auto":
            if self.backend == "scalar":
                raise ValueError(
                    "learner.engine applies to the vectorized backend "
                    "(scalar learners are per-peer objects); use "
                    'backend="vectorized" or engine="auto"'
                )
            if self.learner.engine == "grouped" and not entry.grouped:
                raise ValueError(
                    f"learner {self.learner.name!r} has no fused "
                    "channel-grouped engine; families registered with "
                    "grouped=True: "
                    f"{[n for n in LEARNERS if LEARNERS.get(n).grouped]}; "
                    'use engine="per_channel"'
                )
        if self.learner.shards > 1:
            if self.backend != "vectorized":
                raise ValueError(
                    "learner.shards applies to the vectorized backend "
                    "(sharding partitions the learner banks); use "
                    'backend="vectorized" or shards=1'
                )
            if self.resolved_engine() != "grouped":
                raise ValueError(
                    "learner.shards requires the fused channel-grouped "
                    f"engine; learner {self.learner.name!r} resolves to "
                    f"engine={self.resolved_engine()!r}"
                )
            if self.learner.shards > self.topology.num_channels:
                raise ValueError(
                    "learner.shards partitions channels, so it must not "
                    f"exceed num_channels={self.topology.num_channels}; "
                    f"got {self.learner.shards}"
                )
        # Cross-section checks the sections cannot do alone: explicit
        # helper placement must cover exactly the topology's helpers.
        if (
            self.network.helper_regions is not None
            and len(self.network.helper_regions) != self.topology.num_helpers
        ):
            raise ValueError(
                "network helper_regions must list one region per helper "
                f"(got {len(self.network.helper_regions)} entries for "
                f"num_helpers={self.topology.num_helpers})"
            )
        # Helpers partition round-robin, so the smallest channel gets
        # floor(H/C) of them; the learner family's action set must fit.
        topo = self.topology
        if topo.num_helpers // topo.num_channels < entry.min_actions:
            raise ValueError(
                f"learner {self.learner.name!r} needs at least "
                f"{entry.min_actions} helper(s) per channel; "
                f"num_helpers={topo.num_helpers} over "
                f"num_channels={topo.num_channels} leaves a channel with "
                f"{topo.num_helpers // topo.num_channels}"
            )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A plain nested dict; ``from_dict`` round-trips it."""
        return {
            "name": self.name,
            "backend": self.backend,
            "rounds": self.rounds,
            "seed": self.seed,
            "topology": self.topology.to_dict(),
            "capacity": self.capacity.to_dict(),
            "network": self.network.to_dict(),
            "learner": self.learner.to_dict(),
            "churn": self.churn.to_dict(),
            "metrics": self.metrics.to_dict(),
            "telemetry": self.telemetry.to_dict(),
            "execution": self.execution.to_dict(),
            "sweep": None if self.sweep_spec is None else self.sweep_spec.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written JSON).

        Sections are optional (defaults apply); unknown keys raise with
        the allowed field names.
        """
        data = dict(data)
        sweep = data.pop("sweep", None)
        sections = {
            "topology": TopologySpec,
            "capacity": CapacitySpec,
            "network": NetworkSpec,
            "learner": LearnerSpec,
            "churn": ChurnSpec,
            "metrics": MetricsSpec,
            "telemetry": TelemetrySpec,
            "execution": ExecutionSpec,
        }
        kwargs: Dict[str, Any] = {}
        for key, section_cls in sections.items():
            if key in data:
                kwargs[key] = section_cls.from_dict(data.pop(key) or {})
        allowed_scalars = {"name", "backend", "rounds", "seed"}
        unknown = sorted(set(data) - allowed_scalars)
        if unknown:
            raise ValueError(
                f"unknown ExperimentSpec field(s) {unknown}; allowed: "
                f"{sorted(allowed_scalars | set(sections) | {'sweep'})}"
            )
        kwargs.update(data)
        if sweep is not None:
            kwargs["sweep_spec"] = SweepSpec.from_dict(sweep)
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        """The spec as JSON text (tuples serialize as lists)."""
        return json.dumps(self.to_dict(), indent=indent)

    def spec_digest(self) -> str:
        """A short stable content hash of the spec.

        Sweep workers stamp it (plus the cell index) onto failure
        reports, and profiling records carry it so a benchmark number can
        be traced back to the exact experiment that produced it.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

    def result_digest(self) -> str:
        """The content hash that keys the results store.

        Like :meth:`spec_digest` but over the *result-determining* fields
        only: the ``sweep`` section (cell parameters live in the per-cell
        digest) and the ``execution`` section (retry policy never changes
        what a cell computes) are excluded, so widening a grid or tuning
        timeouts keeps every already-committed cell a cache hit.
        """
        data = self.to_dict()
        data.pop("sweep", None)
        data.pop("execution", None)
        # Shard count is a pure execution knob: the sharded engine is
        # bit-identical to the single-process one, so results keyed
        # without it stay cache hits across shard-count changes.
        data.get("learner", {}).pop("shards", None)
        canonical = json.dumps(data, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse JSON text produced by :meth:`to_json` (or hand-written)."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path) -> "ExperimentSpec":
        """Read a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def save(self, path) -> None:
        """Write the spec to a JSON file."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ExperimentSpec":
        """A new spec with dotted-path fields replaced.

        ``{"learner.epsilon": 0.1, "backend": "scalar"}`` — paths address
        :meth:`to_dict` keys; unknown paths raise with the valid keys at
        the failing level.
        """
        data = self.to_dict()
        for path, value in overrides.items():
            node: Dict[str, Any] = data
            parts = str(path).split(".")
            for i, part in enumerate(parts[:-1]):
                child = node.get(part)
                if not isinstance(child, dict):
                    raise ValueError(
                        f"unknown override path {path!r}: {'.'.join(parts[: i + 1])!r} "
                        f"is not a spec section; sections here: "
                        f"{sorted(k for k, v in node.items() if isinstance(v, dict))}"
                    )
                node = child
            leaf = parts[-1]
            if leaf not in node:
                raise ValueError(
                    f"unknown override path {path!r}; valid keys here: "
                    f"{sorted(node)}"
                )
            node[leaf] = value
        return ExperimentSpec.from_dict(data)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    @property
    def u_max(self) -> float:
        """Utility normalizer: explicit, or the highest capacity level."""
        if self.learner.u_max is not None:
            return float(self.learner.u_max)
        return float(max(self.capacity.levels))

    def resolved_capacity_backend(self) -> str:
        """``capacity.backend`` with ``"auto"`` following the system backend."""
        if self.capacity.backend != "auto":
            return self.capacity.backend
        return "vectorized" if self.backend == "vectorized" else "scalar"

    def resolved_engine(self) -> Optional[str]:
        """``learner.engine`` with ``"auto"`` resolved via the registry.

        ``None`` on the scalar backend (no banks there); otherwise
        ``"grouped"`` for families registered with the fused engine and
        ``"per_channel"`` for the rest.
        """
        if self.backend != "vectorized":
            return None
        if self.learner.engine != "auto":
            return self.learner.engine
        return (
            "grouped"
            if LEARNERS.get(self.learner.name).grouped
            else "per_channel"
        )

    def to_config(self):
        """The :class:`~repro.sim.system.SystemConfig` both backends share."""
        from repro.sim.system import SystemConfig

        topo = self.topology
        cap = self.capacity
        return SystemConfig(
            num_peers=topo.num_peers,
            num_helpers=topo.num_helpers,
            num_channels=topo.num_channels,
            channel_bitrates=topo.channel_bitrates,
            channel_popularity=topo.channel_popularity,
            bandwidth_levels=cap.levels,
            stay_probability=cap.stay_probability,
            round_duration=topo.round_duration,
            server_capacity=(
                float("inf") if cap.server_capacity is None else cap.server_capacity
            ),
            churn=self.churn.to_config(),
            channel_switch_rate=topo.channel_switch_rate,
            record_peers=self.metrics.record_peers,
            popularity_drift_rate=topo.popularity_drift_rate,
            popularity_drift_period=topo.popularity_drift_period,
        )

    def scalar_learner_factory(self):
        """A per-peer :data:`~repro.sim.system.LearnerFactory` for this spec."""
        entry = LEARNERS.get(self.learner.name)
        if entry.scalar is None:
            raise ValueError(
                f"learner {self.learner.name!r} has no scalar implementation"
            )
        hp = self.learner
        return entry.scalar(
            epsilon=hp.epsilon, delta=hp.delta, mu=hp.mu, u_max=self.u_max
        )

    def bank_factory(self):
        """A per-channel :data:`~repro.runtime.learner_bank.BankFactory`."""
        entry = LEARNERS.get(self.learner.name)
        if entry.bank is None:
            raise ValueError(
                f"learner {self.learner.name!r} has no vectorized bank"
            )
        hp = self.learner
        kwargs = dict(
            epsilon=hp.epsilon,
            delta=hp.delta,
            mu=hp.mu,
            u_max=self.u_max,
            dtype=np.dtype(self.learner.dtype),
        )
        if hp.bank != "dense":
            # Only sparse-capable entries (validated at construction) see
            # the extra kwargs, so plain third-party builders keep the
            # original five-argument contract.
            kwargs.update(bank=hp.bank, topk=hp.topk)
        return entry.bank(**kwargs)

    def build_capacity_process(self, rng: Seedish = None):
        """The spec's helper-bandwidth environment, via the registries.

        ``capacity.options`` pass through as extra keyword arguments only
        when non-empty, so plain factories keep the original
        four-argument contract.

        With ``capacity.transforms`` and/or an active ``network``
        section, the base process feeds the transform pipeline: the rng
        becomes a parent stream, the backend factory receives the first
        child, and every transform — then the network link layer —
        receives its own child in order.  Stages therefore keep
        *positionally* deterministic streams: editing stage ``k`` never
        perturbs stages before it.  With neither (the historical shape)
        the rng passes straight to the backend factory, so pre-pipeline
        specs stay bit-identical.
        """
        factory = CAPACITY_BACKENDS.get(self.resolved_capacity_backend())
        transforms = self.capacity.transforms
        network_active = self.network.active
        kwargs = dict(
            levels=self.capacity.levels,
            stay_probability=self.capacity.stay_probability,
            rng=self.seed if rng is None else rng,
        )
        if not transforms and not network_active:
            if self.capacity.options:
                kwargs.update(self.capacity.options)
            return factory(self.topology.num_helpers, **kwargs)
        parent = as_generator(kwargs["rng"])
        kwargs["rng"] = spawn(parent)
        if self.capacity.options:
            kwargs.update(self.capacity.options)
        process = factory(self.topology.num_helpers, **kwargs)
        for transform in transforms:
            entry = CAPACITY_TRANSFORMS.get(transform.name)
            process = entry.factory(
                process, rng=spawn(parent), **transform.options
            )
        if network_active:
            process = self.network.apply(
                process, self.topology.num_helpers, rng=spawn(parent)
            )
        return process

    def build_population(self, rng: Seedish = None):
        """A bare :class:`~repro.core.population.LearnerPopulation`.

        For repeated-game experiments (the paper's Figs. 1–4 pipelines)
        that advance a population directly against a capacity process,
        without the full streaming substrate.  Uses the spec's regret
        hyper-parameters; the learner *family* distinction does not apply
        (the population is the single RTHS/R2HS recursion), but the
        storage family does: ``learner.bank = "topk"`` returns the sparse
        :class:`~repro.core.sparse_population.TopKPopulation` instead of
        allocating the dense ``(N, H, H)`` tensor the spec opted out of.
        """
        hp = self.learner
        kwargs = dict(
            num_peers=self.topology.num_peers,
            num_helpers=self.topology.num_helpers,
            epsilon=hp.epsilon,
            mu=hp.mu,
            delta=hp.delta,
            u_max=self.u_max,
            rng=self.seed if rng is None else rng,
            dtype=np.dtype(hp.dtype),
        )
        if hp.bank == "topk":
            from repro.core.sparse_population import TopKPopulation

            return TopKPopulation(k=hp.topk, **kwargs)
        from repro.core.population import LearnerPopulation

        return LearnerPopulation(**kwargs)

    def build(self, rng: Seedish = None, capacity_process=None):
        """A ready-to-run system on the spec's backend.

        ``rng`` defaults to the spec's ``seed``.  The capacity process is
        built through the registry from a child generator spawned *first*
        (mirroring the systems' internal construction order, so specs
        reproduce the pre-spec RNG streams bit-for-bit); pass
        ``capacity_process`` to inject a recorded trace for paired runs.
        """
        parent = as_generator(self.seed if rng is None else rng)
        config = self.to_config()
        if capacity_process is None:
            capacity_process = self.build_capacity_process(rng=spawn(parent))
        if self.backend == "vectorized":
            if self.learner.shards > 1:
                from repro.runtime import ShardedSystem

                return ShardedSystem(
                    config,
                    self.bank_factory(),
                    shards=self.learner.shards,
                    rng=parent,
                    capacity_process=capacity_process,
                    dtype=np.dtype(self.learner.dtype),
                    engine=self.resolved_engine(),
                )
            from repro.runtime import VectorizedStreamingSystem

            return VectorizedStreamingSystem(
                config,
                self.bank_factory(),
                rng=parent,
                capacity_process=capacity_process,
                dtype=np.dtype(self.learner.dtype),
                engine=self.resolved_engine(),
            )
        from repro.sim.system import StreamingSystem

        return StreamingSystem(
            config,
            self.scalar_learner_factory(),
            rng=parent,
            capacity_process=capacity_process,
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def metrics_of(self, trace) -> Dict[str, Any]:
        """Evaluate the spec's metric set on a trace."""
        if not self.metrics.metrics:
            return dict(trace.summary())
        return {name: METRICS.get(name)(trace) for name in self.metrics.metrics}

    def run(self, seed: Seedish = None) -> RunResult:
        """Build, run ``rounds`` rounds, and evaluate the metrics.

        When the spec's :class:`TelemetrySpec` is enabled, the build and
        the round loop execute inside a telemetry session (instruments
        bind at system construction) and the final snapshot rides back on
        :attr:`RunResult.telemetry`; the session's sinks are flushed and
        closed before returning.
        """
        if not self.telemetry.enabled:
            system = self.build(rng=seed)
            try:
                trace = system.run(self.rounds)
            finally:
                # Sharded systems hold worker processes and shared
                # memory; the trace lives in this process either way.
                getattr(system, "close", lambda: None)()
            return RunResult(
                spec=self, trace=trace, metrics=self.metrics_of(trace)
            )
        with self.telemetry.session() as tel:
            system = self.build(rng=seed)
            try:
                trace = system.run(self.rounds)
            finally:
                getattr(system, "close", lambda: None)()
            snapshot = tel.snapshot()
        return RunResult(
            spec=self,
            trace=trace,
            metrics=self.metrics_of(trace),
            telemetry=snapshot,
        )

    def sweep(
        self,
        workers: Optional[int] = 1,
        rng: Seedish = None,
        runner=None,
        sweep: Optional[SweepSpec] = None,
        store=None,
    ):
        """Fan the spec's :class:`SweepSpec` across worker processes.

        Returns a :class:`~repro.analysis.sweeps.SweepResult` whose cell
        parameters are the grid overrides and whose metrics are each
        cell's :meth:`run` output (array-valued metrics ride back through
        the runner's shared-memory result handoff).  ``rng`` defaults to
        the spec's ``seed``; seeds are derived per cell in grid order, so
        results are worker-count-independent.

        The spec's :class:`ExecutionSpec` governs supervision (timeouts,
        heartbeats, retry with backoff); ``store`` — a directory path or
        a :class:`~repro.store.ResultsStore` — makes execution durable:
        committed cells are consulted before dispatch (cache hit = no
        worker) and every completed cell commits immediately, so an
        interrupted sweep resumes for free.  The store key is
        :meth:`result_digest` plus the per-cell parameter/seed digest.

        Workers rebuild the spec from its dict form, so specs naming
        third-party registered components need those registrations
        available in the workers (automatic under the ``fork`` start
        method; see :mod:`repro.spec.registry` for ``spawn``).
        """
        import functools

        from repro.analysis.parallel import ParallelRunner
        from repro.spec.cells import run_spec_cell

        sweep_spec = sweep if sweep is not None else self.sweep_spec
        if sweep_spec is None:
            sweep_spec = SweepSpec()
        if runner is None:
            runner = ParallelRunner(workers=workers)
        if store is not None and not hasattr(store, "get"):
            from repro.store import ResultsStore

            store = ResultsStore(store)
        cell_fn = functools.partial(run_spec_cell, self.to_dict())
        return runner.run_sweep(
            sweep_spec,
            cell_fn,
            rng=self.seed if rng is None else rng,
            execution=self.execution,
            store=store,
            spec_digest=self.result_digest(),
        )
