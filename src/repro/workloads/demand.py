"""Per-peer streaming-demand profiles.

A peer's demand is the playback bitrate of its channel.  Fig. 5 needs the
aggregate demand to exceed the helpers' minimum provisioned bandwidth part
of the time, so the canned scenarios size demands relative to capacity.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import Seedish, as_generator
from repro.util.validation import require_positive, require_positive_int


def constant_demand(num_peers: int, rate: float) -> np.ndarray:
    """Every peer demands the same ``rate`` (kbit/s)."""
    require_positive_int(num_peers, "num_peers")
    require_positive(rate, "rate")
    return np.full(num_peers, float(rate))


def heterogeneous_demand(
    num_peers: int,
    low: float,
    high: float,
    rng: Seedish = None,
) -> np.ndarray:
    """Demands drawn uniformly from ``[low, high]`` (mixed-quality viewers)."""
    require_positive_int(num_peers, "num_peers")
    require_positive(low, "low")
    require_positive(high, "high")
    if high < low:
        raise ValueError("high must be >= low")
    gen = as_generator(rng)
    return gen.uniform(low, high, size=num_peers)


def demand_to_capacity_ratio(
    demands: np.ndarray, minimum_capacities: np.ndarray
) -> float:
    """Aggregate demand over aggregate minimum helper capacity.

    > 1 means the server must carry a structural deficit (the Fig. 5
    regime); <= 1 means helpers could in principle carry everything.
    """
    d = np.asarray(demands, dtype=float)
    c = np.asarray(minimum_capacities, dtype=float)
    if np.any(d < 0) or np.any(c < 0):
        raise ValueError("demands and capacities must be non-negative")
    total_capacity = c.sum()
    if total_capacity <= 0:
        raise ValueError("total minimum capacity must be positive")
    return float(d.sum() / total_capacity)
