"""The paper's experiment scenarios, as reusable bundles.

Section IV fixes the environment (helper bandwidth switching over
``[700, 800, 900]``) and varies scale:

* :func:`small_scale_scenario` — "N = 10 peers and |H| = 4 helpers" used
  for the RTHS-vs-centralized-MDP comparison (Fig. 2).
* :func:`large_scale_scenario` — the "large-scale cooperative multi-channel"
  run behind Fig. 1 (exact size unreported; we default to N=100, H=10 and
  expose both as parameters).
* :func:`fig5_scenario` — a demand-bearing configuration where aggregate
  demand exceeds the helpers' minimum provisioned bandwidth, so the server
  carries a structural deficit (the Fig. 5 regime).

Learner hyper-parameters (unreported in the paper) default to
``epsilon=0.05, delta=0.1, mu = 2 (H-1)`` in normalized units and are swept
by the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.population import LearnerPopulation
from repro.sim.bandwidth import (
    PAPER_BANDWIDTH_LEVELS,
    MarkovCapacityProcess,
    paper_bandwidth_process,
)
from repro.util.rng import Seedish, as_generator, spawn


@dataclass(frozen=True)
class Scenario:
    """A named, fully-parameterized experiment setup."""

    name: str
    num_peers: int
    num_helpers: int
    bandwidth_levels: Tuple[float, ...] = PAPER_BANDWIDTH_LEVELS
    stay_probability: float = 0.9
    epsilon: float = 0.05
    delta: float = 0.1
    mu: Optional[float] = None
    demand_per_peer: Optional[float] = None
    num_stages: int = 2000
    num_channels: int = 1

    def __post_init__(self) -> None:
        if self.num_peers < 1 or self.num_helpers < 2:
            raise ValueError("need num_peers >= 1 and num_helpers >= 2")
        if not 0 < self.epsilon <= 1 or not 0 < self.delta < 1:
            raise ValueError("epsilon in (0,1], delta in (0,1) required")
        if self.num_stages < 1:
            raise ValueError("num_stages must be >= 1")
        if self.num_channels < 1 or self.num_helpers < 2 * self.num_channels:
            # Helpers partition round-robin across channels and the regret
            # learners need an action set of at least two, so every channel
            # must receive two or more helpers.
            raise ValueError(
                "need num_channels >= 1 and at least two helpers per channel"
            )

    @property
    def u_max(self) -> float:
        """Utility normalizer: the highest bandwidth level."""
        return float(max(self.bandwidth_levels))


def small_scale_scenario(num_stages: int = 2000) -> Scenario:
    """Paper Fig. 2 setting: N = 10 peers, H = 4 helpers."""
    return Scenario(
        name="small-scale",
        num_peers=10,
        num_helpers=4,
        num_stages=num_stages,
    )


def large_scale_scenario(
    num_peers: int = 100,
    num_helpers: int = 10,
    num_stages: int = 3000,
) -> Scenario:
    """Paper Fig. 1 setting (scale unreported; defaults N=100, H=10)."""
    return Scenario(
        name="large-scale",
        num_peers=num_peers,
        num_helpers=num_helpers,
        num_stages=num_stages,
    )


def fig5_scenario(num_stages: int = 1500) -> Scenario:
    """Fig. 5 setting: demands exceed the helpers' minimum bandwidth.

    40 peers at 100 kbit/s each (4000 total) against 4 helpers with minimum
    aggregate 2800 kbit/s: the minimum deficit is 1200 kbit/s, and good
    selection should keep realized server load near it.
    """
    return Scenario(
        name="fig5-server-load",
        num_peers=40,
        num_helpers=4,
        demand_per_peer=100.0,
        num_stages=num_stages,
    )


def massive_scale_scenario(
    num_peers: int = 100_000,
    num_helpers: int = 200,
    num_channels: int = 4,
    num_stages: int = 200,
) -> Scenario:
    """Population-scale multi-channel scenario for the vectorized runtime.

    Not a paper figure — the regime the ROADMAP's north star targets
    (10⁵–10⁶ viewers), far beyond what per-object peers can advance.  Use
    :func:`make_vectorized_system`; the scalar backend at this size is
    minutes per round.  Demand is set below the per-peer helper share so
    welfare, not the origin server, is the interesting series; crank
    ``num_peers`` further to study the load-skew regime.
    """
    return Scenario(
        name="massive-scale",
        num_peers=num_peers,
        num_helpers=num_helpers,
        num_channels=num_channels,
        demand_per_peer=100.0,
        num_stages=num_stages,
    )


def make_system_config(scenario: Scenario, **overrides) -> "SystemConfig":
    """A :class:`~repro.sim.system.SystemConfig` matching ``scenario``.

    ``overrides`` pass through to the config (churn, popularity, ...).
    """
    from repro.sim.system import SystemConfig

    bitrate = (
        scenario.demand_per_peer
        if scenario.demand_per_peer is not None
        else 350.0
    )
    return SystemConfig(
        num_peers=scenario.num_peers,
        num_helpers=scenario.num_helpers,
        num_channels=scenario.num_channels,
        channel_bitrates=bitrate,
        bandwidth_levels=scenario.bandwidth_levels,
        stay_probability=scenario.stay_probability,
        **overrides,
    )


def make_vectorized_system(
    scenario: Scenario,
    rng: Seedish = None,
    learner: str = "r2hs",
    capacity_backend: str = "vectorized",
    **overrides,
):
    """A ready-to-run :class:`~repro.runtime.VectorizedStreamingSystem`.

    Builds the system config from the scenario and one learner bank per
    channel with the scenario's hyper-parameters.  The environment defaults
    to the vectorized capacity engine (pass
    ``capacity_backend="scalar"`` for per-helper chain objects).
    """
    from repro.runtime import VectorizedStreamingSystem, bank_factory

    config = make_system_config(scenario, **overrides)
    factory = bank_factory(
        learner,
        epsilon=scenario.epsilon,
        delta=scenario.delta,
        mu=scenario.mu,
        u_max=scenario.u_max,
    )
    return VectorizedStreamingSystem(
        config, factory, rng=rng, capacity_backend=capacity_backend
    )


def make_capacity_process(
    scenario: Scenario, rng: Seedish = None, backend: str = "scalar"
):
    """The scenario's helper-bandwidth environment.

    ``backend`` picks :class:`~repro.sim.bandwidth.MarkovCapacityProcess`
    (``"scalar"``, the default) or the array-backed
    :class:`~repro.sim.bandwidth.VectorizedCapacityProcess`.
    """
    return paper_bandwidth_process(
        scenario.num_helpers,
        levels=scenario.bandwidth_levels,
        stay_probability=scenario.stay_probability,
        rng=rng,
        backend=backend,
    )


def make_learner_population(
    scenario: Scenario, rng: Seedish = None
) -> LearnerPopulation:
    """A vectorized R2HS population with the scenario's parameters."""
    return LearnerPopulation(
        num_peers=scenario.num_peers,
        num_helpers=scenario.num_helpers,
        epsilon=scenario.epsilon,
        mu=scenario.mu,
        delta=scenario.delta,
        u_max=scenario.u_max,
        rng=rng,
    )


def run_scenario(
    scenario: Scenario, seed: int = 0
) -> Tuple[LearnerPopulation, "np.ndarray"]:
    """Run a scenario end to end; returns (population, welfare series)."""
    parent = as_generator(seed)
    process = make_capacity_process(scenario, rng=spawn(parent))
    population = make_learner_population(scenario, rng=spawn(parent))
    trajectory = population.run(process, scenario.num_stages)
    return population, trajectory.welfare


def heterogeneous_scenario(num_stages: int = 2000) -> Scenario:
    """Helpers of two classes: strong (fiber) and weak (DSL) uploaders.

    Not a paper figure — an extension scenario exercising the asymmetric
    regime where helper selection actually matters for welfare (with
    symmetric helpers, any non-degenerate rule is near-optimal; see the
    README backend guide).  Four helpers at levels [1400, 1600, 1800] and four at
    [350, 400, 450]; the proportional split is 4:1.
    """
    return Scenario(
        name="heterogeneous-helpers",
        num_peers=40,
        num_helpers=8,
        bandwidth_levels=(350.0, 400.0, 450.0, 1400.0, 1600.0, 1800.0),
        num_stages=num_stages,
    )


def make_heterogeneous_process(
    scenario: Scenario, rng: Seedish = None
) -> MarkovCapacityProcess:
    """Environment for :func:`heterogeneous_scenario`.

    Half the helpers switch over the strong levels, half over the weak
    ones (each a slow birth-death chain).
    """
    from repro.mdp.markov_chain import birth_death_chain
    from repro.util.rng import spawn_many

    levels = list(scenario.bandwidth_levels)
    if len(levels) % 2 != 0:
        raise ValueError("scenario must carry an even number of levels "
                         "(weak half + strong half)")
    half = len(levels) // 2
    weak_levels, strong_levels = levels[:half], levels[half:]
    parent = as_generator(rng)
    children = spawn_many(parent, scenario.num_helpers)
    chains = []
    for j, child in enumerate(children):
        chosen = strong_levels if j < scenario.num_helpers // 2 else weak_levels
        chains.append(
            birth_death_chain(
                chosen, stay_probability=scenario.stay_probability, rng=child
            )
        )
    return MarkovCapacityProcess(chains)
