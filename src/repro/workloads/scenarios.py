"""The paper's experiment scenarios, as reusable bundles.

Section IV fixes the environment (helper bandwidth switching over
``[700, 800, 900]``) and varies scale:

* :func:`small_scale_scenario` — "N = 10 peers and |H| = 4 helpers" used
  for the RTHS-vs-centralized-MDP comparison (Fig. 2).
* :func:`large_scale_scenario` — the "large-scale cooperative multi-channel"
  run behind Fig. 1 (exact size unreported; we default to N=100, H=10 and
  expose both as parameters).
* :func:`fig5_scenario` — a demand-bearing configuration where aggregate
  demand exceeds the helpers' minimum provisioned bandwidth, so the server
  carries a structural deficit (the Fig. 5 regime).

Learner hyper-parameters (unreported in the paper) default to
``epsilon=0.05, delta=0.1, mu = 2 (H-1)`` in normalized units and are swept
by the ablation benches.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.population import LearnerPopulation
from repro.sim.bandwidth import PAPER_BANDWIDTH_LEVELS, MarkovCapacityProcess
from repro.spec import (
    CAPACITY_BACKENDS,
    CapacitySpec,
    ChurnSpec,
    ExperimentSpec,
    LearnerSpec,
    MetricsSpec,
    TopologySpec,
    TransformSpec,
    register_scenario,
)
from repro.util.rng import Seedish, as_generator, spawn

# Names whose deprecation has already been announced this process; the
# shims below warn exactly once each, not per call.
_DEPRECATION_WARNED: set = set()


def _warn_deprecated(name: str, replacement: str) -> None:
    if name in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(name)
    warnings.warn(
        f"{name} is deprecated and will be removed in the next release; "
        f"use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class Scenario:
    """A named, fully-parameterized experiment setup."""

    name: str
    num_peers: int
    num_helpers: int
    bandwidth_levels: Tuple[float, ...] = PAPER_BANDWIDTH_LEVELS
    stay_probability: float = 0.9
    epsilon: float = 0.05
    delta: float = 0.1
    mu: Optional[float] = None
    demand_per_peer: Optional[float] = None
    num_stages: int = 2000
    num_channels: int = 1

    def __post_init__(self) -> None:
        if self.num_peers < 1 or self.num_helpers < 2:
            raise ValueError("need num_peers >= 1 and num_helpers >= 2")
        if not 0 < self.epsilon <= 1 or not 0 < self.delta < 1:
            raise ValueError("epsilon in (0,1], delta in (0,1) required")
        if self.num_stages < 1:
            raise ValueError("num_stages must be >= 1")
        if self.num_channels < 1 or self.num_helpers < 2 * self.num_channels:
            # Helpers partition round-robin across channels and the regret
            # learners need an action set of at least two, so every channel
            # must receive two or more helpers.
            raise ValueError(
                "need num_channels >= 1 and at least two helpers per channel"
            )

    @property
    def u_max(self) -> float:
        """Utility normalizer: the highest bandwidth level."""
        return float(max(self.bandwidth_levels))

    def to_spec(self, **kwargs) -> ExperimentSpec:
        """This scenario as an :class:`~repro.spec.ExperimentSpec`.

        See :func:`spec_for_scenario` for the keyword arguments.
        """
        return spec_for_scenario(self, **kwargs)


def small_scale_scenario(num_stages: int = 2000) -> Scenario:
    """Paper Fig. 2 setting: N = 10 peers, H = 4 helpers."""
    return Scenario(
        name="small-scale",
        num_peers=10,
        num_helpers=4,
        num_stages=num_stages,
    )


def large_scale_scenario(
    num_peers: int = 100,
    num_helpers: int = 10,
    num_stages: int = 3000,
) -> Scenario:
    """Paper Fig. 1 setting (scale unreported; defaults N=100, H=10)."""
    return Scenario(
        name="large-scale",
        num_peers=num_peers,
        num_helpers=num_helpers,
        num_stages=num_stages,
    )


def fig5_scenario(num_stages: int = 1500) -> Scenario:
    """Fig. 5 setting: demands exceed the helpers' minimum bandwidth.

    40 peers at 100 kbit/s each (4000 total) against 4 helpers with minimum
    aggregate 2800 kbit/s: the minimum deficit is 1200 kbit/s, and good
    selection should keep realized server load near it.
    """
    return Scenario(
        name="fig5-server-load",
        num_peers=40,
        num_helpers=4,
        demand_per_peer=100.0,
        num_stages=num_stages,
    )


def massive_scale_scenario(
    num_peers: int = 100_000,
    num_helpers: int = 200,
    num_channels: int = 4,
    num_stages: int = 200,
) -> Scenario:
    """Population-scale multi-channel scenario for the vectorized runtime.

    Not a paper figure — the regime the ROADMAP's north star targets
    (10⁵–10⁶ viewers), far beyond what per-object peers can advance.  Use
    :func:`make_vectorized_system`; the scalar backend at this size is
    minutes per round.  Demand is set below the per-peer helper share so
    welfare, not the origin server, is the interesting series; crank
    ``num_peers`` further to study the load-skew regime.
    """
    return Scenario(
        name="massive-scale",
        num_peers=num_peers,
        num_helpers=num_helpers,
        num_channels=num_channels,
        demand_per_peer=100.0,
        num_stages=num_stages,
    )


def make_system_config(scenario: Scenario, **overrides) -> "SystemConfig":
    """A :class:`~repro.sim.system.SystemConfig` matching ``scenario``.

    ``overrides`` pass through to the config (churn, popularity, ...).
    """
    from repro.sim.system import SystemConfig

    bitrate = (
        scenario.demand_per_peer
        if scenario.demand_per_peer is not None
        else 350.0
    )
    return SystemConfig(
        num_peers=scenario.num_peers,
        num_helpers=scenario.num_helpers,
        num_channels=scenario.num_channels,
        channel_bitrates=bitrate,
        bandwidth_levels=scenario.bandwidth_levels,
        stay_probability=scenario.stay_probability,
        **overrides,
    )


def spec_for_scenario(
    scenario: Scenario,
    backend: str = "vectorized",
    learner: str = "r2hs",
    capacity_backend: str = "auto",
    seed: int = 0,
    dtype: str = "float64",
    churn: Optional[ChurnSpec] = None,
    channel_popularity: Optional[Tuple[float, ...]] = None,
    metrics: Tuple[str, ...] = (),
) -> ExperimentSpec:
    """Translate a :class:`Scenario` bundle into an :class:`~repro.spec.ExperimentSpec`.

    The scenario's scale, environment and learner hyper-parameters map
    onto the spec sections; ``backend``, ``learner`` and
    ``capacity_backend`` pick the registered implementations.  Peers with
    no explicit demand stream at the historical default 350 kbit/s
    (matching :func:`make_system_config`).
    """
    bitrate = (
        scenario.demand_per_peer
        if scenario.demand_per_peer is not None
        else 350.0
    )
    return ExperimentSpec(
        name=scenario.name,
        backend=backend,
        rounds=scenario.num_stages,
        seed=seed,
        topology=TopologySpec(
            num_peers=scenario.num_peers,
            num_helpers=scenario.num_helpers,
            num_channels=scenario.num_channels,
            channel_bitrates=bitrate,
            channel_popularity=channel_popularity,
        ),
        capacity=CapacitySpec(
            backend=capacity_backend,
            levels=scenario.bandwidth_levels,
            stay_probability=scenario.stay_probability,
        ),
        learner=LearnerSpec(
            name=learner,
            epsilon=scenario.epsilon,
            delta=scenario.delta,
            mu=scenario.mu,
            dtype=dtype,
        ),
        churn=churn if churn is not None else ChurnSpec(),
        metrics=MetricsSpec(metrics=metrics),
    )


def make_vectorized_system(
    scenario: Scenario,
    rng: Seedish = None,
    learner: str = "r2hs",
    capacity_backend: str = "vectorized",
    **overrides,
):
    """A ready-to-run :class:`~repro.runtime.VectorizedStreamingSystem`.

    .. deprecated:: 1.1
       Declare the experiment as an :class:`~repro.spec.ExperimentSpec`
       (``scenario.to_spec(...).build()``) instead; this shim remains for
       one release.

    Without ``overrides`` this is a thin adapter over the spec path (and
    produces bit-identical RNG streams); ``overrides`` pass through to
    :func:`make_system_config` for config fields the spec does not carry.
    """
    _warn_deprecated(
        "make_vectorized_system", "scenario.to_spec(...).build()"
    )
    if not overrides:
        # as_generator preserves the historical rng=None semantics (fresh
        # OS entropy); spec.build(rng=None) would pin the spec's seed.
        return spec_for_scenario(
            scenario, backend="vectorized", learner=learner,
            capacity_backend=capacity_backend,
        ).build(rng=as_generator(rng))
    from repro.runtime import VectorizedStreamingSystem, bank_factory

    config = make_system_config(scenario, **overrides)
    factory = bank_factory(
        learner,
        epsilon=scenario.epsilon,
        delta=scenario.delta,
        mu=scenario.mu,
        u_max=scenario.u_max,
    )
    return VectorizedStreamingSystem(
        config, factory, rng=rng, capacity_backend=capacity_backend
    )


def make_capacity_process(
    scenario: Scenario, rng: Seedish = None, backend: str = "scalar"
):
    """The scenario's helper-bandwidth environment.

    .. deprecated:: 1.1
       Use ``scenario.to_spec(capacity_backend=...).build_capacity_process()``
       or the capacity-backend registry; this shim remains for one
       release.

    ``backend`` names any registered capacity backend (``"scalar"`` and
    ``"vectorized"`` are built in).
    """
    _warn_deprecated(
        "make_capacity_process",
        "ExperimentSpec.build_capacity_process or register_capacity_backend",
    )
    factory = CAPACITY_BACKENDS.get(backend)
    return factory(
        scenario.num_helpers,
        levels=scenario.bandwidth_levels,
        stay_probability=scenario.stay_probability,
        rng=rng,
    )


def make_learner_population(
    scenario: Scenario, rng: Seedish = None
) -> LearnerPopulation:
    """A vectorized R2HS population with the scenario's parameters."""
    return LearnerPopulation(
        num_peers=scenario.num_peers,
        num_helpers=scenario.num_helpers,
        epsilon=scenario.epsilon,
        mu=scenario.mu,
        delta=scenario.delta,
        u_max=scenario.u_max,
        rng=rng,
    )


def run_scenario(
    scenario: Scenario, seed: int = 0
) -> Tuple[LearnerPopulation, "np.ndarray"]:
    """Run a scenario end to end; returns (population, welfare series).

    .. deprecated:: 1.1
       Use ``scenario.to_spec(...).run(seed=...)`` (full streaming
       system) or build the population/process pair from the spec; this
       shim remains for one release.
    """
    _warn_deprecated("run_scenario", "scenario.to_spec(...).run(seed=...)")
    parent = as_generator(seed)
    process = scenario.to_spec(backend="scalar").build_capacity_process(
        rng=spawn(parent)
    )
    population = make_learner_population(scenario, rng=spawn(parent))
    trajectory = population.run(process, scenario.num_stages)
    return population, trajectory.welfare


def heterogeneous_scenario(num_stages: int = 2000) -> Scenario:
    """Helpers of two classes: strong (fiber) and weak (DSL) uploaders.

    Not a paper figure — an extension scenario exercising the asymmetric
    regime where helper selection actually matters for welfare (with
    symmetric helpers, any non-degenerate rule is near-optimal; see the
    README backend guide).  Four helpers at levels [1400, 1600, 1800] and four at
    [350, 400, 450]; the proportional split is 4:1.
    """
    return Scenario(
        name="heterogeneous-helpers",
        num_peers=40,
        num_helpers=8,
        bandwidth_levels=(350.0, 400.0, 450.0, 1400.0, 1600.0, 1800.0),
        num_stages=num_stages,
    )


def make_heterogeneous_process(
    scenario: Scenario, rng: Seedish = None
) -> MarkovCapacityProcess:
    """Environment for :func:`heterogeneous_scenario`.

    Half the helpers switch over the strong levels, half over the weak
    ones (each a slow birth-death chain).
    """
    from repro.mdp.markov_chain import birth_death_chain
    from repro.util.rng import spawn_many

    levels = list(scenario.bandwidth_levels)
    if len(levels) % 2 != 0:
        raise ValueError("scenario must carry an even number of levels "
                         "(weak half + strong half)")
    half = len(levels) // 2
    weak_levels, strong_levels = levels[:half], levels[half:]
    parent = as_generator(rng)
    children = spawn_many(parent, scenario.num_helpers)
    chains = []
    for j, child in enumerate(children):
        chosen = strong_levels if j < scenario.num_helpers // 2 else weak_levels
        chains.append(
            birth_death_chain(
                chosen, stay_probability=scenario.stay_probability, rng=child
            )
        )
    return MarkovCapacityProcess(chains)


# ----------------------------------------------------------------------
# Load-skew scenario families (registry-native: they produce specs)
# ----------------------------------------------------------------------


def popularity_skew_spec(
    num_peers: int = 20_000,
    num_helpers: int = 100,
    num_channels: int = 10,
    zipf_exponent: float = 1.0,
    num_stages: int = 100,
    demand_per_peer: float = 100.0,
    backend: str = "vectorized",
    seed: int = 0,
) -> ExperimentSpec:
    """Popularity-skewed multi-channel load (the ROADMAP load-skew item).

    Channels draw viewers by Zipf weights (measurement studies of
    PPLive/UUSee-class deployments, paper refs. [1][11]) while helpers
    stay round-robin-partitioned — so hot channels run peer-heavy and the
    interesting series is how selection shares the overload.  Built for
    the vectorized runtime where the environment is cheap at this scale.
    """
    from repro.workloads.popularity import zipf_popularity

    return ExperimentSpec(
        name="popularity-skew",
        backend=backend,
        rounds=num_stages,
        seed=seed,
        topology=TopologySpec(
            num_peers=num_peers,
            num_helpers=num_helpers,
            num_channels=num_channels,
            channel_bitrates=demand_per_peer,
            channel_popularity=tuple(
                zipf_popularity(num_channels, zipf_exponent)
            ),
        ),
        learner=LearnerSpec(name="r2hs"),
    )


def flash_crowd_spec(
    num_peers: int = 2_000,
    num_helpers: int = 40,
    num_channels: int = 4,
    zipf_exponent: float = 1.2,
    arrival_rate: float = 25.0,
    mean_lifetime: float = 60.0,
    channel_switch_rate: float = 0.0,
    num_stages: int = 150,
    demand_per_peer: float = 100.0,
    backend: str = "vectorized",
    seed: int = 0,
) -> ExperimentSpec:
    """A flash crowd: heavy Poisson arrivals piling onto Zipf-hot channels.

    The initial population is the calm before the event; ``arrival_rate``
    then adds ~``arrival_rate × mean_lifetime`` transient viewers whose
    channel draws follow the skewed popularity, concentrating load on the
    hot channels' helper blocks while lifetimes churn the crowd through.
    Exercises the free-list/bank-row reuse paths at scale.
    """
    from repro.workloads.popularity import zipf_popularity

    return ExperimentSpec(
        name="flash-crowd",
        backend=backend,
        rounds=num_stages,
        seed=seed,
        topology=TopologySpec(
            num_peers=num_peers,
            num_helpers=num_helpers,
            num_channels=num_channels,
            channel_bitrates=demand_per_peer,
            channel_popularity=tuple(
                zipf_popularity(num_channels, zipf_exponent)
            ),
            channel_switch_rate=channel_switch_rate,
        ),
        learner=LearnerSpec(name="r2hs"),
        churn=ChurnSpec(
            arrival_rate=arrival_rate,
            mean_lifetime=mean_lifetime,
            initial_peer_lifetimes=True,
        ),
    )


def helper_failures_spec(
    num_peers: int = 5_000,
    num_helpers: int = 60,
    num_channels: int = 6,
    failure_rate: float = 0.02,
    mean_outage_rounds: float = 15.0,
    arrival_rate: float = 10.0,
    mean_lifetime: float = 80.0,
    num_stages: int = 200,
    demand_per_peer: float = 100.0,
    backend: str = "vectorized",
    seed: int = 0,
) -> ExperimentSpec:
    """Helper crashes and recoveries under heavy churn (the ROADMAP item).

    Helpers are volunteers: each round every healthy one fails with
    probability ``failure_rate`` and stays dark for a geometric outage
    (mean ``mean_outage_rounds``) — the
    :class:`~repro.sim.failures.FailureInjectingProcess` wrapped around
    the paper environment via the registered ``"failures"`` capacity
    transform.  Peers discover outages only through a zero rate (bandit
    feedback), while Poisson churn keeps the population itself moving —
    the churn-heavy adaptation workload the fused multi-channel engine
    is exercised under.
    """
    return ExperimentSpec(
        name="helper-failures",
        backend=backend,
        rounds=num_stages,
        seed=seed,
        topology=TopologySpec(
            num_peers=num_peers,
            num_helpers=num_helpers,
            num_channels=num_channels,
            channel_bitrates=demand_per_peer,
        ),
        capacity=CapacitySpec(
            backend="vectorized",
            transforms=(
                TransformSpec(
                    name="failures",
                    options={
                        "failure_rate": failure_rate,
                        "mean_outage_rounds": mean_outage_rounds,
                    },
                ),
            ),
        ),
        learner=LearnerSpec(name="r2hs"),
        churn=ChurnSpec(
            arrival_rate=arrival_rate,
            mean_lifetime=mean_lifetime,
            initial_peer_lifetimes=True,
        ),
    )


def popularity_drift_spec(
    num_peers: int = 10_000,
    num_helpers: int = 80,
    num_channels: int = 20,
    zipf_exponent: float = 1.0,
    drift_rate: float = 0.1,
    drift_period: float = 20.0,
    channel_switch_rate: float = 5.0,
    arrival_rate: float = 20.0,
    mean_lifetime: float = 60.0,
    num_stages: int = 200,
    demand_per_peer: float = 100.0,
    backend: str = "vectorized",
    seed: int = 0,
) -> ExperimentSpec:
    """Diurnal popularity drift: the hot channels move through the day.

    Starts from a Zipf profile and re-mixes the channel weights every
    ``drift_period`` time units at ``drift_rate`` (see
    :func:`repro.workloads.popularity.popularity_drift`); churn arrivals
    and viewer channel switches follow the drifting weights, so channel
    populations — and with them the per-channel learner loads — migrate
    continuously.  The skew-*shifting* companion to the static
    ``popularity_skew`` family, sized for the fused multi-channel engine
    (C = 20 channels by default).
    """
    from repro.workloads.popularity import zipf_popularity

    return ExperimentSpec(
        name="popularity-drift",
        backend=backend,
        rounds=num_stages,
        seed=seed,
        topology=TopologySpec(
            num_peers=num_peers,
            num_helpers=num_helpers,
            num_channels=num_channels,
            channel_bitrates=demand_per_peer,
            channel_popularity=tuple(
                zipf_popularity(num_channels, zipf_exponent)
            ),
            channel_switch_rate=channel_switch_rate,
            popularity_drift_rate=drift_rate,
            popularity_drift_period=drift_period,
        ),
        learner=LearnerSpec(name="r2hs"),
        churn=ChurnSpec(
            arrival_rate=arrival_rate,
            mean_lifetime=mean_lifetime,
            initial_peer_lifetimes=True,
        ),
    )


# ----------------------------------------------------------------------
# Scenario registry entries: every preset resolvable by name
# ----------------------------------------------------------------------


@register_scenario("small_scale")
def _small_scale_entry(num_stages: int = 2000, **kwargs) -> ExperimentSpec:
    return spec_for_scenario(
        small_scale_scenario(num_stages=num_stages), **kwargs
    )


@register_scenario("large_scale")
def _large_scale_entry(
    num_peers: int = 100,
    num_helpers: int = 10,
    num_stages: int = 3000,
    **kwargs,
) -> ExperimentSpec:
    return spec_for_scenario(
        large_scale_scenario(
            num_peers=num_peers, num_helpers=num_helpers, num_stages=num_stages
        ),
        **kwargs,
    )


@register_scenario("fig5")
def _fig5_entry(num_stages: int = 1500, **kwargs) -> ExperimentSpec:
    return spec_for_scenario(fig5_scenario(num_stages=num_stages), **kwargs)


@register_scenario("massive_scale")
def _massive_scale_entry(**kwargs) -> ExperimentSpec:
    scenario_keys = {"num_peers", "num_helpers", "num_channels", "num_stages"}
    scenario_kwargs = {k: kwargs.pop(k) for k in list(kwargs) if k in scenario_keys}
    return spec_for_scenario(massive_scale_scenario(**scenario_kwargs), **kwargs)


register_scenario("popularity_skew", popularity_skew_spec)
register_scenario("flash_crowd", flash_crowd_spec)
register_scenario("helper_failures", helper_failures_spec)
register_scenario("popularity_drift", popularity_drift_spec)
