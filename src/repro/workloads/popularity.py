"""Channel-popularity models.

Measurement studies of deployed multi-channel systems (PPLive/UUSee, paper
refs. [1][11]) consistently report Zipf-like channel popularity: a few hot
channels hold most viewers.  :func:`zipf_popularity` produces the weight
vector used to spread peers over channels.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import Seedish, as_generator
from repro.util.validation import require_positive, require_positive_int


def zipf_popularity(num_channels: int, exponent: float = 1.0) -> np.ndarray:
    """Normalized Zipf weights ``w_c ∝ 1 / (c+1)^exponent``.

    ``exponent = 0`` gives uniform popularity; larger values concentrate
    viewers on the first channels.
    """
    require_positive_int(num_channels, "num_channels")
    if exponent < 0:
        raise ValueError("exponent must be >= 0")
    ranks = np.arange(1, num_channels + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def sample_channel_sizes(
    num_peers: int,
    popularity: np.ndarray,
    rng: Seedish = None,
) -> np.ndarray:
    """Multinomial split of ``num_peers`` across channels by popularity."""
    require_positive_int(num_peers, "num_peers")
    weights = np.asarray(popularity, dtype=float)
    if weights.ndim != 1 or weights.size == 0 or np.any(weights < 0):
        raise ValueError("popularity must be a non-negative 1-D vector")
    total = weights.sum()
    if total <= 0:
        raise ValueError("popularity must not be all zero")
    gen = as_generator(rng)
    return gen.multinomial(num_peers, weights / total)


def popularity_drift(
    popularity: np.ndarray,
    rate: float,
    rng: Seedish = None,
) -> np.ndarray:
    """One step of random popularity drift (time-varying popularity).

    Mixes the current weights with a random re-weighting:
    ``w' = (1 - rate) * w + rate * dirichlet(1)``.
    """
    weights = np.asarray(popularity, dtype=float)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("popularity must be a non-empty 1-D vector")
    require_positive(rate, "rate")
    if rate > 1:
        raise ValueError("rate must be <= 1")
    gen = as_generator(rng)
    noise = gen.dirichlet(np.ones(weights.size))
    mixed = (1.0 - rate) * (weights / weights.sum()) + rate * noise
    return mixed / mixed.sum()
