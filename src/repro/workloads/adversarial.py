"""The adversarial scenario corpus: workloads built to break learners.

The paper evaluates helper selection under a benign environment — slow
Markov bandwidth wander, fixed population.  The corpus here is the
hostile complement, one registered spec factory per failure mode the
prequential evaluator (:mod:`repro.eval`) compares learners against:

* ``correlated_failures`` — whole helper domains (racks, regions) going
  dark as a unit and recovering geometrically.
* ``oscillating_capacity`` — a deterministic square wave rotating
  degradation across helper cohorts, so current winners are always the
  next victims.
* ``flash_storm`` — a flash crowd *composed with* random helper
  outages: heavy Poisson arrivals piling onto Zipf-hot channels while
  helpers crash underneath them.
* ``diurnal_mix`` — a weekday/weekend-style day cycle: channel
  popularity drifts while helper capacity swings on a long-period wave
  (residential helpers saturating in prime time), under steady churn.

Every factory pins a **finite** origin-server budget.  With the default
unbounded server the origin silently absorbs every deficit and the
stall rate is structurally zero; a finite budget makes stalls — the
viewer-facing failure — a live metric, which is the point of the
corpus.  Budgets default to a fraction of aggregate demand so shrinking
a scenario via options keeps the regime, not just the numbers.
"""

from __future__ import annotations

from typing import Optional

from repro.spec import (
    CapacitySpec,
    ChurnSpec,
    ExperimentSpec,
    LearnerSpec,
    TopologySpec,
    TransformSpec,
    register_scenario,
)
from repro.workloads.popularity import zipf_popularity


def _server_budget(
    server_capacity: Optional[float],
    num_peers: int,
    demand_per_peer: float,
    fraction: float,
) -> float:
    """Explicit budget, or ``fraction`` of aggregate demand."""
    if server_capacity is not None:
        return float(server_capacity)
    return float(fraction * num_peers * demand_per_peer)


def correlated_failures_spec(
    num_peers: int = 2_000,
    num_helpers: int = 40,
    num_channels: int = 4,
    num_groups: int = 4,
    group_failure_rate: float = 0.03,
    mean_outage_rounds: float = 15.0,
    num_stages: int = 200,
    demand_per_peer: float = 100.0,
    server_capacity: Optional[float] = None,
    backend: str = "vectorized",
    seed: int = 0,
) -> ExperimentSpec:
    """Correlated helper outages: failure domains go dark as a unit.

    Helpers split into ``num_groups`` contiguous domains; each stage
    every healthy domain fails whole with probability
    ``group_failure_rate`` and stays dark for a geometric outage (mean
    ``mean_outage_rounds`` rounds).  When a domain drops, every peer
    attached to it loses its whole neighborhood at once and must
    re-explore under bandit feedback — sticky overlays ride the outage
    at zero rate while regret trackers migrate within a few rounds.
    """
    return ExperimentSpec(
        name="correlated-failures",
        backend=backend,
        rounds=num_stages,
        seed=seed,
        topology=TopologySpec(
            num_peers=num_peers,
            num_helpers=num_helpers,
            num_channels=num_channels,
            channel_bitrates=demand_per_peer,
        ),
        capacity=CapacitySpec(
            backend="vectorized",
            server_capacity=_server_budget(
                server_capacity, num_peers, demand_per_peer, 0.5
            ),
            transforms=(
                TransformSpec(
                    name="correlated_failures",
                    options={
                        "num_groups": num_groups,
                        "group_failure_rate": group_failure_rate,
                        "mean_outage_rounds": mean_outage_rounds,
                    },
                ),
            ),
        ),
        learner=LearnerSpec(name="rths"),
    )


def oscillating_capacity_spec(
    num_peers: int = 2_000,
    num_helpers: int = 40,
    num_channels: int = 4,
    low_fraction: float = 0.2,
    period: int = 25,
    num_groups: int = 2,
    num_stages: int = 200,
    demand_per_peer: float = 100.0,
    server_capacity: Optional[float] = None,
    backend: str = "vectorized",
    seed: int = 0,
) -> ExperimentSpec:
    """Adversarial oscillating capacity: the best helpers flip every period.

    A deterministic square wave throttles helper cohort ``b %
    num_groups`` to ``low_fraction`` of its bandwidth during stage block
    ``b`` — so whichever helpers a policy has locked onto are exactly
    the ones about to degrade.  The classic adversarial-bandit stressor:
    a fixed overlay pays the flip every period, a regret tracker
    re-adapts within it.
    """
    return ExperimentSpec(
        name="oscillating-capacity",
        backend=backend,
        rounds=num_stages,
        seed=seed,
        topology=TopologySpec(
            num_peers=num_peers,
            num_helpers=num_helpers,
            num_channels=num_channels,
            channel_bitrates=demand_per_peer,
        ),
        capacity=CapacitySpec(
            backend="vectorized",
            server_capacity=_server_budget(
                server_capacity, num_peers, demand_per_peer, 0.5
            ),
            transforms=(
                TransformSpec(
                    name="oscillating",
                    options={
                        "low_fraction": low_fraction,
                        "period": period,
                        "num_groups": num_groups,
                    },
                ),
            ),
        ),
        learner=LearnerSpec(name="rths"),
    )


def flash_storm_spec(
    num_peers: int = 2_000,
    num_helpers: int = 40,
    num_channels: int = 4,
    zipf_exponent: float = 1.2,
    arrival_rate: float = 30.0,
    mean_lifetime: float = 50.0,
    channel_switch_rate: float = 2.0,
    failure_rate: float = 0.02,
    mean_outage_rounds: float = 15.0,
    num_stages: int = 200,
    demand_per_peer: float = 100.0,
    server_capacity: Optional[float] = None,
    backend: str = "vectorized",
    seed: int = 0,
) -> ExperimentSpec:
    """Flash crowd composed with helper outages: everything at once.

    The ``flash_crowd`` churn storm (heavy Poisson arrivals onto
    Zipf-hot channels, short lifetimes, viewers hopping channels) runs
    on top of the ``failures`` capacity transform, so helpers crash and
    recover *while* the crowd surges.  The compound stressor: load
    concentrates on hot channels exactly when their helper blocks are
    least reliable, and the finite origin budget turns the shortfall
    into visible stalls.
    """
    return ExperimentSpec(
        name="flash-storm",
        backend=backend,
        rounds=num_stages,
        seed=seed,
        topology=TopologySpec(
            num_peers=num_peers,
            num_helpers=num_helpers,
            num_channels=num_channels,
            channel_bitrates=demand_per_peer,
            channel_popularity=tuple(
                zipf_popularity(num_channels, zipf_exponent)
            ),
            channel_switch_rate=channel_switch_rate,
        ),
        capacity=CapacitySpec(
            backend="vectorized",
            server_capacity=_server_budget(
                server_capacity, num_peers, demand_per_peer, 0.5
            ),
            transforms=(
                TransformSpec(
                    name="failures",
                    options={
                        "failure_rate": failure_rate,
                        "mean_outage_rounds": mean_outage_rounds,
                    },
                ),
            ),
        ),
        learner=LearnerSpec(name="rths"),
        churn=ChurnSpec(
            arrival_rate=arrival_rate,
            mean_lifetime=mean_lifetime,
            initial_peer_lifetimes=True,
        ),
    )


def diurnal_mix_spec(
    num_peers: int = 3_000,
    num_helpers: int = 60,
    num_channels: int = 10,
    zipf_exponent: float = 1.0,
    drift_rate: float = 0.15,
    drift_period: float = 25.0,
    channel_switch_rate: float = 3.0,
    arrival_rate: float = 15.0,
    mean_lifetime: float = 80.0,
    capacity_low_fraction: float = 0.5,
    capacity_period: int = 50,
    num_stages: int = 300,
    demand_per_peer: float = 100.0,
    server_capacity: Optional[float] = None,
    backend: str = "vectorized",
    seed: int = 0,
) -> ExperimentSpec:
    """Weekday/weekend diurnal mix: demand *and* supply follow the clock.

    Channel popularity drifts on a ``drift_period`` cycle (the evening's
    hot channels are not the morning's) while helper capacity swings on
    a long-period oscillation (``capacity_period`` stages per half-day —
    residential helpers saturate in prime time), under steady churn and
    viewer channel-hopping.  No single shock, just the compounding slow
    nonstationarity a deployed system lives in; the regime where
    decaying-memory regret tracking should hold a durable edge over any
    fixed assignment.
    """
    return ExperimentSpec(
        name="diurnal-mix",
        backend=backend,
        rounds=num_stages,
        seed=seed,
        topology=TopologySpec(
            num_peers=num_peers,
            num_helpers=num_helpers,
            num_channels=num_channels,
            channel_bitrates=demand_per_peer,
            channel_popularity=tuple(
                zipf_popularity(num_channels, zipf_exponent)
            ),
            channel_switch_rate=channel_switch_rate,
            popularity_drift_rate=drift_rate,
            popularity_drift_period=drift_period,
        ),
        capacity=CapacitySpec(
            backend="vectorized",
            server_capacity=_server_budget(
                server_capacity, num_peers, demand_per_peer, 0.5
            ),
            transforms=(
                TransformSpec(
                    name="oscillating",
                    options={
                        "low_fraction": capacity_low_fraction,
                        "period": capacity_period,
                        "num_groups": 2,
                    },
                ),
            ),
        ),
        learner=LearnerSpec(name="rths"),
        churn=ChurnSpec(
            arrival_rate=arrival_rate,
            mean_lifetime=mean_lifetime,
            initial_peer_lifetimes=True,
        ),
    )


register_scenario("correlated_failures", correlated_failures_spec)
register_scenario("oscillating_capacity", oscillating_capacity_spec)
register_scenario("flash_storm", flash_storm_spec)
register_scenario("diurnal_mix", diurnal_mix_spec)
