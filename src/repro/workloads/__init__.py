"""Workload generators and the paper's canned scenarios.

* :mod:`repro.workloads.popularity` — Zipf-like channel popularity (the
  time-varying popularity motivating multi-channel helper systems).
* :mod:`repro.workloads.demand` — per-peer streaming-demand profiles.
* :mod:`repro.workloads.scenarios` — the concrete experiment setups of the
  paper's Section IV (small-scale N=10/H=4, large-scale, Fig. 5 demand
  setting), each bundling population, environment and learner parameters.
* :mod:`repro.workloads.adversarial` — the hostile corpus the prequential
  evaluator (:mod:`repro.eval`) compares learners against: correlated
  helper outages, oscillating capacity, flash-crowd+failure storms, and
  diurnal popularity/capacity mixes.
* :mod:`repro.workloads.geo` — the geo-distributed corpus entries:
  cross-region flash crowds, regional outages and asymmetric access-link
  mixes, driving the :mod:`repro.network` layer through the spec's
  ``network`` section.
"""

from repro.workloads.adversarial import (
    correlated_failures_spec,
    diurnal_mix_spec,
    flash_storm_spec,
    oscillating_capacity_spec,
)
from repro.workloads.geo import (
    asymmetric_uplinks_spec,
    cross_region_flash_crowd_spec,
    regional_outage_spec,
)
from repro.workloads.demand import constant_demand, heterogeneous_demand
from repro.workloads.popularity import zipf_popularity
from repro.workloads.scenarios import (
    Scenario,
    fig5_scenario,
    flash_crowd_spec,
    heterogeneous_scenario,
    large_scale_scenario,
    make_capacity_process,
    make_heterogeneous_process,
    make_learner_population,
    make_system_config,
    make_vectorized_system,
    massive_scale_scenario,
    popularity_skew_spec,
    run_scenario,
    small_scale_scenario,
    spec_for_scenario,
)

__all__ = [
    "zipf_popularity",
    "constant_demand",
    "heterogeneous_demand",
    "Scenario",
    "small_scale_scenario",
    "large_scale_scenario",
    "fig5_scenario",
    "heterogeneous_scenario",
    "massive_scale_scenario",
    "spec_for_scenario",
    "popularity_skew_spec",
    "flash_crowd_spec",
    "make_capacity_process",
    "make_heterogeneous_process",
    "make_learner_population",
    "make_system_config",
    "make_vectorized_system",
    "run_scenario",
    "correlated_failures_spec",
    "oscillating_capacity_spec",
    "flash_storm_spec",
    "diurnal_mix_spec",
    "cross_region_flash_crowd_spec",
    "regional_outage_spec",
    "asymmetric_uplinks_spec",
]
