"""Geo-distributed scenarios: the corpus entries with a network layer.

The adversarial corpus (:mod:`repro.workloads.adversarial`) stresses
learners with *capacity* dynamics; the scenarios here add the missing
axis — *where* helpers sit.  Each registers a spec whose ``network``
section compiles region RTT matrices and helper-class mixes into the
link-effect wrapper (:mod:`repro.network`), so distance, jitter and
loss fold into the capacity every learner observes:

* ``cross_region_flash_crowd`` — a flash crowd served across three
  continents: helpers split into contiguous region blocks, viewers sit
  in one region, and far helpers look slower than their raw bandwidth.
* ``regional_outage`` — whole *regions* going dark: the
  ``correlated_failures`` transform with failure domains aligned to
  the region blocks, so an outage reads as a continent dropping off
  the map while cross-region RTTs keep the survivors unequal.
* ``asymmetric_uplinks`` — a realistic access-link mix (seedbox /
  residential / mobile helper classes) where nominal capacity levels
  hide very different observed goodput.

Every factory pins the same finite origin budget as the rest of the
corpus (half of aggregate demand by default) and a ``vectorized``
capacity base, so scalar/vectorized eval cells share the environment
realization.
"""

from __future__ import annotations

from typing import Optional

from repro.spec import (
    CapacitySpec,
    ChurnSpec,
    ExperimentSpec,
    LearnerSpec,
    NetworkSpec,
    TopologySpec,
    TransformSpec,
    register_scenario,
)
from repro.workloads.adversarial import _server_budget
from repro.workloads.popularity import zipf_popularity

# Three-continent RTT matrix (ms, viewer-side): intra-region access
# latency on the diagonal, transit RTTs off it.  Deliberately spread so
# the latency factor (rtt_ref / rtt) separates the regions: local
# helpers are untaxed, transatlantic ones lose ~40%, trans-Pacific ones
# most of their throughput.
GEO_REGIONS = ("us-east", "eu-west", "ap-south")
GEO_LATENCY_MATRIX = (
    (15.0, 85.0, 220.0),
    (85.0, 15.0, 150.0),
    (220.0, 150.0, 15.0),
)


def cross_region_flash_crowd_spec(
    num_peers: int = 2_000,
    num_helpers: int = 42,
    num_channels: int = 4,
    zipf_exponent: float = 1.2,
    arrival_rate: float = 30.0,
    mean_lifetime: float = 50.0,
    channel_switch_rate: float = 2.0,
    jitter_ms: float = 8.0,
    loss_rate: float = 0.005,
    num_stages: int = 200,
    demand_per_peer: float = 100.0,
    server_capacity: Optional[float] = None,
    backend: str = "vectorized",
    seed: int = 0,
) -> ExperimentSpec:
    """A flash crowd served by helpers spread across three regions.

    The ``flash_crowd`` churn storm (heavy Poisson arrivals onto
    Zipf-hot channels, short lifetimes, channel-hopping) hits a helper
    pool split into contiguous region blocks behind the three-continent
    RTT matrix, with global jitter and a small loss floor.  Viewers sit
    in ``us-east``: the nearest third of the pool serves at full rate
    while the trans-Pacific third is latency-taxed to a fraction of its
    nominal bandwidth — so the *observed* capacity ranking the bandits
    learn is dominated by geography, not the Markov levels.
    """
    return ExperimentSpec(
        name="cross-region-flash-crowd",
        backend=backend,
        rounds=num_stages,
        seed=seed,
        topology=TopologySpec(
            num_peers=num_peers,
            num_helpers=num_helpers,
            num_channels=num_channels,
            channel_bitrates=demand_per_peer,
            channel_popularity=tuple(
                zipf_popularity(num_channels, zipf_exponent)
            ),
            channel_switch_rate=channel_switch_rate,
        ),
        capacity=CapacitySpec(
            backend="vectorized",
            server_capacity=_server_budget(
                server_capacity, num_peers, demand_per_peer, 0.5
            ),
        ),
        network=NetworkSpec(
            regions=GEO_REGIONS,
            latency_matrix=GEO_LATENCY_MATRIX,
            viewer_region=0,
            jitter_ms=jitter_ms,
            loss_rate=loss_rate,
        ),
        learner=LearnerSpec(name="rths"),
        churn=ChurnSpec(
            arrival_rate=arrival_rate,
            mean_lifetime=mean_lifetime,
            initial_peer_lifetimes=True,
        ),
    )


def regional_outage_spec(
    num_peers: int = 2_000,
    num_helpers: int = 42,
    num_channels: int = 4,
    region_failure_rate: float = 0.03,
    mean_outage_rounds: float = 15.0,
    num_stages: int = 200,
    demand_per_peer: float = 100.0,
    server_capacity: Optional[float] = None,
    backend: str = "vectorized",
    seed: int = 0,
) -> ExperimentSpec:
    """Whole regions going dark under a cross-region RTT matrix.

    The ``correlated_failures`` transform runs with one failure domain
    per region — both use the same contiguous block split, so a domain
    outage *is* a region outage.  When ``eu-west`` drops, every
    surviving helper is either local or trans-Pacific: recovery is not
    a reshuffle among equals but a forced trade between a dark
    continent and a latency-taxed one, which is exactly where sticky
    overlays bleed and regret trackers migrate.
    """
    return ExperimentSpec(
        name="regional-outage",
        backend=backend,
        rounds=num_stages,
        seed=seed,
        topology=TopologySpec(
            num_peers=num_peers,
            num_helpers=num_helpers,
            num_channels=num_channels,
            channel_bitrates=demand_per_peer,
        ),
        capacity=CapacitySpec(
            backend="vectorized",
            server_capacity=_server_budget(
                server_capacity, num_peers, demand_per_peer, 0.5
            ),
            transforms=(
                TransformSpec(
                    name="correlated_failures",
                    options={
                        # One domain per region: CorrelatedFailureProcess
                        # and RegionTopology split helpers into the same
                        # contiguous blocks, so domains align to regions
                        # by construction.
                        "num_groups": len(GEO_REGIONS),
                        "group_failure_rate": region_failure_rate,
                        "mean_outage_rounds": mean_outage_rounds,
                    },
                ),
            ),
        ),
        network=NetworkSpec(
            regions=GEO_REGIONS,
            latency_matrix=GEO_LATENCY_MATRIX,
            viewer_region=0,
        ),
        learner=LearnerSpec(name="rths"),
    )


def asymmetric_uplinks_spec(
    num_peers: int = 2_000,
    num_helpers: int = 40,
    num_channels: int = 4,
    seedbox_fraction: float = 0.15,
    residential_fraction: float = 0.60,
    mobile_fraction: float = 0.25,
    num_stages: int = 200,
    demand_per_peer: float = 100.0,
    server_capacity: Optional[float] = None,
    backend: str = "vectorized",
    seed: int = 0,
) -> ExperimentSpec:
    """A realistic access-link mix: seedbox / residential / mobile.

    Helpers draw the same Markov bandwidth levels but observe them
    through very different last miles — a seedbox minority (scaled up,
    near-lossless), a residential majority, and a mobile tail whose
    jitter and loss erase most of its nominal capacity.  Nominal and
    observed rankings disagree persistently, so a policy that learns
    from observed goodput (what the bandit feedback actually is)
    concentrates on the thin seedbox tier while naive uniform spreading
    wastes picks on mobile uplinks.
    """
    return ExperimentSpec(
        name="asymmetric-uplinks",
        backend=backend,
        rounds=num_stages,
        seed=seed,
        topology=TopologySpec(
            num_peers=num_peers,
            num_helpers=num_helpers,
            num_channels=num_channels,
            channel_bitrates=demand_per_peer,
        ),
        capacity=CapacitySpec(
            backend="vectorized",
            server_capacity=_server_budget(
                server_capacity, num_peers, demand_per_peer, 0.5
            ),
        ),
        network=NetworkSpec(
            helper_classes={
                "seedbox": seedbox_fraction,
                "residential": residential_fraction,
                "mobile": mobile_fraction,
            },
        ),
        learner=LearnerSpec(name="rths"),
    )


register_scenario("cross_region_flash_crowd", cross_region_flash_crowd_spec)
register_scenario("regional_outage", regional_outage_spec)
register_scenario("asymmetric_uplinks", asymmetric_uplinks_spec)
