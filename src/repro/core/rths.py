"""RTHS — Regret-Tracking-based Helper Selection (paper Algorithm 1).

:class:`RTHSLearner` is the literal form: it stores the private history
``h_i^n = (a^0, u^0, ..., a^{n-1}, u^{n-1})`` and evaluates the weighted
sums of Eqs. (3-2)/(3-3) directly each stage.  It is O(n) in memory and
O(n·H) per stage — fine for validation and small experiments; use
:class:`repro.core.r2hs.R2HSLearner` (mathematically identical, recursive)
for anything large.

:func:`regret_matching_learner` builds the uniform-average ancestor of the
algorithm (Hart & Mas-Colell's reinforcement procedure): identical code
path with the harmonic step schedule.  The tracking-vs-matching ablation
bench contrasts the two under bandwidth drift.
"""

from __future__ import annotations

from typing import Optional

from repro.core.proxy_regret import ExactProxyRegret, RecursiveProxyRegret
from repro.core.regret_learner import RegretLearner
from repro.core.schedules import StepSchedule, constant_step, harmonic_step
from repro.util.rng import Seedish


class RTHSLearner(RegretLearner):
    """Algorithm 1: regret tracking with explicit history sums.

    Parameters mirror the paper's notation: ``epsilon`` is the constant
    step size, ``mu`` the normalization constant, ``delta`` the exploration
    weight, and ``u_max`` the utility normalizer (maximum helper capacity).
    """

    def __init__(
        self,
        num_actions: int,
        rng: Seedish = None,
        epsilon: float = 0.05,
        mu: Optional[float] = None,
        delta: float = 0.1,
        u_max: float = 1.0,
        schedule: Optional[StepSchedule] = None,
    ) -> None:
        if schedule is None:
            schedule = constant_step(epsilon)
        estimator = ExactProxyRegret(num_actions, schedule=schedule)
        super().__init__(
            num_actions,
            estimator,
            rng=rng,
            mu=mu,
            delta=delta,
            u_max=u_max,
        )
        self._epsilon = float(epsilon)

    @property
    def epsilon(self) -> float:
        """The constant step size (ignored if a custom schedule was given)."""
        return self._epsilon


def regret_matching_learner(
    num_actions: int,
    rng: Seedish = None,
    mu: Optional[float] = None,
    delta: float = 0.1,
    u_max: float = 1.0,
    recursive: bool = True,
) -> RegretLearner:
    """Classic regret matching (uniform averaging over all history).

    This is the Hart & Mas-Colell reinforcement procedure the paper builds
    on: the same proxy-regret machinery with step schedule ``1/n``.  It
    converges to the CE set in stationary environments but cannot track a
    drifting one — the property the tracking ablation demonstrates.
    """
    schedule = harmonic_step()
    if recursive:
        estimator = RecursiveProxyRegret(num_actions, schedule=schedule)
    else:
        estimator = ExactProxyRegret(num_actions, schedule=schedule)
    return RegretLearner(
        num_actions,
        estimator,
        rng=rng,
        mu=mu,
        delta=delta,
        u_max=u_max,
    )
