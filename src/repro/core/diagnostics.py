"""Convergence diagnostics for recorded play.

Scalar summaries used by the benches and handy for downstream users
monitoring a live deployment:

* :func:`sliding_ce_regret` — empirical CE regret over a sliding window
  (a *local in time* version of Eq. 3-1; under tracking it stays small
  even through environment drift, unlike the all-history average);
* :func:`strategy_entropy` — mixing of a strategy profile (converged
  populations sit near the delta-exploration floor);
* :func:`switching_statistics` — how often peers actually re-select, and
  the mean sojourn (run length) on a helper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.equilibrium import empirical_ce_regret_report
from repro.game.repeated_game import Trajectory


def sliding_ce_regret(
    trajectory: Trajectory,
    window: int,
    stride: Optional[int] = None,
    u_max: Optional[float] = None,
) -> np.ndarray:
    """Max empirical CE regret over sliding windows of ``window`` stages.

    Returns one value per window start (stride defaults to the window, so
    windows tile the run without overlap).
    """
    t = trajectory.num_stages
    if window < 1 or window > t:
        raise ValueError(f"window must lie in 1..{t}")
    step = window if stride is None else stride
    if step < 1:
        raise ValueError("stride must be >= 1")
    values = []
    for start in range(0, t - window + 1, step):
        piece = Trajectory(
            capacities=trajectory.capacities[start : start + window],
            actions=trajectory.actions[start : start + window],
            loads=trajectory.loads[start : start + window],
            utilities=trajectory.utilities[start : start + window],
        )
        values.append(empirical_ce_regret_report(piece, u_max=u_max).max_regret)
    return np.asarray(values)


def strategy_entropy(strategies: np.ndarray, base: float = 2.0) -> np.ndarray:
    """Shannon entropy of each row of a strategy matrix ``(N, H)``.

    Zero entries contribute zero; the result is in units of ``log base``
    (bits by default).  A converged RTHS peer's entropy approaches the
    entropy of the delta-exploration floor distribution.
    """
    probs = np.asarray(strategies, dtype=float)
    if probs.ndim == 1:
        probs = probs[None, :]
    if np.any(probs < -1e-12) or np.any(np.abs(probs.sum(axis=1) - 1) > 1e-6):
        raise ValueError("rows must be probability vectors")
    safe = np.clip(probs, 1e-300, None)
    h = -(probs * np.log(safe)).sum(axis=1) / np.log(base)
    return h if h.size > 1 else h


@dataclass(frozen=True)
class SwitchingStatistics:
    """Per-peer re-selection behaviour over a run."""

    switch_rate: np.ndarray    # (N,) fraction of stages with a helper change
    mean_sojourn: np.ndarray   # (N,) average consecutive stages per helper

    @property
    def population_switch_rate(self) -> float:
        """Mean switch rate across peers."""
        return float(self.switch_rate.mean())

    @property
    def population_mean_sojourn(self) -> float:
        """Mean sojourn length across peers."""
        return float(self.mean_sojourn.mean())


def switching_statistics(trajectory: Trajectory) -> SwitchingStatistics:
    """Compute per-peer switch rates and mean sojourn lengths."""
    actions = trajectory.actions
    t, n = actions.shape
    if t < 2:
        return SwitchingStatistics(
            switch_rate=np.zeros(n), mean_sojourn=np.full(n, float(t))
        )
    changes = actions[1:] != actions[:-1]
    rate = changes.mean(axis=0)
    # Number of runs = number of changes + 1; mean sojourn = T / runs.
    runs = changes.sum(axis=0) + 1
    sojourn = t / runs
    return SwitchingStatistics(switch_rate=rate, mean_sojourn=sojourn)
