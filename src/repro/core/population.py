"""Vectorized population of R2HS learners.

Per-object learners (one Python object per peer) are convenient but slow
for the paper's large-scale scenario (Fig. 1: hundreds of peers, thousands
of stages).  :class:`LearnerPopulation` carries the whole population's state
in three arrays —

* ``S``  of shape ``(N, H, H)`` — every peer's normalized regret accumulator,
* ``probs`` of shape ``(N, H)`` — every peer's mixed strategy,
* per-peer RNG streams collapsed into one generator —

and advances all peers per stage with a handful of numpy operations.  The
dynamics are *identical* to ``N`` independent
:class:`repro.core.r2hs.R2HSLearner` objects (asserted distributionally in
the tests); only the arithmetic is batched.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.probability import default_mu
from repro.core.schedules import StepSchedule, constant_step
from repro.game.repeated_game import CapacityProcess, Trajectory
from repro.util.rng import Seedish, as_generator
from repro.util.validation import require_positive, require_positive_int


class LearnerPopulation:
    """``N`` R2HS learners advanced in lock-step with vectorized numpy ops.

    Parameters
    ----------
    num_peers, num_helpers:
        Population and action-set sizes.
    epsilon:
        Constant tracking step size (or pass ``schedule``).
    mu, delta, u_max:
        As in :class:`repro.core.regret_learner.RegretLearner`; ``mu`` is in
        normalized utility units.
    rng:
        One generator drives the whole population (actions are sampled as a
        single ``(N,)`` uniform draw per stage).
    """

    def __init__(
        self,
        num_peers: int,
        num_helpers: int,
        epsilon: float = 0.05,
        mu: Optional[float] = None,
        delta: float = 0.1,
        u_max: float = 1.0,
        rng: Seedish = None,
        schedule: Optional[StepSchedule] = None,
    ) -> None:
        self._n = require_positive_int(num_peers, "num_peers")
        self._h = require_positive_int(num_helpers, "num_helpers")
        if self._h < 2:
            raise ValueError("need at least two helpers")
        if not 0 < delta < 1:
            raise ValueError("delta must lie strictly in (0, 1)")
        self._schedule = schedule if schedule is not None else constant_step(epsilon)
        self._mu = require_positive(
            mu if mu is not None else default_mu(num_helpers), "mu"
        )
        self._delta = float(delta)
        self._u_max = require_positive(u_max, "u_max")
        self._rng = as_generator(rng)
        self._s = np.zeros((self._n, self._h, self._h))
        self._probs = np.full((self._n, self._h), 1.0 / self._h)
        self._stage = 0
        self._peer_index = np.arange(self._n)
        self._last_played_regrets = np.zeros((self._n, self._h))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_peers(self) -> int:
        """Population size ``N``."""
        return self._n

    @property
    def num_helpers(self) -> int:
        """Number of helpers ``H``."""
        return self._h

    @property
    def stage(self) -> int:
        """Stages completed so far."""
        return self._stage

    def strategies(self) -> np.ndarray:
        """All mixed strategies, shape ``(N, H)`` (copy)."""
        return self._probs.copy()

    def regret_matrices(self) -> np.ndarray:
        """All proxy-regret matrices ``Q``, shape ``(N, H, H)``."""
        diag = np.einsum("ijj->ij", self._s)
        q = np.clip(self._s - diag[:, :, None], 0.0, None)
        idx = np.arange(self._h)
        q[:, idx, idx] = 0.0
        return q

    def max_regrets(self) -> np.ndarray:
        """Per-peer maximum pairwise regret, shape ``(N,)``."""
        return self.regret_matrices().max(axis=(1, 2))

    def worst_player_regret(self) -> float:
        """``max_i max_k Q_i(a_i^n, k)`` — the Fig. 1 quantity.

        The regret of the worst player *at its current play*: the largest
        estimated gain any peer attributes to switching away from the
        action it just used.  This is the row of ``Q`` that actually drives
        the probability update; it decays to the tracking noise floor as
        play converges to the CE set.  (Rows of rarely-played actions stay
        noisy by construction — the importance weights divide by small
        probabilities — so the full-matrix max of :meth:`max_regrets` is
        not the convergence diagnostic.)
        """
        if self._stage == 0:
            return 0.0
        return float(self._last_played_regrets.max())

    def played_regrets(self) -> np.ndarray:
        """Per-peer regret rows of the last played actions, shape ``(N, H)``."""
        return self._last_played_regrets.copy()

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------

    def act_all(self) -> np.ndarray:
        """Sample one action per peer from the current mixed strategies."""
        cdf = np.cumsum(self._probs, axis=1)
        draws = self._rng.random(self._n)
        actions = (cdf < draws[:, None]).sum(axis=1)
        return np.minimum(actions, self._h - 1)

    def observe_all(self, actions: np.ndarray, utilities: np.ndarray) -> None:
        """Batch regret + probability update for one stage.

        ``actions`` and ``utilities`` are the per-peer played helpers and
        realized rates (raw units; normalization happens here).
        """
        actions = np.asarray(actions, dtype=int)
        utilities = np.asarray(utilities, dtype=float)
        if actions.shape != (self._n,) or utilities.shape != (self._n,):
            raise ValueError("actions and utilities must both have shape (N,)")
        if actions.min(initial=0) < 0 or actions.max(initial=0) >= self._h:
            raise ValueError("actions out of range")
        self._stage += 1
        eps = self._schedule(self._stage)
        normalized = utilities / self._u_max

        # Eq. (3-5), batched: decay, then rank-one column update per peer.
        self._s *= 1.0 - eps
        played_prob = self._probs[self._peer_index, actions]
        weight = eps * normalized / played_prob
        self._s[self._peer_index, :, actions] += weight[:, None] * self._probs

        # Regret rows for the played actions (Eq. 3-6, row j = a_i).
        rows = self._s[self._peer_index, actions, :]
        diag = self._s[self._peer_index, actions, actions]
        q = np.clip(rows - diag[:, None], 0.0, None)
        q[self._peer_index, actions] = 0.0
        self._last_played_regrets = q.copy()

        # Probability update (Algorithm 2).
        cap = 1.0 / (self._h - 1)
        new_probs = np.minimum(q / self._mu, cap)
        new_probs *= 1.0 - self._delta
        new_probs += self._delta / self._h
        new_probs[self._peer_index, actions] = 0.0
        new_probs[self._peer_index, actions] = 1.0 - new_probs.sum(axis=1)
        self._probs = new_probs

    def run(
        self,
        capacity_process: CapacityProcess,
        num_stages: int,
        stage_callback: Optional[Callable[[int, np.ndarray], None]] = None,
    ) -> Trajectory:
        """Play ``num_stages`` stages of the helper-selection game.

        Semantics match :class:`repro.game.repeated_game.RepeatedGameDriver`
        with even capacity splitting; returns the same dense
        :class:`~repro.game.repeated_game.Trajectory`.
        """
        if num_stages < 1:
            raise ValueError("num_stages must be >= 1")
        if capacity_process.num_helpers != self._h:
            raise ValueError(
                f"capacity process has {capacity_process.num_helpers} helpers, "
                f"population expects {self._h}"
            )
        capacities = np.empty((num_stages, self._h))
        actions = np.empty((num_stages, self._n), dtype=int)
        loads = np.empty((num_stages, self._h), dtype=int)
        utilities = np.empty((num_stages, self._n))
        for t in range(num_stages):
            caps = np.asarray(capacity_process.capacities(), dtype=float)
            acts = self.act_all()
            counts = np.bincount(acts, minlength=self._h)
            utils = caps[acts] / counts[acts]
            self.observe_all(acts, utils)
            capacities[t] = caps
            actions[t] = acts
            loads[t] = counts
            utilities[t] = utils
            if stage_callback is not None:
                stage_callback(t, utils)
            capacity_process.advance()
        return Trajectory(
            capacities=capacities, actions=actions, loads=loads, utilities=utilities
        )
