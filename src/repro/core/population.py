"""Vectorized population of regret-tracking learners.

Per-object learners (one Python object per peer) are convenient but slow
for the paper's large-scale scenario (Fig. 1: hundreds of peers, thousands
of stages).  :class:`LearnerPopulation` carries the whole population's state
in a few arrays —

* ``S``  of shape ``(N, H, H)`` — every peer's normalized regret accumulator,
* ``probs`` of shape ``(N, H)`` — every peer's mixed strategy,
* ``scale`` of shape ``(N,)`` — a lazy decay factor (see below),
* per-peer RNG streams collapsed into one generator —

and advances all peers per stage with a handful of numpy operations.  The
dynamics are *identical* to ``N`` independent
:class:`repro.core.r2hs.R2HSLearner` objects (asserted in the tests); only
the arithmetic is batched.  With a constant step size the recursion equals
the literal RTHS history sums (Algorithm 1) too — the exact/recursive
equivalence asserted in ``tests/core/test_proxy_regret.py`` — so this one
class is the vectorized form of both RTHS and R2HS.

**Lazy decay.**  The naive batched update rescales the whole ``(N, H, H)``
tensor by ``(1 - eps)`` every stage — O(N·H²) memory traffic that dominates
large runs.  We instead store ``S = scale ⊙ S_stored`` and fold the decay
into the per-peer scalar ``scale``; a stage then touches only the played
column and row: O(N·H).  ``scale`` is renormalized into ``S_stored`` long
before it can underflow.

**Layout.**  The accumulator is stored *column-major per peer*:
``_s[i, k, j]`` holds ``S_i(j, k)``.  The hot write (the rank-one update to
column ``a_i``) then lands on a contiguous row of the stored tensor, while
the hot read (regret row ``j = a_i``) becomes a constant-stride gather the
hardware prefetcher handles — about 3× faster per stage at 10k × 100 than
the row-major layout, where the scattered read-modify-write dominates.

**Slot API.**  ``act_slots`` / ``observe_slots`` / ``reset_slots`` /
``ensure_capacity`` advance an arbitrary *subset* of rows with per-slot
stage counters, which is what :mod:`repro.runtime` needs to host churning
populations (a freed slot is reset and handed to the next arrival).  The
classic whole-population API (``act_all`` / ``observe_all`` / ``run``) is a
thin wrapper over the slot API.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.core.probability import default_mu
from repro.core.schedules import StepSchedule, constant_step
from repro.game.repeated_game import CapacityProcess, Trajectory
from repro.util.rng import Seedish, as_generator
from repro.util.validation import require_positive, require_positive_int

# Renormalize a slot's lazy scale into its stored tensor below this value.
# With eps = 0.05 it triggers roughly every 4500 stages — far from the
# ~1e-308 underflow edge, and amortized O(H²/4500) per slot per stage.
_SCALE_FLOOR = 1e-100

# float32 storage holds entries of magnitude ~1/scale, so the renorm must
# fire long before 1/scale approaches float32's ~3.4e38 overflow edge.  At
# 1e-12 the stored tensor stays within ~1e14 of unit scale (7 significant
# digits of float32 leave the *relative* regret error at the 1e-7 level —
# rescaling preserves relative error), and with eps = 0.05 the renorm
# triggers roughly every 540 stages: amortized O(H²/540) per slot.
_SCALE_FLOOR32 = 1e-12

# Stage updates run in blocks of this many slots so the ~10 per-stage
# (block, H) temporaries stay cache-resident instead of streaming through
# DRAM (measurably faster from ~50k touched elements per pass up).
_OBSERVE_BLOCK = 4096

# Elements (rows × action-set width) a single observe pass targets.  For
# narrow action sets the fixed row block would leave passes tiny and
# dispatch-bound (at H = 2 a 4096-row pass moves only 64 KiB), so blocks
# widen to keep per-pass temporaries at the same ~2 MiB cache budget the
# 4096-row block was sized for at H = 64.
_OBSERVE_TARGET_ELEMS = _OBSERVE_BLOCK * 64


def _observe_block_rows(width: int) -> int:
    """Rows per observe pass for the given action-set width.

    Blocking is bit-identity-safe: every op in the stage update is
    per-row (slots never repeat within a call), so results do not depend
    on where block boundaries fall.
    """
    return max(_OBSERVE_BLOCK, _OBSERVE_TARGET_ELEMS // max(int(width), 1))


class _Scratch:
    """Grow-on-demand reusable buffers, keyed by name.

    The stage update and the action sampler are dispatch- and
    allocation-bound at small action-set widths; routing their
    temporaries through one of these per-population pools removes the
    fresh ``(k, H)`` allocations each call without changing any
    arithmetic.  Buffers only ever grow, and a view of the first ``k``
    rows is handed back, so callers see exactly-sized arrays.
    """

    __slots__ = ("_bufs",)

    def __init__(self) -> None:
        self._bufs: Dict[str, np.ndarray] = {}

    def vec(self, name: str, count: int, dtype) -> np.ndarray:
        buf = self._bufs.get(name)
        if buf is None or buf.shape[0] < count or buf.dtype != dtype:
            cap = count if buf is None else max(count, buf.shape[0])
            buf = np.empty(cap, dtype=dtype)
            self._bufs[name] = buf
        return buf[:count]

    def rows(self, name: str, count: int, width: int, dtype) -> np.ndarray:
        buf = self._bufs.get(name)
        if (
            buf is None
            or buf.shape[0] < count
            or buf.shape[1] != width
            or buf.dtype != dtype
        ):
            cap = count if buf is None else max(count, buf.shape[0])
            buf = np.empty((cap, width), dtype=dtype)
            self._bufs[name] = buf
        return buf[:count]

    def arange(self, count: int) -> np.ndarray:
        buf = self._bufs.get("arange")
        if buf is None or buf.shape[0] < count:
            buf = np.arange(count, dtype=np.intp)
            self._bufs["arange"] = buf
        return buf[:count]


class _EpsTable:
    """Dense stage → step-size lookup, grown on demand.

    Stage counters are 1-based and only ever advance by one per observe,
    so a flat table indexed by stage is both exact and amortized O(1) to
    maintain — it replaces the old per-unique-value ``np.unique`` +
    boolean-mask loop (O(k log k) per block plus a Python loop) with one
    fancy gather.  Index 0 is a NaN sentinel (no stage 0 is ever looked
    up after the pre-increment in the stage update).
    """

    __slots__ = ("_schedule", "_table")

    def __init__(self, schedule: StepSchedule) -> None:
        self._schedule = schedule
        self._table = np.full(1, np.nan)

    def __call__(self, stages: np.ndarray) -> np.ndarray:
        table = self._table
        top = int(stages.max(initial=1))
        if top >= table.shape[0]:
            size = max(top + 1, 2 * table.shape[0])
            grown = np.empty(size)
            grown[: table.shape[0]] = table
            for n in range(table.shape[0], size):
                grown[n] = float(self._schedule(n))
            self._table = table = grown
        return table[stages]


class LearnerPopulation:
    """``N`` regret-tracking learners advanced in lock-step with numpy ops.

    Parameters
    ----------
    num_peers, num_helpers:
        Population and action-set sizes.
    epsilon:
        Constant tracking step size (or pass ``schedule``).
    mu, delta, u_max:
        As in :class:`repro.core.regret_learner.RegretLearner`; ``mu`` is in
        normalized utility units.
    rng:
        One generator drives the whole population (actions are sampled as a
        single ``(N,)`` uniform draw per stage).
    dtype:
        Storage dtype of the regret tensor, strategies and played-regret
        rows (``numpy.float64`` default).  ``numpy.float32`` halves the
        memory traffic of the stage update — the dominant cost at scale —
        at ~1e-7 relative arithmetic error per stage (see the float32
        equivalence test for the drift this implies over long runs).  The
        lazy-decay ``scale`` vector stays float64 either way (it is O(N)
        and carries the accumulated forgetting factor), and the renorm
        floor rises so the stored tensor never overflows float32.
    """

    def __init__(
        self,
        num_peers: int,
        num_helpers: int,
        epsilon: float = 0.05,
        mu: Optional[float] = None,
        delta: float = 0.1,
        u_max: float = 1.0,
        rng: Seedish = None,
        schedule: Optional[StepSchedule] = None,
        dtype=np.float64,
    ) -> None:
        self._n = require_positive_int(num_peers, "num_peers")
        self._h = require_positive_int(num_helpers, "num_helpers")
        if self._h < 2:
            raise ValueError("need at least two helpers")
        if not 0 < delta < 1:
            raise ValueError("delta must lie strictly in (0, 1)")
        self._schedule = schedule if schedule is not None else constant_step(epsilon)
        self._constant_eps: Optional[float] = getattr(
            self._schedule, "constant_value", None
        )
        self._eps_table = _EpsTable(self._schedule)
        self._mu = require_positive(
            mu if mu is not None else default_mu(num_helpers), "mu"
        )
        self._delta = float(delta)
        self._u_max = require_positive(u_max, "u_max")
        self._rng = as_generator(rng)
        self._dtype = np.dtype(dtype)
        if self._dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(
                f"dtype must be float32 or float64, got {self._dtype}"
            )
        self._scale_floor = (
            _SCALE_FLOOR32 if self._dtype == np.dtype(np.float32) else _SCALE_FLOOR
        )
        # Transposed storage: _s[i, k, j] = S_i(j, k); see module docstring.
        self._s = np.zeros((self._n, self._h, self._h), dtype=self._dtype)
        self._scale = np.ones(self._n)
        self._probs = np.full((self._n, self._h), 1.0 / self._h, dtype=self._dtype)
        self._stage = 0
        self._stages = np.zeros(self._n, dtype=np.int64)
        self._peer_index = np.arange(self._n)
        self._last_played_regrets = np.zeros((self._n, self._h), dtype=self._dtype)
        # Maintained strategy CDF: row i always holds cumsum(_probs[i]).
        # The action sampler gathers it instead of re-running cumsum over
        # rows that have not changed since the last observe; every writer
        # of _probs refreshes the matching rows (same sequential cumsum
        # arithmetic, so act results stay bit-identical).
        self._cdf = np.cumsum(self._probs, axis=1)
        self._uniform_cdf = np.cumsum(
            np.full(self._h, 1.0 / self._h, dtype=self._dtype)
        )
        # Flat offsets of column j within one (H, H) block (see the q
        # gather in _observe_block).
        self._col_offsets = np.arange(self._h, dtype=np.intp) * self._h
        self._scratch = _Scratch()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_peers(self) -> int:
        """Population size ``N`` (the number of slots)."""
        return self._n

    @property
    def num_helpers(self) -> int:
        """Number of helpers ``H``."""
        return self._h

    @property
    def stage(self) -> int:
        """Whole-population stages completed (``observe_all`` calls)."""
        return self._stage

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the regret tensor and strategies."""
        return self._dtype

    def slot_stages(self) -> np.ndarray:
        """Per-slot stage counters, shape ``(N,)`` (copy)."""
        return self._stages.copy()

    def strategies(self) -> np.ndarray:
        """All mixed strategies, shape ``(N, H)`` (copy)."""
        return self._probs.copy()

    def regret_matrices(self) -> np.ndarray:
        """All proxy-regret matrices ``Q``, shape ``(N, H, H)``."""
        s = (self._s * self._scale[:, None, None]).transpose(0, 2, 1)
        diag = np.einsum("ijj->ij", s)
        q = np.clip(s - diag[:, :, None], 0.0, None)
        idx = np.arange(self._h)
        q[:, idx, idx] = 0.0
        return q

    def max_regrets(self) -> np.ndarray:
        """Per-peer maximum pairwise regret, shape ``(N,)``."""
        return self.regret_matrices().max(axis=(1, 2))

    def worst_player_regret(self) -> float:
        """``max_i max_k Q_i(a_i^n, k)`` — the Fig. 1 quantity.

        The regret of the worst player *at its current play*: the largest
        estimated gain any peer attributes to switching away from the
        action it just used.  This is the row of ``Q`` that actually drives
        the probability update; it decays to the tracking noise floor as
        play converges to the CE set.  (Rows of rarely-played actions stay
        noisy by construction — the importance weights divide by small
        probabilities — so the full-matrix max of :meth:`max_regrets` is
        not the convergence diagnostic.)
        """
        if self._stage == 0 and not self._stages.any():
            return 0.0
        return float(self._last_played_regrets.max())

    def played_regrets(self) -> np.ndarray:
        """Per-peer regret rows of the last played actions, shape ``(N, H)``."""
        return self._last_played_regrets.copy()

    # ------------------------------------------------------------------
    # Slot management (used by repro.runtime banks)
    # ------------------------------------------------------------------

    def ensure_capacity(self, capacity: int) -> None:
        """Grow the population to at least ``capacity`` slots.

        New slots start fresh (uniform strategy, zero regret, stage 0).
        Existing slots keep their state and indices.
        """
        if capacity <= self._n:
            return
        old = self._n
        self._s = np.concatenate(
            [self._s, np.zeros((capacity - old, self._h, self._h), dtype=self._dtype)]
        )
        self._scale = np.concatenate([self._scale, np.ones(capacity - old)])
        self._probs = np.concatenate(
            [
                self._probs,
                np.full((capacity - old, self._h), 1.0 / self._h, dtype=self._dtype),
            ]
        )
        self._stages = np.concatenate(
            [self._stages, np.zeros(capacity - old, dtype=np.int64)]
        )
        self._last_played_regrets = np.concatenate(
            [
                self._last_played_regrets,
                np.zeros((capacity - old, self._h), dtype=self._dtype),
            ]
        )
        self._cdf = np.concatenate(
            [self._cdf, np.tile(self._uniform_cdf, (capacity - old, 1))]
        )
        self._n = int(capacity)
        self._peer_index = np.arange(self._n)

    def reset_slots(self, slots: np.ndarray) -> None:
        """Reinitialize ``slots`` to the fresh-learner state."""
        slots = np.asarray(slots, dtype=np.intp)
        self._s[slots] = 0.0
        self._scale[slots] = 1.0
        self._probs[slots] = 1.0 / self._h
        self._cdf[slots] = self._uniform_cdf
        self._stages[slots] = 0
        self._last_played_regrets[slots] = 0.0

    def act_slots(
        self, slots: np.ndarray, draws: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Sample one action per listed slot (inverse-CDF, one uniform draw
        per slot).

        ``draws`` optionally supplies the per-slot uniforms instead of
        pulling them from the population's own generator — the hook the
        channel-grouped engine uses to fuse many channels' updates into
        one kernel call while preserving each channel's RNG stream
        exactly (see :mod:`repro.runtime.grouped_bank`).  The inversion
        arithmetic is identical either way.
        """
        slots = np.asarray(slots, dtype=np.intp)
        k = slots.shape[0]
        ws = self._scratch
        cdf = ws.rows("act_cdf", k, self._h, self._dtype)
        np.take(self._cdf, slots, axis=0, out=cdf)
        if draws is None:
            draws = self._rng.random(k)
        else:
            draws = np.asarray(draws, dtype=float)
            if draws.shape != (k,):
                raise ValueError("draws must supply one uniform per slot")
        below = ws.rows("act_below", k, self._h, np.bool_)
        np.less(cdf, draws[:, None], out=below)
        actions = below.sum(axis=1)
        return np.minimum(actions, self._h - 1)

    def observe_slots(
        self, slots: np.ndarray, actions: np.ndarray, utilities: np.ndarray
    ) -> None:
        """Regret + probability update for the listed slots only.

        ``slots`` must not contain duplicates (each peer plays once per
        round); callers in :mod:`repro.runtime` guarantee this by
        construction.  Per-slot stage counters drive the step schedule, so
        a peer that joined late sees the same early-stage steps a fresh
        learner would.
        """
        slots = np.asarray(slots, dtype=np.intp)
        actions = np.asarray(actions, dtype=int)
        utilities = np.asarray(utilities, dtype=float)
        k = slots.shape[0]
        if actions.shape != (k,) or utilities.shape != (k,):
            raise ValueError("slots, actions and utilities must align")
        if k == 0:
            return
        if actions.min(initial=0) < 0 or actions.max(initial=0) >= self._h:
            raise ValueError("actions out of range")
        block = _observe_block_rows(self._h)
        if k > block:
            for start in range(0, k, block):
                stop = start + block
                self._observe_block(
                    slots[start:stop], actions[start:stop], utilities[start:stop]
                )
            return
        self._observe_block(slots, actions, utilities)

    def _observe_block(
        self, slots: np.ndarray, actions: np.ndarray, utilities: np.ndarray
    ) -> None:
        k = slots.shape[0]
        h = self._h
        ws = self._scratch
        self._stages[slots] += 1
        eps = self._eps_for(self._stages[slots])
        normalized = np.divide(
            utilities, self._u_max, out=ws.vec("norm", k, np.float64)
        )

        # Eq. (3-5), batched with lazy decay: the (1 - eps) forgetting
        # factor accumulates in `scale`, the rank-one column update lands
        # in the stored tensor pre-divided by it.  In the transposed
        # storage, column a_i of S is the contiguous row _s[i, a_i, :].
        # (Every temporary below lives in a reused scratch buffer — at
        # scale the round cost is memory traffic and numpy dispatch, not
        # flops.)
        decay = 1.0 - eps
        if np.ndim(decay) == 0:
            if decay < self._scale_floor:
                # eps ≈ 1 (e.g. harmonic_step at stage 1) erases all
                # history: the recursion degenerates to S = eps *
                # increment.  Reset the affected slots instead of zeroing
                # `scale`, which the weight below divides by.
                self._s[slots] = 0.0
                self._scale[slots] = 1.0
                decay = 1.0
        else:
            wiped = decay < self._scale_floor
            if wiped.any():
                self._s[slots[wiped]] = 0.0
                self._scale[slots[wiped]] = 1.0
                decay = np.where(wiped, 1.0, decay)
        scale = ws.vec("scale", k, np.float64)
        np.take(self._scale, slots, out=scale)
        scale *= decay
        self._scale[slots] = scale
        row_index = ws.arange(k)
        gathered = ws.rows("gathered", k, h, self._dtype)
        np.take(self._probs, slots, axis=0, out=gathered)
        played_prob = gathered[row_index, actions]
        weight = ws.vec("weight", k, np.float64)
        np.multiply(normalized, eps, out=weight)
        np.divide(weight, played_prob, out=weight)
        np.divide(weight, scale, out=weight)
        np.multiply(gathered, weight[:, None], out=gathered)
        # Single-axis fancy indexing on a flat row view takes numpy's fast
        # path (~25% cheaper than the equivalent 3-axis form).
        flat_rows = self._s.reshape(self._n * h, h)
        row_idx = ws.vec("row_idx", k, np.intp)
        np.multiply(slots, h, out=row_idx)
        row_idx += actions
        acc = ws.rows("acc", k, h, self._dtype)
        np.take(flat_rows, row_idx, axis=0, out=acc)
        acc += gathered
        flat_rows[row_idx] = acc

        # Regret rows for the played actions (Eq. 3-6, row j = a_i);
        # S(a_i, k) over k is the strided column _s[i, :, a_i], gathered
        # through precomputed flat offsets (cheaper than the mixed
        # advanced-index form and free of its fresh result allocation).
        q_idx = ws.rows("q_idx", k, h, np.intp)
        base = ws.vec("q_base", k, np.intp)
        np.multiply(slots, h * h, out=base)
        base += actions
        np.add(base[:, None], self._col_offsets, out=q_idx)
        q = ws.rows("q", k, h, self._dtype)
        np.take(self._s.reshape(-1), q_idx, out=q)
        diag = q[row_index, actions]
        q -= diag[:, None]
        q *= scale[:, None]
        np.maximum(q, 0.0, out=q)
        q[row_index, actions] = 0.0
        self._last_played_regrets[slots] = q

        # Probability update (Algorithm 2), fused in place:
        # min(q/mu, cap)*(1-delta) + delta/H.
        cap = 1.0 / (h - 1)
        np.multiply(q, (1.0 - self._delta) / self._mu, out=q)
        np.minimum(q, (1.0 - self._delta) * cap, out=q)
        q += self._delta / self._h
        q[row_index, actions] = 0.0
        q[row_index, actions] = 1.0 - q.sum(axis=1)
        self._probs[slots] = q
        # Refresh the maintained CDF rows while q is cache-hot (q is not
        # needed after this point, so the cumsum lands in place).
        np.cumsum(q, axis=1, out=q)
        self._cdf[slots] = q

        # Fold nearly-underflowed scales back into the stored tensors.
        tiny = ws.vec("tiny", k, np.bool_)
        np.less(scale, self._scale_floor, out=tiny)
        if tiny.any():
            idx = slots[tiny]
            self._s[idx] *= self._scale[idx][:, None, None]
            self._scale[idx] = 1.0

    def _eps_for(self, stages: np.ndarray) -> np.ndarray | float:
        """Step sizes for the given (1-based) stage indices."""
        if self._constant_eps is not None:
            return self._constant_eps
        return self._eps_table(stages)

    # ------------------------------------------------------------------
    # Whole-population dynamics (classic API)
    # ------------------------------------------------------------------

    def act_all(self) -> np.ndarray:
        """Sample one action per peer from the current mixed strategies."""
        return self.act_slots(self._peer_index)

    def observe_all(self, actions: np.ndarray, utilities: np.ndarray) -> None:
        """Batch regret + probability update for one stage.

        ``actions`` and ``utilities`` are the per-peer played helpers and
        realized rates (raw units; normalization happens here).
        """
        actions = np.asarray(actions, dtype=int)
        utilities = np.asarray(utilities, dtype=float)
        if actions.shape != (self._n,) or utilities.shape != (self._n,):
            raise ValueError("actions and utilities must both have shape (N,)")
        self.observe_slots(self._peer_index, actions, utilities)
        self._stage += 1

    def run(
        self,
        capacity_process: CapacityProcess,
        num_stages: int,
        stage_callback: Optional[Callable[[int, np.ndarray], None]] = None,
    ) -> Trajectory:
        """Play ``num_stages`` stages of the helper-selection game.

        Semantics match :class:`repro.game.repeated_game.RepeatedGameDriver`
        with even capacity splitting; returns the same dense
        :class:`~repro.game.repeated_game.Trajectory`.
        """
        if num_stages < 1:
            raise ValueError("num_stages must be >= 1")
        if capacity_process.num_helpers != self._h:
            raise ValueError(
                f"capacity process has {capacity_process.num_helpers} helpers, "
                f"population expects {self._h}"
            )
        capacities = np.empty((num_stages, self._h))
        actions = np.empty((num_stages, self._n), dtype=int)
        loads = np.empty((num_stages, self._h), dtype=int)
        utilities = np.empty((num_stages, self._n))
        for t in range(num_stages):
            caps = np.asarray(capacity_process.capacities(), dtype=float)
            acts = self.act_all()
            counts = np.bincount(acts, minlength=self._h)
            utils = caps[acts] / counts[acts]
            self.observe_all(acts, utils)
            capacities[t] = caps
            actions[t] = acts
            loads[t] = counts
            utilities[t] = utils
            if stage_callback is not None:
                stage_callback(t, utils)
            capacity_process.advance()
        return Trajectory(
            capacities=capacities, actions=actions, loads=loads, utilities=utilities
        )
