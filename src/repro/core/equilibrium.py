"""Correlated equilibria: empirical checks and exact LP solutions.

Paper Eq. (3-1): a joint distribution ``z`` over action profiles is a
correlated equilibrium (CE) of the expected game iff for every player ``i``
and every pair of actions ``j, k``

    sum_{a : a_i = j} z(a) * [ E u_i(k, a_{-i}) - E u_i(a) ]  <=  0.

Two consumers:

* **Empirical play.**  The regret-tracking theorem says the *empirical
  distribution of play* converges to the CE set.  For a recorded
  :class:`~repro.game.repeated_game.Trajectory` we evaluate the left-hand
  side directly on the sample (using the stage's realized capacities for
  the counterfactual), giving the per-``(i, j, k)`` **CE regret**; its
  positive part shrinking to ~0 certifies approach to the CE set.
* **Exact LP.**  For a small :class:`~repro.game.strategic_game.TabularGame`
  the CE set is a polytope; :func:`solve_ce_lp` optimizes a linear
  objective (welfare by default) over it with :func:`scipy.optimize.linprog`.
  Used to position RTHS welfare between worst and best CE in the analysis
  example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.game.repeated_game import Trajectory
from repro.game.strategic_game import NormalFormGame, Profile


@dataclass(frozen=True)
class CERegretReport:
    """Empirical CE regret of a trajectory.

    Attributes
    ----------
    regret:
        Array ``(N, H, H)``; entry ``[i, j, k]`` is the average gain player
        ``i`` would have obtained by playing ``k`` at every stage it played
        ``j`` (clipped below at 0 in :attr:`max_regret`).
    stages:
        Number of stages the average is taken over.
    """

    regret: np.ndarray
    stages: int

    @property
    def max_regret(self) -> float:
        """``max_{i,j,k} [regret]^+`` — distance-like score to the CE set."""
        return float(np.clip(self.regret, 0.0, None).max(initial=0.0))

    @property
    def per_player_max(self) -> np.ndarray:
        """Per-player maximum positive regret, shape ``(N,)``."""
        return np.clip(self.regret, 0.0, None).max(axis=(1, 2))

    @property
    def worst_triple(self) -> Tuple[int, int, int]:
        """The ``(player, played, alternative)`` triple attaining the max."""
        flat = int(np.argmax(np.clip(self.regret, 0.0, None)))
        return tuple(int(v) for v in np.unravel_index(flat, self.regret.shape))  # type: ignore[return-value]


def empirical_ce_regret_report(
    trajectory: Trajectory, u_max: Optional[float] = None
) -> CERegretReport:
    """Evaluate Eq. (3-1) on recorded play.

    For each stage the counterfactual utility of switching to helper ``k``
    is ``C_k / (n_k + 1)`` (joining the existing crowd) and staying is the
    realized rate; the report averages the differences over all stages,
    split by the action actually played.

    Parameters
    ----------
    trajectory:
        A recorded run of the repeated helper-selection game.
    u_max:
        Optional normalizer so regrets are comparable across capacity
        scales; pass the same value the learners used.
    """
    t, n = trajectory.actions.shape
    h = trajectory.loads.shape[1]
    if t == 0:
        raise ValueError("trajectory has no stages")
    scale = 1.0 if u_max is None else float(u_max)
    if scale <= 0:
        raise ValueError("u_max must be positive")
    regret = np.zeros((n, h, h))
    peer_index = np.arange(n)
    for stage in range(t):
        caps = trajectory.capacities[stage]
        loads = trajectory.loads[stage]
        actions = trajectory.actions[stage]
        realized = trajectory.utilities[stage]
        # Counterfactual: join helper k on top of its current crowd.
        deviation = caps / (loads + 1.0)
        diff = deviation[None, :] - realized[:, None]  # (N, H)
        diff[peer_index, actions] = 0.0
        regret[peer_index, actions, :] += diff
    regret /= t * scale
    return CERegretReport(regret=regret, stages=t)


def empirical_ce_regret(
    trajectory: Trajectory, u_max: Optional[float] = None
) -> float:
    """Scalar shortcut: the max positive empirical CE regret."""
    return empirical_ce_regret_report(trajectory, u_max=u_max).max_regret


def is_epsilon_correlated_equilibrium(
    trajectory: Trajectory, epsilon: float, u_max: Optional[float] = None
) -> bool:
    """True iff the empirical play is an ``epsilon``-CE (Eq. 3-1 within eps)."""
    if epsilon < 0:
        raise ValueError("epsilon must be >= 0")
    return empirical_ce_regret(trajectory, u_max=u_max) <= epsilon


# ----------------------------------------------------------------------
# Exact CE polytope on small tabular games
# ----------------------------------------------------------------------


def solve_ce_lp(
    game: NormalFormGame,
    objective: str = "welfare",
    profile_limit: int = 200000,
) -> Tuple[Dict[Profile, float], float]:
    """Optimize a linear objective over the CE polytope of a finite game.

    Parameters
    ----------
    game:
        Any finite game; its profile space is enumerated, so keep it small
        (``profile_limit`` guards against blow-ups).
    objective:
        ``"welfare"`` maximizes total utility; ``"min_welfare"`` minimizes
        it (the worst CE); ``"uniform"`` just finds a feasible CE closest
        to maximizing entropy proxy (uniform-objective feasibility).

    Returns
    -------
    (distribution, value):
        The optimizing joint distribution as ``{profile: probability}``
        (zero-probability profiles omitted) and the objective value
        (always reported as total welfare of the returned distribution).
    """
    profiles = list(game.all_profiles())
    if len(profiles) > profile_limit:
        raise ValueError(
            f"profile space has {len(profiles)} entries, over limit {profile_limit}"
        )
    index = {p: i for i, p in enumerate(profiles)}
    num_vars = len(profiles)
    welfare = np.array([game.welfare(p) for p in profiles])

    # CE constraints: one row per (player, played j, alternative k != j).
    rows = []
    for i in range(game.num_players):
        actions = game.num_actions(i)
        for j in range(actions):
            for k in range(actions):
                if k == j:
                    continue
                row = np.zeros(num_vars)
                touched = False
                for p in profiles:
                    if p[i] != j:
                        continue
                    gain = game.utility(i, game.deviate(p, i, k)) - game.utility(i, p)
                    if gain != 0.0:
                        row[index[p]] = gain
                        touched = True
                if touched:
                    rows.append(row)
    a_ub = np.vstack(rows) if rows else None
    b_ub = np.zeros(len(rows)) if rows else None
    a_eq = np.ones((1, num_vars))
    b_eq = np.array([1.0])

    if objective == "welfare":
        c = -welfare
    elif objective == "min_welfare":
        c = welfare
    elif objective == "uniform":
        c = np.zeros(num_vars)
    else:
        raise ValueError(f"unknown objective {objective!r}")

    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0, None)] * num_vars,
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"CE LP failed: {result.message}")
    z = np.clip(result.x, 0.0, None)
    z /= z.sum()
    dist = {
        profiles[i]: float(z[i]) for i in range(num_vars) if z[i] > 1e-12
    }
    value = float(welfare @ z)
    return dist, value


def ce_welfare_bounds(game: NormalFormGame) -> Tuple[float, float]:
    """(worst, best) social welfare over the CE polytope of a small game."""
    _, worst = solve_ce_lp(game, objective="min_welfare")
    _, best = solve_ce_lp(game, objective="welfare")
    return worst, best
