"""Bandit (proxy) regret estimation — paper Eqs. (3-2) through (3-6).

A peer only observes the utility of the helper it actually used, so the
regret "for not having played ``k`` instead of ``j``" must be estimated from
on-policy data.  Following Hart & Mas-Colell's reinforcement procedure [20]
with the paper's recency-weighted modification, the proxy regret is

    Q^n(j, k) = [ Uhat^n(k)  -  Ubar^n(j) ]^+                       (3-3)

    Uhat^n(k) = sum_{tau<=n, a^tau=k} w_tau * (p^tau(j)/p^tau(k)) * u^tau
    Ubar^n(j) = sum_{tau<=n, a^tau=j} w_tau * u^tau

with exponential weights ``w_tau = eps * (1-eps)^{n-tau}`` (uniform weights
``1/n`` recover the original procedure).  The importance ratio
``p(j)/p(k)`` makes the time spent on each action comparable (Sec. III-B).

Two interchangeable implementations:

* :class:`ExactProxyRegret` stores the full private history and evaluates
  the sums verbatim each stage — the literal reading of Algorithm 1
  (O(n) memory, O(n·H) per stage).  Used for validation and small runs.
* :class:`RecursiveProxyRegret` maintains the matrix ``T`` of Eq. (3-4) via
  the rank-one recursion of Eq. (3-5) — Algorithm 2's trick — in O(H^2)
  per stage and O(H^2) memory.

Faithfulness note: as printed, Eq. (3-5) lacks the ``(1-eps)`` forgetting
factor, while Eq. (3-3) is an exponentially weighted sum.  We include the
factor so the recursion equals the declarative sums exactly; the
equivalence is asserted by ``tests/core/test_proxy_regret.py``.  With the
normalized accumulator ``S = eps * T`` the recursion reads

    S^n = (1 - eps_n) * S^{n-1} + eps_n * (u^n / p^n(a^n)) * P^n (x) e_{a^n}

and ``Q^n(j,k) = (S^n(j,k) - S^n(j,j))^+`` — the paper's Eq. (3-6) with the
``eps`` factor absorbed.  Time-varying schedules (see
:mod:`repro.core.schedules`) then cover regret matching too.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.schedules import StepSchedule, constant_step
from repro.util.validation import require_positive_int, require_probability_vector


class ExactProxyRegret:
    """History-based proxy regret (Algorithm 1 sums, computed literally).

    Parameters
    ----------
    num_actions:
        Size of the action set ``H``.
    schedule:
        Step-size schedule; the default constant 0.05 is the tracking
        setting.  Stage weights are built from the schedule as
        ``w_tau = eps_tau * prod_{s>tau} (1 - eps_s)`` which reduces to the
        paper's ``eps (1-eps)^{n-tau}`` for constant steps.
    """

    def __init__(
        self,
        num_actions: int,
        schedule: Optional[StepSchedule] = None,
    ) -> None:
        self._m = require_positive_int(num_actions, "num_actions")
        self._schedule = schedule if schedule is not None else constant_step(0.05)
        self._actions: List[int] = []
        self._utilities: List[float] = []
        self._probabilities: List[np.ndarray] = []

    @property
    def num_actions(self) -> int:
        """Action-set size ``H``."""
        return self._m

    @property
    def num_stages(self) -> int:
        """Number of recorded stages ``n``."""
        return len(self._actions)

    def update(self, action: int, utility: float, probabilities: np.ndarray) -> None:
        """Record one stage: the action played, its utility, and the mixed
        strategy it was drawn from."""
        if not 0 <= action < self._m:
            raise ValueError(f"action {action} out of range 0..{self._m - 1}")
        probs = require_probability_vector(probabilities, "probabilities")
        if probs.size != self._m:
            raise ValueError("probabilities must have one entry per action")
        self._actions.append(int(action))
        self._utilities.append(float(utility))
        self._probabilities.append(probs.copy())

    def _stage_weights(self) -> np.ndarray:
        """``w_tau`` for tau = 1..n under the schedule (tau is 1-based)."""
        n = self.num_stages
        eps = np.array([self._schedule(t) for t in range(1, n + 1)])
        # w_tau = eps_tau * prod_{s=tau+1..n} (1 - eps_s)
        survival = np.concatenate([np.cumprod((1.0 - eps)[::-1])[::-1][1:], [1.0]])
        return eps * survival

    def regret_matrix(self) -> np.ndarray:
        """Full proxy-regret matrix ``Q^n`` of shape ``(H, H)``.

        ``Q[j, k]`` is the (clipped) estimated gain from having played ``k``
        whenever ``j`` was played.  The diagonal is zero.
        """
        q = np.zeros((self._m, self._m))
        n = self.num_stages
        if n == 0:
            return q
        weights = self._stage_weights()
        actions = np.asarray(self._actions)
        utils = np.asarray(self._utilities)
        probs = np.stack(self._probabilities)  # (n, H)
        for j in range(self._m):
            played_j = actions == j
            ubar_j = float((weights[played_j] * utils[played_j]).sum())
            for k in range(self._m):
                if k == j:
                    continue
                played_k = actions == k
                ratio = probs[played_k, j] / probs[played_k, k]
                uhat_k = float(
                    (weights[played_k] * ratio * utils[played_k]).sum()
                )
                q[j, k] = max(0.0, uhat_k - ubar_j)
        return q

    def regret_row(self, action: int) -> np.ndarray:
        """Row ``Q^n(action, ·)`` — all the probability update needs."""
        return self.regret_matrix()[action]

    def max_regret(self) -> float:
        """``max_{j,k} Q^n(j,k)`` — the scalar regret tracked in Fig. 1."""
        return float(self.regret_matrix().max(initial=0.0))


class RecursiveProxyRegret:
    """Rank-one recursive proxy regret — Algorithm 2's ``T`` matrix.

    Maintains the normalized accumulator ``S`` (see module docstring);
    :meth:`regret_matrix` returns ``Q`` with entries
    ``(S(j,k) - S(j,j))^+`` and a zero diagonal.
    """

    def __init__(
        self,
        num_actions: int,
        schedule: Optional[StepSchedule] = None,
    ) -> None:
        self._m = require_positive_int(num_actions, "num_actions")
        self._schedule = schedule if schedule is not None else constant_step(0.05)
        self._s = np.zeros((self._m, self._m))
        self._n = 0

    @property
    def num_actions(self) -> int:
        """Action-set size ``H``."""
        return self._m

    @property
    def num_stages(self) -> int:
        """Number of recorded stages ``n``."""
        return self._n

    @property
    def accumulator(self) -> np.ndarray:
        """The normalized ``S`` matrix (``eps * T`` for constant steps)."""
        return self._s.copy()

    def update(self, action: int, utility: float, probabilities: np.ndarray) -> None:
        """Apply Eq. (3-5): decay ``S`` and add the rank-one increment.

        The increment touches only column ``action``:
        ``S[j, action] += eps_n * (u / p(action)) * p(j)``.
        """
        if not 0 <= action < self._m:
            raise ValueError(f"action {action} out of range 0..{self._m - 1}")
        probs = require_probability_vector(probabilities, "probabilities")
        if probs.size != self._m:
            raise ValueError("probabilities must have one entry per action")
        if probs[action] <= 0:
            raise ValueError(
                f"played action {action} has zero probability; importance "
                "weighting is undefined (ensure delta-exploration > 0)"
            )
        self._n += 1
        eps = self._schedule(self._n)
        self._s *= 1.0 - eps
        self._s[:, action] += eps * (utility / probs[action]) * probs
        return None

    def regret_matrix(self) -> np.ndarray:
        """Proxy-regret matrix ``Q`` per Eq. (3-6) (diagonal zero)."""
        diag = np.diag(self._s)
        q = np.clip(self._s - diag[:, None], 0.0, None)
        np.fill_diagonal(q, 0.0)
        return q

    def regret_row(self, action: int) -> np.ndarray:
        """Row ``Q^n(action, ·)`` in O(H)."""
        row = np.clip(self._s[action] - self._s[action, action], 0.0, None)
        row[action] = 0.0
        return row

    def max_regret(self) -> float:
        """``max_{j,k} Q^n(j,k)``."""
        return float(self.regret_matrix().max(initial=0.0))
