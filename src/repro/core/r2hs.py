"""R2HS — Recursive Regret-Tracking Helper Selection (paper Algorithm 2).

Identical decisions to :class:`repro.core.rths.RTHSLearner` (asserted to
floating-point tolerance in the tests), but the proxy regrets are carried
by the rank-one recursion on the ``T`` matrix (Eqs. 3-4/3-5/3-6): O(H^2)
time and memory per stage regardless of the horizon.  This is the form to
deploy and the one the vectorized population
(:class:`repro.core.population.LearnerPopulation`) replicates for
large-scale runs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.proxy_regret import RecursiveProxyRegret
from repro.core.regret_learner import RegretLearner
from repro.core.schedules import StepSchedule, constant_step
from repro.util.rng import Seedish


class R2HSLearner(RegretLearner):
    """Algorithm 2: recursive regret tracking.

    Parameters
    ----------
    num_actions:
        Number of helpers ``H``.
    epsilon:
        Constant step size of the tracking recursion (paper's ``eps``).
    mu, delta, u_max:
        As in :class:`repro.core.regret_learner.RegretLearner`.
    schedule:
        Optional custom step schedule overriding ``epsilon`` (used to build
        the regret-matching ancestor and stochastic-approximation variants).
    """

    def __init__(
        self,
        num_actions: int,
        rng: Seedish = None,
        epsilon: float = 0.05,
        mu: Optional[float] = None,
        delta: float = 0.1,
        u_max: float = 1.0,
        schedule: Optional[StepSchedule] = None,
    ) -> None:
        if schedule is None:
            schedule = constant_step(epsilon)
        estimator = RecursiveProxyRegret(num_actions, schedule=schedule)
        super().__init__(
            num_actions,
            estimator,
            rng=rng,
            mu=mu,
            delta=delta,
            u_max=u_max,
        )
        self._epsilon = float(epsilon)

    @property
    def epsilon(self) -> float:
        """The constant step size (ignored if a custom schedule was given)."""
        return self._epsilon

    @property
    def accumulator(self) -> np.ndarray:
        """The normalized ``S = eps * T`` matrix of the recursion."""
        return self._estimator.accumulator  # type: ignore[attr-defined]
