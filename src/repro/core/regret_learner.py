"""Shared machinery for regret-driven learners (RTHS / R2HS / matching).

A regret learner is the composition of three pieces, all from this package:

1. a **proxy regret estimator** (exact or recursive) fed with
   ``(action, normalized utility, play probabilities)`` each stage;
2. the **probability update** of Algorithms 1/2;
3. a **sampler** drawing the next action from the current mixed strategy.

Utilities are normalized by ``u_max`` before entering the estimator so the
regret scale — and hence ``mu`` — is independent of whether rates are
expressed in kbit/s or Mbit/s.
"""

from __future__ import annotations

from typing import Optional, Protocol

import numpy as np

from repro.core.probability import default_mu, update_play_probabilities
from repro.game.interfaces import LearnerBase
from repro.util.rng import Seedish, as_generator
from repro.util.validation import require_in_closed_unit_interval, require_positive


class ProxyRegretEstimator(Protocol):
    """Structural type implemented by Exact/RecursiveProxyRegret."""

    def update(self, action: int, utility: float, probabilities: np.ndarray) -> None: ...
    def regret_row(self, action: int) -> np.ndarray: ...
    def regret_matrix(self) -> np.ndarray: ...
    def max_regret(self) -> float: ...


class RegretLearner(LearnerBase):
    """A peer strategy driven by proxy regrets.

    Parameters
    ----------
    num_actions:
        Number of helpers ``H`` (must be >= 2 for the update to be defined).
    estimator:
        Proxy-regret estimator, already constructed with the desired
        step-size schedule.
    rng:
        Seed or generator for action sampling.
    mu:
        Normalization constant of the probability update, in *normalized*
        utility units; defaults to ``2 (H - 1)`` (see
        :func:`repro.core.probability.default_mu`).
    delta:
        Exploration weight; must be strictly positive so importance ratios
        stay bounded (paper Algorithm 1 uses a fixed small ``delta``).
    u_max:
        Utility normalizer: observed utilities are divided by this before
        entering the estimator.  For the paper's setting the natural choice
        is the maximum helper capacity (900 kbit/s).
    """

    def __init__(
        self,
        num_actions: int,
        estimator: ProxyRegretEstimator,
        rng: Seedish = None,
        mu: Optional[float] = None,
        delta: float = 0.1,
        u_max: float = 1.0,
    ) -> None:
        super().__init__(num_actions, as_generator(rng))
        if num_actions < 2:
            raise ValueError("regret learners need at least two actions")
        require_in_closed_unit_interval(delta, "delta")
        if delta <= 0 or delta >= 1:
            raise ValueError("delta must lie strictly in (0, 1)")
        require_positive(u_max, "u_max")
        self._estimator = estimator
        self._mu = require_positive(
            mu if mu is not None else default_mu(num_actions), "mu"
        )
        self._delta = float(delta)
        self._u_max = float(u_max)
        # Stage 0: uniform initial mixed strategy (paper: p_i^0 = 1/|H|).
        self._probs = np.full(num_actions, 1.0 / num_actions)
        self._last_played_row = np.zeros(num_actions)

    @property
    def mu(self) -> float:
        """Normalization constant of the probability update."""
        return self._mu

    @property
    def delta(self) -> float:
        """Exploration weight."""
        return self._delta

    @property
    def u_max(self) -> float:
        """Utility normalizer."""
        return self._u_max

    @property
    def estimator(self) -> ProxyRegretEstimator:
        """The underlying proxy-regret estimator."""
        return self._estimator

    def act(self) -> int:
        """Sample the next action from the current mixed strategy."""
        return int(self._rng.choice(self.num_actions, p=self._probs))

    def observe(self, action: int, utility: float) -> None:
        """Feed the realized utility; update regrets and play probabilities."""
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action {action} out of range")
        if not np.isfinite(utility):
            raise ValueError(f"utility must be finite, got {utility!r}")
        normalized = utility / self._u_max
        self._estimator.update(action, normalized, self._probs)
        row = self._estimator.regret_row(action)
        self._last_played_row = np.asarray(row, dtype=float).copy()
        self._probs = update_play_probabilities(
            row, action, self._mu, self._delta
        )
        self._advance_stage()

    def strategy(self) -> np.ndarray:
        """The mixed strategy the next action will be drawn from."""
        return self._probs.copy()

    def max_regret(self) -> float:
        """Largest pairwise proxy regret over the full matrix (normalized).

        Note: rows of rarely-played actions are noisy by construction
        (importance weights divide by small probabilities); the convergence
        diagnostic plotted in paper Fig. 1 is :meth:`played_regret`.
        """
        return self._estimator.max_regret()

    def played_regret(self) -> float:
        """Max regret at the last played action, ``max_k Q(a^n, k)``.

        The row that drives the probability update; decays to the tracking
        noise floor as play converges (the Fig. 1 per-player scalar).
        """
        return float(self._last_played_row.max(initial=0.0))

    def regret_matrix(self) -> np.ndarray:
        """Full proxy-regret matrix ``Q^n`` (normalized units)."""
        return self._estimator.regret_matrix()
