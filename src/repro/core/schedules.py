"""Step-size schedules for the regret recursions.

The regret estimate is maintained as the stochastic-approximation recursion

    S^n = (1 - eps_n) * S^{n-1} + eps_n * increment_n

(cf. paper Sec. II and refs. [7][8]).  The schedule ``eps_n`` determines the
algorithm's memory:

* constant ``eps`` — exponential recency weighting; this is **regret
  tracking**, the paper's choice for non-stationary helper bandwidth.  The
  weight of the stage-``tau`` increment in ``S^n`` is exactly the paper's
  ``eps * (1 - eps)^{n - tau}``.
* ``eps_n = 1/n`` — uniform averaging over all history; this recovers
  classic **regret matching** (Hart & Mas-Colell), rigid under drift.
* ``eps_n = c / n^rho`` with ``rho`` in (0.5, 1] — the usual
  stochastic-approximation middle ground.

A schedule is a callable mapping the 1-based stage index ``n`` to a step in
``(0, 1]``.  The factories below return small callable *objects* rather
than closures so schedules pickle — learner state crosses process
boundaries (sharded-run worker checkpoints, spawn-method sweeps).
"""

from __future__ import annotations

from typing import Callable

from repro.util.validation import require_in_closed_unit_interval, require_positive

StepSchedule = Callable[[int], float]


class _ConstantStep:
    """Constant ``eps_n = eps`` (picklable callable)."""

    __slots__ = ("constant_value",)

    def __init__(self, eps: float) -> None:
        # ``constant_value`` is the marker vectorized consumers
        # (LearnerPopulation) read to skip per-slot schedule evaluation
        # in their hot loop.
        self.constant_value = eps

    def __call__(self, n: int) -> float:
        return self.constant_value

    @property
    def __name__(self) -> str:
        return f"constant_step({self.constant_value})"

    def __repr__(self) -> str:
        return self.__name__


class _HarmonicStep:
    """``eps_n = 1/n`` (picklable callable)."""

    __slots__ = ()
    __name__ = "harmonic_step"

    def __call__(self, n: int) -> float:
        if n < 1:
            raise ValueError(f"stage index must be >= 1, got {n}")
        return 1.0 / n

    def __repr__(self) -> str:
        return self.__name__


class _PolynomialStep:
    """``eps_n = min(1, scale / n**exponent)`` (picklable callable)."""

    __slots__ = ("exponent", "scale")

    def __init__(self, exponent: float, scale: float) -> None:
        self.exponent = exponent
        self.scale = scale

    def __call__(self, n: int) -> float:
        if n < 1:
            raise ValueError(f"stage index must be >= 1, got {n}")
        return min(1.0, self.scale / float(n) ** self.exponent)

    @property
    def __name__(self) -> str:
        return f"polynomial_step({self.exponent}, {self.scale})"

    def __repr__(self) -> str:
        return self.__name__


def constant_step(eps: float) -> StepSchedule:
    """Constant step size: regret *tracking* (the paper's RTHS/R2HS)."""
    eps = require_in_closed_unit_interval(eps, "eps")
    if eps == 0:
        raise ValueError("eps must be strictly positive")
    return _ConstantStep(eps)


def harmonic_step() -> StepSchedule:
    """``eps_n = 1/n``: uniform averaging, i.e. classic regret matching."""
    return _HarmonicStep()


def polynomial_step(exponent: float = 0.75, scale: float = 1.0) -> StepSchedule:
    """``eps_n = min(1, scale / n**exponent)`` — decaying but slower than 1/n."""
    require_positive(exponent, "exponent")
    require_positive(scale, "scale")
    return _PolynomialStep(exponent, scale)
