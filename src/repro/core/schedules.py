"""Step-size schedules for the regret recursions.

The regret estimate is maintained as the stochastic-approximation recursion

    S^n = (1 - eps_n) * S^{n-1} + eps_n * increment_n

(cf. paper Sec. II and refs. [7][8]).  The schedule ``eps_n`` determines the
algorithm's memory:

* constant ``eps`` — exponential recency weighting; this is **regret
  tracking**, the paper's choice for non-stationary helper bandwidth.  The
  weight of the stage-``tau`` increment in ``S^n`` is exactly the paper's
  ``eps * (1 - eps)^{n - tau}``.
* ``eps_n = 1/n`` — uniform averaging over all history; this recovers
  classic **regret matching** (Hart & Mas-Colell), rigid under drift.
* ``eps_n = c / n^rho`` with ``rho`` in (0.5, 1] — the usual
  stochastic-approximation middle ground.

A schedule is a callable mapping the 1-based stage index ``n`` to a step in
``(0, 1]``.
"""

from __future__ import annotations

from typing import Callable

from repro.util.validation import require_in_closed_unit_interval, require_positive

StepSchedule = Callable[[int], float]


def constant_step(eps: float) -> StepSchedule:
    """Constant step size: regret *tracking* (the paper's RTHS/R2HS)."""
    eps = require_in_closed_unit_interval(eps, "eps")
    if eps == 0:
        raise ValueError("eps must be strictly positive")

    def schedule(n: int) -> float:
        return eps

    schedule.__name__ = f"constant_step({eps})"
    # Marker consumed by vectorized consumers (LearnerPopulation) to skip
    # per-slot schedule evaluation in their hot loop.
    schedule.constant_value = eps  # type: ignore[attr-defined]
    return schedule


def harmonic_step() -> StepSchedule:
    """``eps_n = 1/n``: uniform averaging, i.e. classic regret matching."""

    def schedule(n: int) -> float:
        if n < 1:
            raise ValueError(f"stage index must be >= 1, got {n}")
        return 1.0 / n

    schedule.__name__ = "harmonic_step"
    return schedule


def polynomial_step(exponent: float = 0.75, scale: float = 1.0) -> StepSchedule:
    """``eps_n = min(1, scale / n**exponent)`` — decaying but slower than 1/n."""
    require_positive(exponent, "exponent")
    require_positive(scale, "scale")

    def schedule(n: int) -> float:
        if n < 1:
            raise ValueError(f"stage index must be >= 1, got {n}")
        return min(1.0, scale / float(n) ** exponent)

    schedule.__name__ = f"polynomial_step({exponent}, {scale})"
    return schedule
