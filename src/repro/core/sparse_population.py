"""Sparse top-k population of regret-tracking learners.

:class:`~repro.core.population.LearnerPopulation` carries the full
``(N, H, H)`` proxy-regret tensor — the last memory wall for single-cell
giant runs: at ``H = 2000`` helpers one float32 peer costs 16 MB, so
``N = 20 000`` peers would need ~320 GB *per channel*.  Regret matching
concentrates probability mass on a handful of helper arms per peer (the
paper's convergence to the correlated-equilibrium set), which makes the
tensor effectively sparse: almost every row and column of a peer's ``S``
belongs to an arm the peer no longer plays and whose entries have decayed
to the exploration floor.

:class:`TopKPopulation` exploits that structure.  Each peer tracks an
*exact* ``(k, k)`` block of the recursion restricted to its ``k`` tracked
helper arms (CSR-style ``(N, k)`` index + value blocks), and every
untracked arm is represented by the **aggregated tail bucket** — a closed
form, because an arm with no tracked regret receives exactly the
exploration probability ``delta / H`` from the probability update, so the
whole tail carries ``(H - k) * delta / H`` of mass without per-arm
storage.

**Why the block stays exact.**  The recursive update (Eq. 3-5) increments
only *column* ``a`` of ``S`` when ``a`` is played; every other entry just
decays.  So information about an arm arrives exclusively while it is
being played — the moment a peer plays an untracked arm, that arm is
**promoted** into the tracked set (evicting the tracked arm with the
least probability mass, whose row/column have decayed to the floor), and
from then on its regret accrues exactly as in the dense recursion.  The
only approximation is the discarded history of evicted arms, which the
per-peer ``tail_regret`` diagnostic upper-bounds.

**Periodic re-selection.**  Every ``reselect_every`` stages a slot
re-selects its tracked set against the bank-wide play popularity (an
EWMA over observed actions): the globally hottest arm the slot does not
track yet replaces the slot's weakest tracked arm, *provided* that arm
sits at the exploration floor (so the swap moves no probability mass and
discards no regret).  This pre-warms popular arms — their regret history
starts accruing before the peer's own exploration finds them — without
ever perturbing the current strategy.

With ``k >= H`` every arm is tracked, no promotion or re-selection can
trigger, and the class performs the *bit-identical* sequence of
floating-point operations as :class:`LearnerPopulation` (asserted
trace-for-trace in ``tests/runtime/test_topk_bank.py``), so the sparse
representation is a pure memory optimization at small ``H`` and a
controlled approximation at large ``H``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.probability import default_mu
from repro.core.schedules import StepSchedule, constant_step
from repro.util.rng import Seedish, as_generator
from repro.util.validation import require_positive, require_positive_int

# Lazy-decay renorm floors, the observe blocking rule and the scratch /
# step-table machinery are shared with the dense kernel: the two
# recursions must renormalize and block at the same points to stay
# bit-identical at k >= H, so there is exactly one source of truth.
from repro.core.population import (
    _SCALE_FLOOR,
    _SCALE_FLOOR32,
    _EpsTable,
    _Scratch,
    _observe_block_rows,
)

#: Decay of the bank-wide play-popularity EWMA driving re-selection.
_PLAY_EWMA_DECAY = 0.05

#: How many globally-hot candidate arms a re-selection pass considers.
_RESELECT_CANDIDATES = 8


class TopKPopulation:
    """``N`` regret learners tracking exact ``(k, k)`` regret blocks.

    Drop-in slot-API replacement for
    :class:`~repro.core.population.LearnerPopulation` (``act_slots`` /
    ``observe_slots`` / ``reset_slots`` / ``ensure_capacity``), storing
    ``O(N * k^2)`` instead of ``O(N * H^2)``.

    Parameters
    ----------
    num_peers, num_helpers:
        Population and action-set sizes.
    k:
        Tracked arms per peer; clamped to ``num_helpers``.  At
        ``k >= num_helpers`` the dynamics are bit-identical to the dense
        population.
    epsilon, mu, delta, u_max, rng, schedule, dtype:
        As in :class:`~repro.core.population.LearnerPopulation`.
    reselect_every:
        Period (in per-slot stages) of the popularity-driven tracked-set
        re-selection; ``0`` disables it (promotion on play still runs —
        it is required for correctness, not a policy).
    num_channel_groups:
        Number of independent popularity domains sharing this population.
        The play-popularity EWMA that drives re-selection is kept *per
        group*, and each slot belongs to exactly one group (assigned with
        :meth:`set_slot_groups`; default group 0).  The channel-grouped
        engine (:mod:`repro.runtime.grouped_bank`) hosts every channel of
        one arm count in a single population and maps each channel to its
        own group, so a slot's re-selection sees only its own channel's
        play popularity — exactly as if the channel had a private bank.
        With the default of one group the behaviour (and the arithmetic)
        is identical to the original single-EWMA population.
    """

    def __init__(
        self,
        num_peers: int,
        num_helpers: int,
        k: int = 32,
        epsilon: float = 0.05,
        mu: Optional[float] = None,
        delta: float = 0.1,
        u_max: float = 1.0,
        rng: Seedish = None,
        schedule: Optional[StepSchedule] = None,
        dtype=np.float64,
        reselect_every: int = 32,
        num_channel_groups: int = 1,
    ) -> None:
        self._num_groups = require_positive_int(
            num_channel_groups, "num_channel_groups"
        )
        self._n = require_positive_int(num_peers, "num_peers")
        self._h = require_positive_int(num_helpers, "num_helpers")
        if self._h < 2:
            raise ValueError("need at least two helpers")
        if int(k) < 2:
            raise ValueError("k must be >= 2 (the action set must be non-degenerate)")
        self._k = min(int(k), self._h)
        if not 0 < delta < 1:
            raise ValueError("delta must lie strictly in (0, 1)")
        if reselect_every < 0:
            raise ValueError("reselect_every must be >= 0")
        self._reselect_every = int(reselect_every)
        self._schedule = schedule if schedule is not None else constant_step(epsilon)
        self._constant_eps: Optional[float] = getattr(
            self._schedule, "constant_value", None
        )
        self._eps_table = _EpsTable(self._schedule)
        self._mu = require_positive(
            mu if mu is not None else default_mu(num_helpers), "mu"
        )
        self._delta = float(delta)
        self._u_max = require_positive(u_max, "u_max")
        self._rng = as_generator(rng)
        self._dtype = np.dtype(dtype)
        if self._dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(
                f"dtype must be float32 or float64, got {self._dtype}"
            )
        self._scale_floor = (
            _SCALE_FLOOR32 if self._dtype == np.dtype(np.float32) else _SCALE_FLOOR
        )
        n, kk = self._n, self._k
        self._tail_count = self._h - kk
        # Tail bucket probability mass after an observe is the closed form
        # tail_count * delta / H; before a slot's first observe it is the
        # uniform (H - k) / H.
        self._tail_mass = self._tail_count * self._delta / self._h
        # Tracked-arm ids, per-row sorted ascending (CSR-style index block).
        self._ids = np.tile(np.arange(kk, dtype=np.int32), (n, 1))
        # Transposed block exactly like the dense kernel: _s[i, c, r] holds
        # S_i(row=ids[i, r], col=ids[i, c]) — the played column is the
        # contiguous row _s[i, a_loc, :].
        self._s = np.zeros((n, kk, kk), dtype=self._dtype)
        self._scale = np.ones(n)
        self._probs = np.full((n, kk), 1.0 / self._h, dtype=self._dtype)
        self._tail_prob = np.full(n, self._tail_count / self._h)
        self._stage = 0
        self._stages = np.zeros(n, dtype=np.int64)
        self._peer_index = np.arange(n)
        self._last_played_regrets = np.zeros((n, kk), dtype=self._dtype)
        # Maintained tracked-arm CDF (see LearnerPopulation): row i always
        # holds cumsum(_probs[i]); refreshed by every writer of _probs.
        self._cdf = np.cumsum(self._probs, axis=1)
        self._uniform_cdf = np.cumsum(np.full(kk, 1.0 / self._h, dtype=self._dtype))
        self._col_offsets = np.arange(kk, dtype=np.intp) * kk
        self._scratch = _Scratch()
        # Aggregated tail bucket: regret mass discarded by evictions
        # (absolute units) — an upper bound on the per-peer approximation.
        self._tail_regret = np.zeros(n)
        self._play_ewma = np.zeros((self._num_groups, self._h))
        self._slot_group = np.zeros(n, dtype=np.int32)
        self._promotions = 0
        self._reselections = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_peers(self) -> int:
        """Population size ``N`` (the number of slots)."""
        return self._n

    @property
    def num_helpers(self) -> int:
        """Number of helpers ``H``."""
        return self._h

    @property
    def k(self) -> int:
        """Tracked arms per peer (clamped to ``H``)."""
        return self._k

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the regret blocks and strategies."""
        return self._dtype

    @property
    def stage(self) -> int:
        """Whole-population stages completed (``observe_all`` calls)."""
        return self._stage

    @property
    def promotions(self) -> int:
        """Untracked plays promoted into tracked sets so far."""
        return self._promotions

    @property
    def reselections(self) -> int:
        """Popularity-driven tracked-set swaps performed so far."""
        return self._reselections

    @property
    def num_channel_groups(self) -> int:
        """Independent popularity domains (per-group play EWMAs)."""
        return self._num_groups

    def slot_groups(self) -> np.ndarray:
        """Per-slot channel-group ids, shape ``(N,)`` (copy)."""
        return self._slot_group.copy()

    def play_popularity(self) -> np.ndarray:
        """Per-group play-popularity EWMAs, shape ``(G, H)`` (copy)."""
        return self._play_ewma.copy()

    def nbytes(self) -> int:
        """Bytes held by the per-peer sparse state (blocks + indices)."""
        return (
            self._s.nbytes
            + self._ids.nbytes
            + self._probs.nbytes
            + self._tail_prob.nbytes
            + self._last_played_regrets.nbytes
            + self._tail_regret.nbytes
        )

    def slot_stages(self) -> np.ndarray:
        """Per-slot stage counters, shape ``(N,)`` (copy)."""
        return self._stages.copy()

    def tracked_arms(self) -> np.ndarray:
        """Tracked helper ids, shape ``(N, k)``, rows sorted (copy)."""
        return self._ids.copy()

    def tail_regret(self) -> np.ndarray:
        """Per-peer regret mass discarded by evictions, shape ``(N,)``."""
        return self._tail_regret.copy()

    def strategies(self) -> np.ndarray:
        """All mixed strategies densified to shape ``(N, H)``."""
        out = np.empty((self._n, self._h))
        if self._tail_count:
            out[:] = (self._tail_prob / self._tail_count)[:, None]
        np.put_along_axis(
            out, self._ids.astype(np.intp), self._probs.astype(np.float64), axis=1
        )
        return out

    def played_regrets(self) -> np.ndarray:
        """Tracked regret rows of the last played actions, ``(N, k)``."""
        return self._last_played_regrets.copy()

    def worst_player_regret(self) -> float:
        """``max_i max_k Q_i(a_i^n, k)`` over tracked arms (the Fig. 1
        quantity; untracked arms carry zero tracked regret by
        construction)."""
        if self._stage == 0 and not self._stages.any():
            return 0.0
        return float(self._last_played_regrets.max())

    # ------------------------------------------------------------------
    # Slot management (used by repro.runtime banks)
    # ------------------------------------------------------------------

    def ensure_capacity(self, capacity: int) -> None:
        """Grow the population to at least ``capacity`` slots."""
        if capacity <= self._n:
            return
        old = self._n
        extra = capacity - old
        kk = self._k
        self._ids = np.concatenate(
            [self._ids, np.tile(np.arange(kk, dtype=np.int32), (extra, 1))]
        )
        self._s = np.concatenate(
            [self._s, np.zeros((extra, kk, kk), dtype=self._dtype)]
        )
        self._scale = np.concatenate([self._scale, np.ones(extra)])
        self._probs = np.concatenate(
            [self._probs, np.full((extra, kk), 1.0 / self._h, dtype=self._dtype)]
        )
        self._tail_prob = np.concatenate(
            [self._tail_prob, np.full(extra, self._tail_count / self._h)]
        )
        self._stages = np.concatenate(
            [self._stages, np.zeros(extra, dtype=np.int64)]
        )
        self._last_played_regrets = np.concatenate(
            [
                self._last_played_regrets,
                np.zeros((extra, kk), dtype=self._dtype),
            ]
        )
        self._cdf = np.concatenate(
            [self._cdf, np.tile(self._uniform_cdf, (extra, 1))]
        )
        self._tail_regret = np.concatenate([self._tail_regret, np.zeros(extra)])
        self._slot_group = np.concatenate(
            [self._slot_group, np.zeros(extra, dtype=np.int32)]
        )
        self._n = int(capacity)
        self._peer_index = np.arange(self._n)

    def set_slot_groups(self, slots: np.ndarray, group: int) -> None:
        """Assign ``slots`` to popularity domain ``group``.

        Called by the channel-grouped bank when a row is (re)acquired for
        a channel, so re-selection reads that channel's EWMA.  No regret
        or strategy state is touched.
        """
        if not 0 <= int(group) < self._num_groups:
            raise ValueError(
                f"group must lie in [0, {self._num_groups}), got {group}"
            )
        self._slot_group[np.asarray(slots, dtype=np.intp)] = int(group)

    def reset_slots(self, slots: np.ndarray) -> None:
        """Reinitialize ``slots`` to the fresh-learner state.

        The tracked index block is rewound to the first ``k`` arms and the
        value block zeroed, so a recycled slot carries no stale indices or
        regret from its previous occupant.
        """
        slots = np.asarray(slots, dtype=np.intp)
        self._ids[slots] = np.arange(self._k, dtype=np.int32)
        self._s[slots] = 0.0
        self._scale[slots] = 1.0
        self._probs[slots] = 1.0 / self._h
        self._cdf[slots] = self._uniform_cdf
        self._tail_prob[slots] = self._tail_count / self._h
        self._stages[slots] = 0
        self._last_played_regrets[slots] = 0.0
        self._tail_regret[slots] = 0.0
        self._slot_group[slots] = 0

    def act_slots(
        self, slots: np.ndarray, draws: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Sample one action per listed slot (one uniform draw per slot).

        The draw inverts the CDF over the tracked arms first; a draw
        landing in the tail bucket is re-used (rescaled) to pick one of
        the ``H - k`` untracked arms uniformly, so the per-slot RNG
        consumption matches the dense population exactly.  ``draws``
        optionally supplies the uniforms externally (the channel-grouped
        engine's per-channel-stream hook, as in
        :meth:`~repro.core.population.LearnerPopulation.act_slots`).
        """
        slots = np.asarray(slots, dtype=np.intp)
        count = slots.shape[0]
        ws = self._scratch
        cdf = ws.rows("act_cdf", count, self._k, self._dtype)
        np.take(self._cdf, slots, axis=0, out=cdf)
        if draws is None:
            draws = self._rng.random(count)
        else:
            draws = np.asarray(draws, dtype=float)
            if draws.shape != (count,):
                raise ValueError("draws must supply one uniform per slot")
        below = ws.rows("act_below", count, self._k, np.bool_)
        np.less(cdf, draws[:, None], out=below)
        local = below.sum(axis=1)
        if self._tail_count == 0:
            local = np.minimum(local, self._k - 1)
            return self._ids[slots, local].astype(np.int64)
        actions = np.empty(slots.shape[0], dtype=np.int64)
        tracked = local < self._k
        t_idx = np.flatnonzero(tracked)
        if t_idx.size:
            actions[t_idx] = self._ids[slots[t_idx], local[t_idx]]
        u_idx = np.flatnonzero(~tracked)
        if u_idx.size:
            us = slots[u_idx]
            tail_prob = self._tail_prob[us]
            residual = draws[u_idx] - cdf[u_idx, -1]
            frac = residual / np.maximum(tail_prob, 1e-300)
            rank = np.minimum(
                (frac * self._tail_count).astype(np.int64), self._tail_count - 1
            )
            np.maximum(rank, 0, out=rank)
            # rank-th arm NOT in the (sorted) tracked row: classic skip
            # walk — each tracked id <= the running candidate shifts the
            # candidate up by one.
            g = rank
            tids = self._ids[us]
            for j in range(self._k):
                g = g + (tids[:, j] <= g)
            actions[u_idx] = g
        return actions

    def observe_slots(
        self, slots: np.ndarray, actions: np.ndarray, utilities: np.ndarray
    ) -> None:
        """Regret + probability update for the listed slots only.

        Plays of untracked arms promote those arms into the tracked set
        first (see the module docstring); the update itself is the dense
        recursion restricted to the tracked block.
        """
        slots = np.asarray(slots, dtype=np.intp)
        actions = np.asarray(actions, dtype=int)
        utilities = np.asarray(utilities, dtype=float)
        count = slots.shape[0]
        if actions.shape != (count,) or utilities.shape != (count,):
            raise ValueError("slots, actions and utilities must align")
        if count == 0:
            return
        if actions.min(initial=0) < 0 or actions.max(initial=0) >= self._h:
            raise ValueError("actions out of range")
        if self._reselect_every and self._tail_count:
            # Each group's EWMA decays once per observe it participates in
            # and absorbs only its own slots' plays — for a single group
            # this is exactly the original global update, and in the
            # grouped engine it matches the per-channel banks' private
            # EWMAs update-for-update.
            if self._num_groups == 1:
                self._play_ewma[0] *= 1.0 - _PLAY_EWMA_DECAY
                np.add.at(self._play_ewma[0], actions, _PLAY_EWMA_DECAY)
            else:
                groups = self._slot_group[slots]
                self._play_ewma[np.unique(groups)] *= 1.0 - _PLAY_EWMA_DECAY
                np.add.at(
                    self._play_ewma, (groups, actions), _PLAY_EWMA_DECAY
                )
        block = _observe_block_rows(self._k)
        if count > block:
            for start in range(0, count, block):
                stop = start + block
                self._observe_block(
                    slots[start:stop], actions[start:stop], utilities[start:stop]
                )
            return
        self._observe_block(slots, actions, utilities)

    # ------------------------------------------------------------------
    # Tracked-set maintenance
    # ------------------------------------------------------------------

    def _locate(self, slots: np.ndarray, actions: np.ndarray) -> np.ndarray:
        """Per-row insertion point of ``actions`` in the sorted id rows."""
        return (self._ids[slots] < actions[:, None]).sum(axis=1)

    def _permute_rows(self, slots: np.ndarray) -> None:
        """Re-sort ``slots``' id rows ascending, permuting probs + blocks."""
        order = np.argsort(self._ids[slots], axis=1, kind="stable")
        self._ids[slots] = np.take_along_axis(self._ids[slots], order, axis=1)
        self._probs[slots] = np.take_along_axis(self._probs[slots], order, axis=1)
        block = self._s[slots]
        block = np.take_along_axis(block, order[:, :, None], axis=1)
        block = np.take_along_axis(block, order[:, None, :], axis=2)
        self._s[slots] = block
        self._cdf[slots] = np.cumsum(self._probs[slots], axis=1)

    def _promote(self, slots: np.ndarray, arms: np.ndarray) -> None:
        """Swap ``arms`` (untracked, just played) into ``slots``' tracked
        sets, evicting each slot's least-probable tracked arm."""
        evict = np.asarray(self._probs[slots]).argmin(axis=1)
        # Fold the evicted arms' remaining regret mass into the tail
        # bucket diagnostic (column + row of the block, diagonal once).
        col_sum = self._s[slots, evict, :].sum(axis=1)
        row_sum = self._s[slots, :, evict].sum(axis=1)
        diag = self._s[slots, evict, evict]
        discarded = (col_sum + row_sum - diag) * self._scale[slots]
        self._tail_regret[slots] += np.maximum(discarded, 0.0)
        # The promoted arm enters with its true current probability — the
        # per-arm tail share — and a fresh row/column.
        arm_prob = self._tail_prob[slots] / max(self._tail_count, 1)
        self._ids[slots, evict] = arms.astype(np.int32)
        self._s[slots, evict, :] = 0.0
        self._s[slots, :, evict] = 0.0
        self._probs[slots, evict] = arm_prob.astype(self._dtype)
        self._permute_rows(slots)
        self._promotions += int(slots.shape[0])

    def _reselect(self, slots: np.ndarray) -> None:
        """Popularity-driven re-selection for ``slots``.

        Each slot swaps the hottest arm *of its own channel group* it
        does not track for its weakest tracked arm — only when that arm
        sits at the exploration floor ``delta / H`` (zero tracked
        regret), so the swap is probability-mass-preserving and discards
        no information.
        """
        if self._num_groups == 1:
            self._reselect_in(slots, self._play_ewma[0])
            return
        groups = self._slot_group[slots]
        for g in np.unique(groups):
            self._reselect_in(slots[groups == g], self._play_ewma[g])

    def _reselect_in(self, slots: np.ndarray, play_ewma: np.ndarray) -> None:
        """Re-selection of ``slots`` against one group's popularity EWMA."""
        m = min(_RESELECT_CANDIDATES, self._h)
        hot = np.argpartition(play_ewma, self._h - m)[self._h - m:]
        hot = hot[np.argsort(play_ewma[hot])[::-1]]
        hot = hot[play_ewma[hot] > 0.0]
        if not hot.size:
            return
        probs = self._probs[slots]
        weak = probs.argmin(axis=1)
        floor = self._delta / self._h
        swappable = probs[np.arange(slots.shape[0]), weak] <= floor * (1.0 + 1e-9)
        ids = self._ids[slots]
        chosen = np.full(slots.shape[0], -1, dtype=np.int64)
        for arm in hot:
            pos = np.minimum((ids < arm).sum(axis=1), self._k - 1)
            tracked = ids[np.arange(slots.shape[0]), pos] == arm
            take = (chosen < 0) & ~tracked
            chosen[take] = arm
        pick = np.flatnonzero(swappable & (chosen >= 0))
        if not pick.size:
            return
        ps = slots[pick]
        ev = weak[pick]
        self._ids[ps, ev] = chosen[pick].astype(np.int32)
        self._s[ps, ev, :] = 0.0
        self._s[ps, :, ev] = 0.0
        # weakest arm sat at the floor, which is exactly the incoming
        # arm's tail probability — stored probs stay consistent as-is.
        self._permute_rows(ps)
        self._reselections += int(pick.size)

    # ------------------------------------------------------------------
    # The stage update (dense recursion on the tracked block)
    # ------------------------------------------------------------------

    def _observe_block(
        self, slots: np.ndarray, actions: np.ndarray, utilities: np.ndarray
    ) -> None:
        count = slots.shape[0]
        kk = self._k
        ws = self._scratch
        self._stages[slots] += 1
        eps = self._eps_for(self._stages[slots])
        normalized = np.divide(
            utilities, self._u_max, out=ws.vec("norm", count, np.float64)
        )

        # Lazy decay, mirrored operation-for-operation from the dense
        # kernel (bit-identical at k >= H).
        decay = 1.0 - eps
        if np.ndim(decay) == 0:
            if decay < self._scale_floor:
                self._s[slots] = 0.0
                self._scale[slots] = 1.0
                decay = 1.0
        else:
            wiped = decay < self._scale_floor
            if wiped.any():
                self._s[slots[wiped]] = 0.0
                self._scale[slots[wiped]] = 1.0
                decay = np.where(wiped, 1.0, decay)
        scale = ws.vec("scale", count, np.float64)
        np.take(self._scale, slots, out=scale)
        scale *= decay
        self._scale[slots] = scale
        row_index = ws.arange(count)

        # Promote untracked plays so the played column exists in the block.
        loc = self._locate(slots, actions)
        loc_c = np.minimum(loc, kk - 1)
        is_tracked = self._ids[slots, loc_c] == actions
        untracked = np.flatnonzero(~is_tracked)
        if untracked.size:
            self._promote(slots[untracked], actions[untracked])
            loc[untracked] = self._locate(slots[untracked], actions[untracked])
        np.minimum(loc, kk - 1, out=loc)

        gathered = ws.rows("gathered", count, kk, self._dtype)
        np.take(self._probs, slots, axis=0, out=gathered)
        played_prob = gathered[row_index, loc]
        weight = ws.vec("weight", count, np.float64)
        np.multiply(normalized, eps, out=weight)
        np.divide(weight, played_prob, out=weight)
        np.divide(weight, scale, out=weight)
        np.multiply(gathered, weight[:, None], out=gathered)
        flat_rows = self._s.reshape(self._n * kk, kk)
        row_idx = ws.vec("row_idx", count, np.intp)
        np.multiply(slots, kk, out=row_idx)
        row_idx += loc
        acc = ws.rows("acc", count, kk, self._dtype)
        np.take(flat_rows, row_idx, axis=0, out=acc)
        acc += gathered
        flat_rows[row_idx] = acc

        # Tracked regret row of the played action (Eq. 3-6, row j = a_i),
        # gathered through precomputed flat offsets as in the dense kernel.
        q_idx = ws.rows("q_idx", count, kk, np.intp)
        base = ws.vec("q_base", count, np.intp)
        np.multiply(slots, kk * kk, out=base)
        base += loc
        np.add(base[:, None], self._col_offsets, out=q_idx)
        q = ws.rows("q", count, kk, self._dtype)
        np.take(self._s.reshape(-1), q_idx, out=q)
        diag = q[row_index, loc]
        q -= diag[:, None]
        q *= scale[:, None]
        np.maximum(q, 0.0, out=q)
        q[row_index, loc] = 0.0
        self._last_played_regrets[slots] = q

        # Probability update (Algorithm 2) over the tracked arms; every
        # untracked arm lands exactly on the exploration floor delta / H,
        # so the tail bucket's mass is the constant (H - k) * delta / H.
        cap = 1.0 / (self._h - 1)
        np.multiply(q, (1.0 - self._delta) / self._mu, out=q)
        np.minimum(q, (1.0 - self._delta) * cap, out=q)
        q += self._delta / self._h
        q[row_index, loc] = 0.0
        if self._tail_count:
            q[row_index, loc] = 1.0 - self._tail_mass - q.sum(axis=1)
        else:
            q[row_index, loc] = 1.0 - q.sum(axis=1)
        self._probs[slots] = q
        if self._tail_count:
            self._tail_prob[slots] = self._tail_mass
        # Refresh the maintained CDF rows while q is cache-hot.
        np.cumsum(q, axis=1, out=q)
        self._cdf[slots] = q

        # Fold nearly-underflowed scales back into the stored blocks.
        tiny = ws.vec("tiny", count, np.bool_)
        np.less(scale, self._scale_floor, out=tiny)
        if tiny.any():
            idx = slots[tiny]
            self._s[idx] *= self._scale[idx][:, None, None]
            self._scale[idx] = 1.0

        if self._reselect_every and self._tail_count:
            due = self._stages[slots] % self._reselect_every == 0
            if np.any(due):
                self._reselect(slots[due])

    def _eps_for(self, stages: np.ndarray) -> "np.ndarray | float":
        """Step sizes for the given (1-based) stage indices."""
        if self._constant_eps is not None:
            return self._constant_eps
        return self._eps_table(stages)

    # ------------------------------------------------------------------
    # Whole-population API (tests / bare repeated-game use)
    # ------------------------------------------------------------------

    def act_all(self) -> np.ndarray:
        """Sample one action per peer from the current mixed strategies."""
        return self.act_slots(self._peer_index)

    def observe_all(self, actions: np.ndarray, utilities: np.ndarray) -> None:
        """Batch regret + probability update for one stage."""
        actions = np.asarray(actions, dtype=int)
        utilities = np.asarray(utilities, dtype=float)
        if actions.shape != (self._n,) or utilities.shape != (self._n,):
            raise ValueError("actions and utilities must both have shape (N,)")
        self.observe_slots(self._peer_index, actions, utilities)
        self._stage += 1
