"""The RTHS/R2HS play-probability update (Algorithms 1 and 2).

Given the regret row ``Q^n(j, ·)`` for the action ``j`` just played, the
next stage's mixed strategy is

    p^{n+1}(k) = (1 - delta) * min( Q^n(j,k) / mu , 1/(m-1) ) + delta / m
                                                       for k != j
    p^{n+1}(j) = 1 - sum_{k != j} p^{n+1}(k)

where ``m = |A_i|`` is the number of helpers, ``mu`` the normalization
constant and ``delta`` the exploration floor.  Properties enforced here and
property-tested in ``tests/core/test_probability.py``:

* the result is a probability vector for any non-negative regret row;
* every action keeps probability at least ``delta / m`` (so the importance
  ratios in the proxy-regret estimator stay bounded by ``m/delta``);
* the played action keeps probability at least ``delta/m`` as well, and at
  least ``1 - (1-delta) - delta(m-1)/m = delta/m`` in the worst case, giving
  the inertia regret matching requires;
* with zero regrets the strategy collapses to "stay on j, explore delta".
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import (
    require_in_closed_unit_interval,
    require_positive,
)


def update_play_probabilities(
    regret_row: np.ndarray,
    played: int,
    mu: float,
    delta: float,
    out: "np.ndarray | None" = None,
) -> np.ndarray:
    """Compute ``p^{n+1}`` from the played action's regret row.

    Parameters
    ----------
    regret_row:
        ``Q^n(j, ·)`` — non-negative, entry ``j`` ignored.
    played:
        Index ``j`` of the action played at stage ``n``.
    mu:
        Normalization constant; larger values make switching less eager.
        Must be positive.  The classical sufficient condition for the
        regret-matching inertia argument is ``mu > 2 * u_max * (m - 1)`` in
        the utility units used by the regret estimator.
    delta:
        Exploration weight in [0, 1); mass ``delta`` is spread uniformly.
    out:
        Optional output array (shape ``(m,)``) to avoid allocation.

    Returns
    -------
    numpy.ndarray
        The next mixed strategy, a valid probability vector.
    """
    row = np.asarray(regret_row, dtype=float)
    if row.ndim != 1 or row.size < 2:
        raise ValueError("regret_row must be 1-D with at least two actions")
    m = row.size
    if not 0 <= played < m:
        raise ValueError(f"played action {played} out of range 0..{m - 1}")
    require_positive(mu, "mu")
    require_in_closed_unit_interval(delta, "delta")
    if delta >= 1:
        raise ValueError("delta must be < 1")
    if np.any(row < 0) or np.any(~np.isfinite(row)):
        raise ValueError("regret_row must be finite and non-negative")

    if out is None:
        out = np.empty(m, dtype=float)
    elif out.shape != (m,):
        raise ValueError(f"out must have shape ({m},)")

    cap = 1.0 / (m - 1)
    np.minimum(row / mu, cap, out=out)
    out *= 1.0 - delta
    out += delta / m
    out[played] = 0.0
    out[played] = 1.0 - out.sum()
    return out


def probability_floor(num_actions: int, delta: float) -> float:
    """The guaranteed minimum probability of any action, ``delta / m``."""
    if num_actions < 2:
        raise ValueError("num_actions must be >= 2")
    require_in_closed_unit_interval(delta, "delta")
    return delta / num_actions


def default_mu(num_actions: int, u_max: float = 1.0) -> float:
    """The library's default normalization constant.

    ``2 * u_max * (m - 1)`` — the smallest value satisfying the classical
    inertia condition for utilities bounded by ``u_max``.

    Trade-off: ``mu`` divides the regret before it becomes switching
    probability, so large values make peers sluggish.  In the helper
    selection game realized shares ``C/n`` sit far below the bound
    ``u_max = C_max``, so the theory-compliant default converges slowly on
    strongly capacity-asymmetric instances; passing a ``mu`` of the order
    of the typical (normalized) utility *difference* between helpers gives
    much faster convergence at the cost of the formal inertia guarantee.
    The parameter ablation bench (``bench_ablation_params``) sweeps this.
    """
    if num_actions < 2:
        raise ValueError("num_actions must be >= 2")
    require_positive(u_max, "u_max")
    return 2.0 * u_max * (num_actions - 1)
