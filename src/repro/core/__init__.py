"""The paper's contribution: regret-tracking helper selection.

Layout
------

* :mod:`repro.core.schedules` — step-size schedules.  The paper's regret
  *tracking* is the constant-step-size member of a family that also contains
  classic Hart & Mas-Colell regret *matching* (harmonic step 1/n); a single
  implementation parameterized by the schedule covers both.
* :mod:`repro.core.proxy_regret` — the bandit (proxy) regret estimators of
  Eqs. (3-2)–(3-6): an exact history-based form (Algorithm 1 / RTHS) and the
  O(H^2)-per-stage recursive form (Algorithm 2 / R2HS), proven equivalent in
  the tests.
* :mod:`repro.core.probability` — the play-probability update
  ``p(k) = (1-delta) * min(Q(j,k)/mu, 1/(m-1)) + delta/m``.
* :mod:`repro.core.rths` — :class:`RTHSLearner` (Algorithm 1, exact sums)
  and :func:`regret_matching_learner` (uniform-average ancestor).
* :mod:`repro.core.r2hs` — :class:`R2HSLearner` (Algorithm 2, recursive).
* :mod:`repro.core.population` — vectorized population of R2HS learners for
  large-scale runs (paper Fig. 1).
* :mod:`repro.core.sparse_population` — sparse top-k variant of the
  population: exact ``(k, k)`` regret blocks plus an aggregated tail
  bucket, ``O(N k^2)`` memory for giant helper counts (``H >> 10^3``).
* :mod:`repro.core.equilibrium` — correlated-equilibrium machinery: the CE
  inequality (Eq. 3-1) on empirical play, and an exact CE linear program
  for small tabular games.
"""

from repro.core.diagnostics import (
    sliding_ce_regret,
    strategy_entropy,
    switching_statistics,
)
from repro.core.equilibrium import (
    CERegretReport,
    empirical_ce_regret,
    empirical_ce_regret_report,
    is_epsilon_correlated_equilibrium,
    solve_ce_lp,
)
from repro.core.population import LearnerPopulation
from repro.core.probability import update_play_probabilities
from repro.core.sparse_population import TopKPopulation
from repro.core.proxy_regret import ExactProxyRegret, RecursiveProxyRegret
from repro.core.r2hs import R2HSLearner
from repro.core.rths import RTHSLearner, regret_matching_learner
from repro.core.schedules import constant_step, harmonic_step, polynomial_step

__all__ = [
    "constant_step",
    "harmonic_step",
    "polynomial_step",
    "ExactProxyRegret",
    "RecursiveProxyRegret",
    "update_play_probabilities",
    "RTHSLearner",
    "R2HSLearner",
    "regret_matching_learner",
    "LearnerPopulation",
    "TopKPopulation",
    "empirical_ce_regret",
    "empirical_ce_regret_report",
    "CERegretReport",
    "is_epsilon_correlated_equilibrium",
    "solve_ce_lp",
    "sliding_ce_regret",
    "strategy_entropy",
    "switching_statistics",
]
