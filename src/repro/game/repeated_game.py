"""Stage-synchronous driver for the repeated helper-selection game.

This is the pure-algorithm fast path: a population of learners plays the
stage game against a (possibly time-varying) helper-capacity process, with
no packet-level simulation.  The full discrete-event system in
:mod:`repro.sim` runs the *same* learners through the same protocol; the two
paths are cross-checked in the integration tests.

The capacity process is anything with ``capacities() -> ndarray`` and
``advance() -> None`` (see :class:`CapacityProcess`); concrete
implementations live in :mod:`repro.sim.bandwidth`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.game.helper_selection import loads_from_profile
from repro.game.interfaces import Learner


@runtime_checkable
class CapacityProcess(Protocol):
    """Environment process supplying per-stage helper capacities."""

    @property
    def num_helpers(self) -> int:
        """Number of helpers ``H``."""
        ...

    def capacities(self) -> np.ndarray:
        """Current per-helper upload capacities (kbit/s)."""
        ...

    def advance(self) -> None:
        """Move the environment one stage forward."""
        ...


class StaticCapacities:
    """Trivial capacity process: constants for every stage."""

    def __init__(self, capacities: Sequence[float]) -> None:
        caps = np.asarray(capacities, dtype=float)
        if caps.ndim != 1 or caps.size == 0:
            raise ValueError("capacities must be a non-empty 1-D sequence")
        if np.any(caps < 0) or np.any(~np.isfinite(caps)):
            raise ValueError("capacities must be finite and non-negative")
        self._caps = caps

    @property
    def num_helpers(self) -> int:
        return self._caps.size

    def capacities(self) -> np.ndarray:
        return self._caps.copy()

    def minimum_capacities(self) -> np.ndarray:
        return self._caps.copy()

    def advance(self) -> None:  # noqa: D401 - trivial
        """No-op; capacities never change."""


@dataclass(frozen=True)
class StageRecord:
    """Everything that happened in one stage of the repeated game."""

    stage: int
    capacities: np.ndarray  # (H,) helper capacities this stage
    actions: np.ndarray     # (N,) helper chosen by each peer
    loads: np.ndarray       # (H,) resulting connection counts
    utilities: np.ndarray   # (N,) realized rates

    @property
    def welfare(self) -> float:
        """Social welfare (sum of realized rates) this stage."""
        return float(self.utilities.sum())


@dataclass
class Trajectory:
    """Dense arrays covering a full repeated-game run of ``T`` stages."""

    capacities: np.ndarray  # (T, H)
    actions: np.ndarray     # (T, N)
    loads: np.ndarray       # (T, H)
    utilities: np.ndarray   # (T, N)

    @property
    def num_stages(self) -> int:
        """Number of stages ``T``."""
        return self.actions.shape[0]

    @property
    def num_peers(self) -> int:
        """Number of peers ``N``."""
        return self.actions.shape[1]

    @property
    def num_helpers(self) -> int:
        """Number of helpers ``H``."""
        return self.loads.shape[1]

    @property
    def welfare(self) -> np.ndarray:
        """Per-stage social welfare, shape ``(T,)``."""
        return self.utilities.sum(axis=1)

    def stage(self, n: int) -> StageRecord:
        """Materialize stage ``n`` as a :class:`StageRecord`."""
        return StageRecord(
            stage=n,
            capacities=self.capacities[n],
            actions=self.actions[n],
            loads=self.loads[n],
            utilities=self.utilities[n],
        )

    def empirical_joint_counts(self) -> dict:
        """Histogram of observed joint action profiles (tuples -> counts).

        The empirical distribution of play is what converges to the CE set;
        :mod:`repro.core.equilibrium` consumes this.
        """
        counts: dict = {}
        for row in self.actions:
            key = tuple(int(a) for a in row)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def tail(self, fraction: float = 0.5) -> "Trajectory":
        """The final ``fraction`` of the run (used for steady-state stats)."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must lie in (0, 1]")
        start = int(round(self.num_stages * (1.0 - fraction)))
        return Trajectory(
            capacities=self.capacities[start:],
            actions=self.actions[start:],
            loads=self.loads[start:],
            utilities=self.utilities[start:],
        )


StageCallback = Callable[[StageRecord], None]


class RepeatedGameDriver:
    """Runs a fixed population of learners through the repeated stage game.

    Parameters
    ----------
    learners:
        One :class:`~repro.game.interfaces.Learner` per peer; every learner
        must have ``num_actions == capacity_process.num_helpers``.
    capacity_process:
        Supplies per-stage helper capacities (e.g. the Markov-modulated
        process of the paper's evaluation).
    connection_costs:
        Optional per-helper cost subtracted from realized rates.
    """

    def __init__(
        self,
        learners: Sequence[Learner],
        capacity_process: CapacityProcess,
        connection_costs: Optional[Sequence[float]] = None,
    ) -> None:
        if not learners:
            raise ValueError("need at least one learner")
        self._learners = list(learners)
        self._process = capacity_process
        h = capacity_process.num_helpers
        for idx, learner in enumerate(self._learners):
            if learner.num_actions != h:
                raise ValueError(
                    f"learner {idx} has {learner.num_actions} actions "
                    f"but there are {h} helpers"
                )
        if connection_costs is None:
            self._costs = np.zeros(h)
        else:
            self._costs = np.asarray(connection_costs, dtype=float)
            if self._costs.shape != (h,):
                raise ValueError("connection_costs must have one entry per helper")
        self._stage = 0

    @property
    def num_peers(self) -> int:
        """Population size ``N``."""
        return len(self._learners)

    @property
    def num_helpers(self) -> int:
        """Number of helpers ``H``."""
        return self._process.num_helpers

    @property
    def learners(self) -> List[Learner]:
        """The learner population (mutable list, same objects)."""
        return self._learners

    def run_stage(self) -> StageRecord:
        """Play one stage: everyone acts, rates realize, everyone observes."""
        caps = np.asarray(self._process.capacities(), dtype=float)
        if caps.shape != (self.num_helpers,):
            raise RuntimeError(
                f"capacity process returned shape {caps.shape}, "
                f"expected ({self.num_helpers},)"
            )
        actions = np.fromiter(
            (learner.act() for learner in self._learners),
            dtype=int,
            count=self.num_peers,
        )
        loads = loads_from_profile(actions, self.num_helpers)
        utilities = caps[actions] / loads[actions] - self._costs[actions]
        for learner, action, utility in zip(self._learners, actions, utilities):
            learner.observe(int(action), float(utility))
        record = StageRecord(
            stage=self._stage,
            capacities=caps,
            actions=actions,
            loads=loads,
            utilities=utilities,
        )
        self._process.advance()
        self._stage += 1
        return record

    def run(
        self,
        num_stages: int,
        callback: Optional[StageCallback] = None,
    ) -> Trajectory:
        """Play ``num_stages`` stages and return the dense trajectory."""
        if num_stages < 1:
            raise ValueError("num_stages must be >= 1")
        n, h = self.num_peers, self.num_helpers
        capacities = np.empty((num_stages, h))
        actions = np.empty((num_stages, n), dtype=int)
        loads = np.empty((num_stages, h), dtype=int)
        utilities = np.empty((num_stages, n))
        for t in range(num_stages):
            record = self.run_stage()
            capacities[t] = record.capacities
            actions[t] = record.actions
            loads[t] = record.loads
            utilities[t] = record.utilities
            if callback is not None:
                callback(record)
        return Trajectory(
            capacities=capacities, actions=actions, loads=loads, utilities=utilities
        )
