"""Exact potential of the helper-selection game.

The stage game is a congestion game: moving one peer from helper ``j``
(load ``n_j``) to helper ``l`` changes its utility by
``C_l/(n_l+1) - C_j/n_j``.  The Rosenthal-style function

    Phi(loads) = sum_j sum_{k=1..n_j} C_j / k

changes by exactly the same amount, so it is an **exact potential**
(costs extend it with a ``- n_j c_j`` term).  Consequences used by the
library and asserted in the tests:

* better-response dynamics strictly increase ``Phi`` and therefore
  terminate (the finite improvement property behind
  :func:`repro.game.best_response.sequential_best_response`);
* the maximizers of ``Phi`` are pure Nash equilibria;
* ``Phi`` gives a cheap global progress measure for dynamics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.game.helper_selection import HelperSelectionGame, loads_from_profile
from repro.game.nash import compositions


def exact_potential(
    loads: Sequence[int],
    capacities: Sequence[float],
    connection_costs: Optional[Sequence[float]] = None,
) -> float:
    """``Phi(loads) = sum_j (C_j * H_{n_j} - n_j * c_j)`` with harmonic ``H``."""
    loads_arr = np.asarray(loads, dtype=int)
    caps = np.asarray(capacities, dtype=float)
    if loads_arr.shape != caps.shape:
        raise ValueError("loads and capacities must have matching shapes")
    if np.any(loads_arr < 0):
        raise ValueError("loads must be non-negative")
    if connection_costs is None:
        costs = np.zeros(caps.size)
    else:
        costs = np.asarray(connection_costs, dtype=float)
        if costs.shape != caps.shape:
            raise ValueError("connection_costs must match capacities")
    total = 0.0
    for j in range(caps.size):
        n = int(loads_arr[j])
        if n > 0:
            harmonic = float(np.sum(1.0 / np.arange(1, n + 1)))
            total += caps[j] * harmonic - n * costs[j]
    return total


def potential_of_profile(game: HelperSelectionGame, profile: Sequence[int]) -> float:
    """Exact potential of an action profile of the stage game."""
    loads = loads_from_profile(profile, game.num_helpers)
    return exact_potential(loads, game.capacities, game.connection_costs)


def potential_difference_matches_utility(
    game: HelperSelectionGame,
    profile: Sequence[int],
    player: int,
    action: int,
) -> Tuple[float, float]:
    """Return ``(delta_potential, delta_utility)`` for a unilateral move.

    The exact-potential property says these are always equal; the tests
    assert it over random instances.
    """
    profile_arr = np.asarray(profile, dtype=int)
    before_u = game.utility(player, tuple(profile_arr))
    before_phi = potential_of_profile(game, profile_arr)
    deviated = profile_arr.copy()
    deviated[player] = action
    after_u = game.utility(player, tuple(deviated))
    after_phi = potential_of_profile(game, deviated)
    return after_phi - before_phi, after_u - before_u


def potential_maximizing_loads(game: HelperSelectionGame) -> np.ndarray:
    """The load vector maximizing the exact potential (a pure NE).

    Enumerates compositions; intended for small/medium instances (the
    count is C(N+H-1, H-1)).
    """
    best_value = -np.inf
    best: Optional[np.ndarray] = None
    caps = game.capacities
    costs = game.connection_costs
    for loads in compositions(game.num_players, game.num_helpers):
        value = exact_potential(np.asarray(loads), caps, costs)
        if value > best_value:
            best_value = value
            best = np.asarray(loads, dtype=int)
    assert best is not None  # compositions is never empty
    return best


def greedy_potential_ascent(
    game: HelperSelectionGame,
    initial_profile: Sequence[int],
    max_moves: int = 100000,
) -> Tuple[np.ndarray, List[float], bool]:
    """Repeatedly apply the single best improving move until none exists.

    Returns ``(profile, potential_trace, converged)``.  Because the
    potential strictly increases with every move and the profile space is
    finite, convergence is guaranteed; ``max_moves`` is a safety valve.
    """
    profile = np.asarray(initial_profile, dtype=int).copy()
    if profile.size != game.num_players:
        raise ValueError("initial_profile has wrong length")
    caps = np.asarray(game.capacities, dtype=float)
    costs = np.asarray(game.connection_costs, dtype=float)
    loads = loads_from_profile(profile, game.num_helpers)
    trace = [exact_potential(loads, caps, costs)]
    for _ in range(max_moves):
        best_gain = 0.0
        best_move: Optional[Tuple[int, int]] = None
        current_rates = caps[profile] / loads[profile] - costs[profile]
        for i in range(profile.size):
            j = profile[i]
            for l in range(game.num_helpers):
                if l == j:
                    continue
                gain = (caps[l] / (loads[l] + 1) - costs[l]) - current_rates[i]
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_move = (i, l)
        if best_move is None:
            return profile, trace, True
        i, l = best_move
        loads[profile[i]] -= 1
        profile[i] = l
        loads[l] += 1
        trace.append(exact_potential(loads, caps, costs))
    return profile, trace, False


def is_finite_improvement_property_witnessed(
    game: HelperSelectionGame,
    trials: int = 20,
    max_moves: int = 10000,
    rng: "np.random.Generator | int | None" = None,
) -> bool:
    """Empirically witness the FIP: random better-response paths terminate.

    Runs ``trials`` random-start greedy ascents; returns True iff every one
    converged within ``max_moves`` with a strictly increasing potential.
    """
    from repro.util.rng import as_generator

    gen = as_generator(rng)
    for _ in range(trials):
        start = gen.integers(0, game.num_helpers, size=game.num_players)
        _, trace, converged = greedy_potential_ascent(game, start, max_moves)
        if not converged:
            return False
        diffs = np.diff(trace)
        if np.any(diffs <= 0):
            return False
    return True
