"""Generic finite normal-form games.

:class:`NormalFormGame` is the abstract interface (player count, action-set
sizes, per-player utility of a pure profile).  :class:`TabularGame` stores
explicit payoff tensors and is used by the equilibrium tests and the exact
correlated-equilibrium LP on small instances.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Iterator, Sequence, Tuple

import numpy as np

Profile = Tuple[int, ...]


class NormalFormGame(ABC):
    """A finite game in strategic (normal) form."""

    @property
    @abstractmethod
    def num_players(self) -> int:
        """Number of players ``|N|``."""

    @abstractmethod
    def num_actions(self, player: int) -> int:
        """Size of player ``player``'s action set."""

    @abstractmethod
    def utility(self, player: int, profile: Profile) -> float:
        """Utility of ``player`` under the pure action profile ``profile``."""

    # ------------------------------------------------------------------
    # Derived helpers (shared by all game implementations)
    # ------------------------------------------------------------------

    def utilities(self, profile: Profile) -> np.ndarray:
        """Vector of all players' utilities under ``profile``."""
        return np.array(
            [self.utility(i, profile) for i in range(self.num_players)], dtype=float
        )

    def welfare(self, profile: Profile) -> float:
        """Social welfare (sum of utilities) under ``profile``."""
        return float(self.utilities(profile).sum())

    def deviate(self, profile: Profile, player: int, action: int) -> Profile:
        """``profile`` with ``player``'s action replaced by ``action``."""
        if not 0 <= player < self.num_players:
            raise ValueError(f"player {player} out of range")
        if not 0 <= action < self.num_actions(player):
            raise ValueError(f"action {action} out of range for player {player}")
        mutated = list(profile)
        mutated[player] = action
        return tuple(mutated)

    def best_response(self, player: int, profile: Profile) -> int:
        """A utility-maximizing action for ``player`` holding others fixed.

        Ties break toward the lowest action index (deterministic, so tests
        are stable); the player's current action in ``profile`` is ignored.
        """
        payoffs = [
            self.utility(player, self.deviate(profile, player, a))
            for a in range(self.num_actions(player))
        ]
        return int(np.argmax(payoffs))

    def regret_of_profile(self, player: int, profile: Profile) -> float:
        """Gain of ``player``'s best deviation from ``profile`` (>= 0)."""
        current = self.utility(player, profile)
        best = self.utility(
            player, self.deviate(profile, player, self.best_response(player, profile))
        )
        return max(0.0, best - current)

    def all_profiles(self) -> Iterator[Profile]:
        """Iterate over every pure action profile (exponential; small games)."""
        ranges = [range(self.num_actions(i)) for i in range(self.num_players)]
        return itertools.product(*ranges)


class TabularGame(NormalFormGame):
    """A normal-form game backed by explicit payoff tensors.

    Parameters
    ----------
    payoffs:
        One array per player, each of shape
        ``(num_actions(0), ..., num_actions(n-1))``.
    """

    def __init__(self, payoffs: Sequence[np.ndarray]) -> None:
        if not payoffs:
            raise ValueError("need at least one player")
        tensors = [np.asarray(p, dtype=float) for p in payoffs]
        shape = tensors[0].shape
        if len(shape) != len(tensors):
            raise ValueError(
                f"payoff tensors must have one axis per player: "
                f"{len(tensors)} players but shape {shape}"
            )
        for idx, tensor in enumerate(tensors):
            if tensor.shape != shape:
                raise ValueError(
                    f"player {idx} payoff shape {tensor.shape} != {shape}"
                )
        self._payoffs = tensors
        self._shape = shape

    @property
    def num_players(self) -> int:
        return len(self._payoffs)

    def num_actions(self, player: int) -> int:
        return self._shape[player]

    def utility(self, player: int, profile: Profile) -> float:
        return float(self._payoffs[player][tuple(profile)])

    @classmethod
    def from_game(cls, game: NormalFormGame) -> "TabularGame":
        """Materialize any finite game into payoff tensors (small games only)."""
        shape = tuple(game.num_actions(i) for i in range(game.num_players))
        tensors = [np.zeros(shape) for _ in range(game.num_players)]
        for profile in game.all_profiles():
            for i in range(game.num_players):
                tensors[i][profile] = game.utility(i, profile)
        return cls(tensors)
