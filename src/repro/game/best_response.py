"""Best-response dynamics for the helper-selection game.

Paper Sec. III-B motivates correlated equilibria with the herding pathology
of myopic best response: with two equal-capacity helpers and all peers on
``h1``, every peer simultaneously switches to the less-congested ``h2``,
overloading it, and the population oscillates forever.  This module provides

* :func:`simultaneous_best_response_path` — the pathological dynamic, used
  by the oscillation ablation bench;
* :func:`sequential_best_response` — one-peer-at-a-time better-response,
  which *does* converge (finite improvement property of congestion games);
* :class:`BestResponseLearner` — a myopic learner usable inside the repeated
  game driver: it estimates each helper's attainable rate from its own past
  observations and deterministically picks the best estimate.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.game.helper_selection import HelperSelectionGame, loads_from_profile
from repro.game.interfaces import LearnerBase
from repro.util.rng import Seedish, as_generator


def simultaneous_best_response_path(
    game: HelperSelectionGame,
    initial_profile: Sequence[int],
    num_stages: int,
) -> np.ndarray:
    """Trajectory of simultaneous myopic best responses.

    At each stage every peer switches to the helper that *would have been*
    best against the previous stage's loads (the classic herd).  Returns an
    array of shape ``(num_stages + 1, N)`` with profiles, starting with the
    initial one.
    """
    profile = np.asarray(initial_profile, dtype=int).copy()
    if profile.size != game.num_players:
        raise ValueError("initial_profile has wrong length")
    caps = np.asarray(game.capacities, dtype=float)
    costs = np.asarray(game.connection_costs, dtype=float)
    path = np.empty((num_stages + 1, profile.size), dtype=int)
    path[0] = profile
    for t in range(1, num_stages + 1):
        loads = loads_from_profile(profile, game.num_helpers)
        # A peer evaluates helper k at the rate it would see joining the
        # *current* crowd: own helper at C_j/n_j, others at C_k/(n_k+1).
        anticipated = caps / (loads + 1) - costs
        own = caps[profile] / np.maximum(loads[profile], 1) - costs[profile]
        best = int(np.argmax(anticipated))
        switch = anticipated[best] > own + 1e-12
        profile = np.where(switch, best, profile)
        path[t] = profile
    return path


def sequential_best_response(
    game: HelperSelectionGame,
    initial_profile: Sequence[int],
    max_rounds: int = 1000,
) -> Tuple[np.ndarray, int, bool]:
    """Round-robin better-response until no peer wants to move.

    Returns ``(profile, rounds_used, converged)``.  Convergence is
    guaranteed in finitely many steps for congestion games; ``max_rounds``
    is a safety valve.
    """
    profile = np.asarray(initial_profile, dtype=int).copy()
    caps = np.asarray(game.capacities, dtype=float)
    costs = np.asarray(game.connection_costs, dtype=float)
    loads = loads_from_profile(profile, game.num_helpers)
    for round_idx in range(max_rounds):
        moved = False
        for i in range(profile.size):
            j = profile[i]
            current = caps[j] / loads[j] - costs[j]
            # Evaluate deviations against loads with peer i removed.
            loads[j] -= 1
            anticipated = caps / (loads + 1) - costs
            best = int(np.argmax(anticipated))
            if anticipated[best] > current + 1e-12:
                profile[i] = best
                loads[best] += 1
                moved = True
            else:
                loads[j] += 1
        if not moved:
            return profile, round_idx + 1, True
    return profile, max_rounds, False


def oscillation_period(path: np.ndarray) -> Optional[int]:
    """Detect a cycle in a best-response trajectory.

    Returns the period of the first repeated profile (e.g. 2 for the
    two-helper herd), or ``None`` if no profile repeats.
    """
    seen = {}
    for t, profile in enumerate(map(tuple, path)):
        if profile in seen:
            return t - seen[profile]
        seen[profile] = t
    return None


class BestResponseLearner(LearnerBase):
    """Myopic learner: deterministically plays the empirically best helper.

    Keeps an exponentially-weighted estimate of the rate each helper
    delivered when played, explores unvisited helpers first, then always
    plays the argmax estimate.  Inside a population this reproduces the herd
    behaviour of Sec. III-B in learner form, making it directly comparable
    to RTHS under the same driver.
    """

    def __init__(
        self,
        num_actions: int,
        rng: Seedish = None,
        memory: float = 0.3,
    ) -> None:
        super().__init__(num_actions, as_generator(rng))
        if not 0 < memory <= 1:
            raise ValueError(f"memory must lie in (0, 1], got {memory}")
        self._memory = float(memory)
        self._estimates = np.zeros(num_actions)
        self._visited = np.zeros(num_actions, dtype=bool)

    def act(self) -> int:
        unvisited = np.flatnonzero(~self._visited)
        if unvisited.size:
            return int(self._rng.choice(unvisited))
        return int(np.argmax(self._estimates))

    def observe(self, action: int, utility: float) -> None:
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action {action} out of range")
        if not self._visited[action]:
            self._estimates[action] = utility
            self._visited[action] = True
        else:
            self._estimates[action] += self._memory * (
                utility - self._estimates[action]
            )
        self._advance_stage()

    def strategy(self) -> np.ndarray:
        probs = np.zeros(self.num_actions)
        unvisited = np.flatnonzero(~self._visited)
        if unvisited.size:
            probs[unvisited] = 1.0 / unvisited.size
        else:
            probs[int(np.argmax(self._estimates))] = 1.0
        return probs
