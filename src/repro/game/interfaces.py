"""The minimal learner protocol shared across the library.

A *learner* is the per-peer strategy object.  The repeated-game driver, the
discrete-event streaming system and the multichannel extension all interact
with learners exclusively through this protocol, so any strategy — RTHS,
R2HS, regret matching, best response, fictitious play, random — is plug-in
compatible everywhere.

The protocol is deliberately bandit-shaped: a learner picks an action and
later observes only *its own* realized utility, matching the paper's
zero-knowledge / opaque-feedback setting (Sec. III-B).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Learner(Protocol):
    """Strategy object for one player of the repeated helper-selection game."""

    @property
    def num_actions(self) -> int:
        """Size of the action set ``|A_i|`` (the number of helpers)."""
        ...

    def act(self) -> int:
        """Choose the action for the current stage.

        Returns the chosen action index in ``0..num_actions-1``.  May be
        stochastic; all randomness must come from the generator supplied at
        construction so runs are reproducible.
        """
        ...

    def observe(self, action: int, utility: float) -> None:
        """Record the realized utility for the action played this stage."""
        ...

    def strategy(self) -> np.ndarray:
        """Current mixed strategy (play probabilities for the next stage)."""
        ...


class LearnerBase:
    """Convenience base class implementing the bookkeeping most learners share.

    Subclasses implement :meth:`act` and :meth:`observe`; this base stores
    the action-set size, the injected generator and the stage counter.
    """

    def __init__(self, num_actions: int, rng: "np.random.Generator") -> None:
        if num_actions < 1:
            raise ValueError(f"num_actions must be >= 1, got {num_actions}")
        self._num_actions = int(num_actions)
        self._rng = rng
        self._stage = 0

    @property
    def num_actions(self) -> int:
        """Size of the action set ``|A_i|``."""
        return self._num_actions

    @property
    def stage(self) -> int:
        """Number of ``observe`` calls so far (the stage index ``n``)."""
        return self._stage

    def _advance_stage(self) -> None:
        self._stage += 1

    def strategy(self) -> np.ndarray:
        """Default: uniform; stateful learners override."""
        return np.full(self._num_actions, 1.0 / self._num_actions)
