"""Bandit fictitious play baseline.

Classic fictitious play best-responds to the empirical distribution of
opponents' play, which requires observing their actions.  In the paper's
zero-knowledge setting only one's own realized rate is visible, so we use
the standard bandit adaptation: track the empirical *average utility* each
action produced when played, best-respond to those averages, and explore
with a decaying rate so every action keeps being sampled.

Compared with RTHS this learner (a) averages uniformly over all history,
so it adapts poorly when helper bandwidth drifts, and (b) has no regret/CE
guarantee — it is the natural "smooth best response" straw man between pure
best response and regret tracking.
"""

from __future__ import annotations

import numpy as np

from repro.game.interfaces import LearnerBase
from repro.util.rng import Seedish, as_generator


class FictitiousPlayLearner(LearnerBase):
    """Bandit fictitious play with epsilon_n = min(1, c/n) exploration."""

    def __init__(
        self,
        num_actions: int,
        rng: Seedish = None,
        exploration_constant: float = 5.0,
    ) -> None:
        super().__init__(num_actions, as_generator(rng))
        if exploration_constant <= 0:
            raise ValueError("exploration_constant must be positive")
        self._c = float(exploration_constant)
        self._sums = np.zeros(num_actions)
        self._counts = np.zeros(num_actions, dtype=int)

    @property
    def empirical_means(self) -> np.ndarray:
        """Average utility observed per action (0 where never played)."""
        means = np.zeros(self.num_actions)
        played = self._counts > 0
        means[played] = self._sums[played] / self._counts[played]
        return means

    def _exploration_rate(self) -> float:
        return min(1.0, self._c / max(1, self.stage))

    def act(self) -> int:
        unplayed = np.flatnonzero(self._counts == 0)
        if unplayed.size:
            return int(self._rng.choice(unplayed))
        if self._rng.random() < self._exploration_rate():
            return int(self._rng.integers(self.num_actions))
        return int(np.argmax(self.empirical_means))

    def observe(self, action: int, utility: float) -> None:
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action {action} out of range")
        self._sums[action] += utility
        self._counts[action] += 1
        self._advance_stage()

    def strategy(self) -> np.ndarray:
        probs = np.full(self.num_actions, 0.0)
        unplayed = np.flatnonzero(self._counts == 0)
        if unplayed.size:
            probs[unplayed] = 1.0 / unplayed.size
            return probs
        eps = self._exploration_rate()
        probs += eps / self.num_actions
        probs[int(np.argmax(self.empirical_means))] += 1.0 - eps
        return probs
