"""Asynchronous (staggered) helper selection.

The paper stresses that RTHS needs "no particular synchronization
mechanism ... between the participants" — peers only observe their own
utilities.  The synchronous driver re-selects every peer every stage; this
driver relaxes that: each stage, every peer independently *wakes* with
probability ``activation_probability`` and re-runs its learner; sleeping
peers keep their current helper and receive service but do not update
(their learner never sees utilities it did not act for, keeping the
importance-weighted regret estimates unbiased).

The async ablation shows convergence to the same equilibrium behaviour at
a proportionally slower wall-clock, supporting the no-synchronization
claim.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.game.helper_selection import loads_from_profile
from repro.game.interfaces import Learner
from repro.game.repeated_game import CapacityProcess, Trajectory
from repro.util.rng import Seedish, as_generator
from repro.util.validation import require_in_closed_unit_interval


class AsynchronousGameDriver:
    """Repeated helper selection with random per-stage peer activation.

    Parameters
    ----------
    learners:
        One learner per peer.
    capacity_process:
        Per-stage helper capacities.
    activation_probability:
        Probability each peer wakes and re-selects in a given stage.  1.0
        recovers the synchronous driver (every peer acts every stage).
    rng:
        Drives activation draws and the initial assignment.
    """

    def __init__(
        self,
        learners: Sequence[Learner],
        capacity_process: CapacityProcess,
        activation_probability: float = 0.2,
        rng: Seedish = None,
    ) -> None:
        if not learners:
            raise ValueError("need at least one learner")
        require_in_closed_unit_interval(
            activation_probability, "activation_probability"
        )
        if activation_probability == 0:
            raise ValueError("activation_probability must be > 0")
        h = capacity_process.num_helpers
        for idx, learner in enumerate(learners):
            if learner.num_actions != h:
                raise ValueError(
                    f"learner {idx} has {learner.num_actions} actions for "
                    f"{h} helpers"
                )
        self._learners = list(learners)
        self._process = capacity_process
        self._q = float(activation_probability)
        self._rng = as_generator(rng)
        # Everyone picks an initial helper through their learner, so the
        # first observation is always for an action the learner chose.
        self._current = np.fromiter(
            (learner.act() for learner in self._learners),
            dtype=int,
            count=len(self._learners),
        )
        self._pending_observation = np.ones(len(self._learners), dtype=bool)

    @property
    def num_peers(self) -> int:
        """Population size."""
        return len(self._learners)

    @property
    def num_helpers(self) -> int:
        """Helper count."""
        return self._process.num_helpers

    def run(self, num_stages: int) -> Trajectory:
        """Play ``num_stages`` stages with staggered re-selection."""
        if num_stages < 1:
            raise ValueError("num_stages must be >= 1")
        n, h = self.num_peers, self.num_helpers
        capacities = np.empty((num_stages, h))
        actions = np.empty((num_stages, n), dtype=int)
        loads = np.empty((num_stages, h), dtype=int)
        utilities = np.empty((num_stages, n))
        for t in range(num_stages):
            caps = np.asarray(self._process.capacities(), dtype=float)
            counts = loads_from_profile(self._current, h)
            rates = caps[self._current] / counts[self._current]
            # Learners observe only stages in which they (re-)selected.
            for i in np.flatnonzero(self._pending_observation):
                self._learners[i].observe(int(self._current[i]), float(rates[i]))
            capacities[t] = caps
            actions[t] = self._current
            loads[t] = counts
            utilities[t] = rates
            # Wake a random subset for the next stage.
            awake = self._rng.random(n) < self._q
            for i in np.flatnonzero(awake):
                self._current[i] = self._learners[i].act()
            self._pending_observation = awake
            self._process.advance()
        return Trajectory(
            capacities=capacities, actions=actions, loads=loads,
            utilities=utilities,
        )
