"""Pure Nash equilibria of the helper-selection congestion game.

A load vector ``(n_1, ..., n_H)`` with ``sum n_j = N`` is a pure NE iff no
peer gains by switching:

    for every j with n_j > 0 and every k != j:
        C_j / n_j  >=  C_k / (n_k + 1)

(player-specific congestion games always admit one; Milchtaich [16]).  The
greedy water-filling construction below — repeatedly assigning the next peer
to the helper offering the best marginal rate — yields such an equilibrium
and is also used as the "balanced assignment" reference in the figures.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.game.helper_selection import HelperSelectionGame, loads_from_profile


def is_pure_nash(game: HelperSelectionGame, profile: Sequence[int]) -> bool:
    """True iff ``profile`` is a pure Nash equilibrium of the stage game."""
    arr = np.asarray(profile, dtype=int)
    loads = loads_from_profile(arr, game.num_helpers)
    caps = game.capacities
    costs = game.connection_costs
    current = caps[arr] / loads[arr] - costs[arr]
    # Best unilateral deviation payoff is identical for every deviating peer:
    # C_k / (n_k + 1) - cost_k.
    deviation = caps / (loads + 1) - costs
    best_dev = deviation.max()
    return bool(np.all(current >= best_dev - 1e-12))


def nash_load_vectors(game: HelperSelectionGame) -> List[np.ndarray]:
    """All equilibrium *load vectors* (anonymous equilibria).

    Enumerates compositions of ``N`` into ``H`` parts; feasible for the
    small instances used in tests (the count grows as C(N+H-1, H-1)).
    """
    results = []
    for loads in compositions(game.num_players, game.num_helpers):
        if _loads_are_nash(game, np.asarray(loads)):
            results.append(np.asarray(loads, dtype=int))
    return results


def _loads_are_nash(game: HelperSelectionGame, loads: np.ndarray) -> bool:
    caps = game.capacities
    costs = game.connection_costs
    occupied = loads > 0
    if not occupied.any():
        return game.num_players == 0
    current = np.where(occupied, caps / np.maximum(loads, 1) - costs, np.inf)
    deviation = caps / (loads + 1) - costs
    return bool(current[occupied].min() >= deviation.max() - 1e-12)


def enumerate_pure_nash(
    game: HelperSelectionGame, limit: int = 100000
) -> Iterator[Tuple[int, ...]]:
    """Yield pure-NE action profiles by brute force (tiny games only).

    Raises :class:`ValueError` if the profile space exceeds ``limit``.
    """
    size = game.num_helpers ** game.num_players
    if size > limit:
        raise ValueError(
            f"profile space of size {size} exceeds limit {limit}; "
            "use nash_load_vectors for anonymous equilibria instead"
        )
    for profile in itertools.product(range(game.num_helpers), repeat=game.num_players):
        if is_pure_nash(game, profile):
            yield profile


def greedy_balanced_assignment(game: HelperSelectionGame) -> np.ndarray:
    """Water-filling assignment: peers join the helper with the best marginal rate.

    Processing peers one at a time and giving each the helper maximizing
    ``C_k / (n_k + 1) - cost_k`` produces a pure Nash equilibrium of the
    stage game and (costs aside) the most even capacity-proportional split
    achievable with integral loads.  Ties break toward the lowest index.
    """
    caps = np.asarray(game.capacities, dtype=float)
    costs = np.asarray(game.connection_costs, dtype=float)
    loads = np.zeros(game.num_helpers, dtype=int)
    profile = np.empty(game.num_players, dtype=int)
    for i in range(game.num_players):
        marginal = caps / (loads + 1) - costs
        j = int(np.argmax(marginal))
        profile[i] = j
        loads[j] += 1
    return profile


def compositions(total: int, parts: int) -> Iterator[Tuple[int, ...]]:
    """All ways to write ``total`` as an ordered sum of ``parts`` non-negatives."""
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if total < 0:
        raise ValueError("total must be >= 0")
    if parts == 1:
        yield (total,)
        return
    for first in range(total + 1):
        for rest in compositions(total - first, parts - 1):
            yield (first,) + rest


def price_of_anarchy(game: HelperSelectionGame) -> float:
    """Worst-NE welfare divided by optimal welfare (anonymous enumeration).

    With the pure even-split utility, welfare of a load vector is the summed
    capacity of occupied helpers, so the optimum occupies every helper when
    ``N >= H``.  Returns 1.0 when every NE is welfare-optimal.
    """
    nash_vectors = nash_load_vectors(game)
    if not nash_vectors:
        raise RuntimeError("congestion game unexpectedly has no anonymous pure NE")
    caps = np.asarray(game.capacities, dtype=float)
    costs = np.asarray(game.connection_costs, dtype=float)

    def welfare_of_loads(loads: np.ndarray) -> float:
        occupied = loads > 0
        return float((caps[occupied]).sum() - (loads[occupied] * costs[occupied]).sum())

    best = max(
        welfare_of_loads(np.asarray(v)) for v in compositions(game.num_players, game.num_helpers)
    )
    worst_nash = min(welfare_of_loads(v) for v in nash_vectors)
    if best <= 0:
        return 1.0
    return worst_nash / best
