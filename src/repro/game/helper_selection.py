"""The helper-selection stage game (paper Sec. III-A).

``N`` peers each choose one of ``H`` helpers.  Helper ``j``'s upload
capacity ``C_j`` is shared evenly among the peers connected to it, so a peer
on helper ``j`` receives

    u_i = r_i = C_j / load_j

where ``load_j`` is the number of peers that chose ``j``.  Capacities may be
fixed (a static stage game) or supplied per stage by the environment (the
Markov-modulated process of Sec. IV); the game object itself is stateless in
the capacities.

This is a congestion game with player-specific payoffs (Milchtaich [16]):
utilities depend on one's own choice and the *count* of players making the
same choice, never on identities, so the game always admits a pure Nash
equilibrium (see :mod:`repro.game.nash`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.game.strategic_game import NormalFormGame, Profile


def loads_from_profile(profile: Sequence[int], num_helpers: int) -> np.ndarray:
    """Per-helper connection counts for an action profile.

    ``profile[i]`` is the helper index chosen by peer ``i``.  Entries for
    peers that are offline may be ``-1`` and are skipped.
    """
    arr = np.asarray(profile, dtype=int)
    if arr.ndim != 1:
        raise ValueError("profile must be 1-D")
    active = arr[arr >= 0]
    if active.size and active.max() >= num_helpers:
        raise ValueError(
            f"profile references helper {active.max()} but only "
            f"{num_helpers} helpers exist"
        )
    return np.bincount(active, minlength=num_helpers).astype(int)


def rates_from_profile(
    profile: Sequence[int], capacities: Sequence[float]
) -> np.ndarray:
    """Per-peer received rate under even capacity splitting.

    Offline peers (action ``-1``) receive rate 0.
    """
    arr = np.asarray(profile, dtype=int)
    caps = np.asarray(capacities, dtype=float)
    loads = loads_from_profile(arr, caps.size)
    rates = np.zeros(arr.size, dtype=float)
    online = arr >= 0
    chosen = arr[online]
    rates[online] = caps[chosen] / loads[chosen]
    return rates


class HelperSelectionGame(NormalFormGame):
    """Stage game: ``num_peers`` peers choose among ``len(capacities)`` helpers.

    Parameters
    ----------
    num_peers:
        Number of players ``N``.
    capacities:
        Helper upload capacities ``C_j`` for this stage (kbit/s).
    connection_costs:
        Optional per-helper connection cost subtracted from the received
        rate (the paper's utility "reflects ... the cost associated with
        connection to a given helper"); defaults to zero.
    """

    def __init__(
        self,
        num_peers: int,
        capacities: Sequence[float],
        connection_costs: Optional[Sequence[float]] = None,
    ) -> None:
        if num_peers < 1:
            raise ValueError(f"num_peers must be >= 1, got {num_peers}")
        caps = np.asarray(capacities, dtype=float)
        if caps.ndim != 1 or caps.size < 1:
            raise ValueError("capacities must be a non-empty 1-D sequence")
        if np.any(caps < 0) or np.any(~np.isfinite(caps)):
            raise ValueError("capacities must be finite and non-negative")
        if connection_costs is None:
            costs = np.zeros(caps.size)
        else:
            costs = np.asarray(connection_costs, dtype=float)
            if costs.shape != caps.shape:
                raise ValueError("connection_costs must match capacities in length")
        self._num_peers = int(num_peers)
        self._capacities = caps
        self._costs = costs

    # ------------------------------------------------------------------
    # NormalFormGame interface
    # ------------------------------------------------------------------

    @property
    def num_players(self) -> int:
        return self._num_peers

    def num_actions(self, player: int) -> int:
        return self._capacities.size

    def utility(self, player: int, profile: Profile) -> float:
        arr = np.asarray(profile, dtype=int)
        if arr.size != self._num_peers:
            raise ValueError(
                f"profile has {arr.size} entries for {self._num_peers} peers"
            )
        j = int(arr[player])
        loads = loads_from_profile(arr, self.num_helpers)
        return float(self._capacities[j] / loads[j] - self._costs[j])

    # ------------------------------------------------------------------
    # Congestion-game specific helpers (vectorized; used everywhere)
    # ------------------------------------------------------------------

    @property
    def num_helpers(self) -> int:
        """Number of helpers ``H`` (= size of every action set)."""
        return self._capacities.size

    @property
    def capacities(self) -> np.ndarray:
        """Helper capacities ``C_j`` for this stage (read-only view)."""
        view = self._capacities.view()
        view.flags.writeable = False
        return view

    @property
    def connection_costs(self) -> np.ndarray:
        """Per-helper connection costs (read-only view)."""
        view = self._costs.view()
        view.flags.writeable = False
        return view

    def loads(self, profile: Sequence[int]) -> np.ndarray:
        """Per-helper connection counts under ``profile``."""
        return loads_from_profile(profile, self.num_helpers)

    def all_utilities(self, profile: Sequence[int]) -> np.ndarray:
        """All peers' utilities under ``profile`` in one vectorized pass."""
        arr = np.asarray(profile, dtype=int)
        if arr.size != self._num_peers:
            raise ValueError(
                f"profile has {arr.size} entries for {self._num_peers} peers"
            )
        loads = loads_from_profile(arr, self.num_helpers)
        return self._capacities[arr] / loads[arr] - self._costs[arr]

    def welfare(self, profile: Profile) -> float:
        """Social welfare; with even splitting this equals the total
        capacity of occupied helpers minus connection costs."""
        return float(self.all_utilities(profile).sum())

    def deviation_utility(
        self, profile: Sequence[int], player: int, action: int
    ) -> float:
        """Utility ``player`` would get by unilaterally switching to ``action``.

        O(1) given precomputed loads — used heavily by equilibrium checks.
        """
        arr = np.asarray(profile, dtype=int)
        loads = loads_from_profile(arr, self.num_helpers)
        current = int(arr[player])
        if action == current:
            return float(self._capacities[action] / loads[action] - self._costs[action])
        return float(
            self._capacities[action] / (loads[action] + 1) - self._costs[action]
        )

    def with_capacities(self, capacities: Sequence[float]) -> "HelperSelectionGame":
        """A copy of this stage game with different helper capacities."""
        return HelperSelectionGame(
            self._num_peers, capacities, connection_costs=self._costs
        )

    def proportional_loads(self) -> np.ndarray:
        """Capacity-proportional target loads ``N * C_j / sum(C)``.

        The fair/balanced benchmark the load-distribution figures compare
        against (not necessarily integral).
        """
        total = self._capacities.sum()
        if total <= 0:
            return np.zeros(self.num_helpers)
        return self._num_peers * self._capacities / total
