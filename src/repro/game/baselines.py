"""Trivial comparison strategies: uniform random, sticky random, epsilon-greedy.

These anchor the low end of the evaluation: uniform random ignores feedback
entirely; sticky random models a peer that picks once and only re-picks on
rare "re-selection" events (a fixed overlay, the situation the paper says
prior helper works assumed); epsilon-greedy is the standard bandit strawman.
"""

from __future__ import annotations

import numpy as np

from repro.game.interfaces import LearnerBase
from repro.util.rng import Seedish, as_generator


class UniformRandomLearner(LearnerBase):
    """Picks a helper uniformly at random every stage."""

    def __init__(self, num_actions: int, rng: Seedish = None) -> None:
        super().__init__(num_actions, as_generator(rng))

    def act(self) -> int:
        return int(self._rng.integers(self.num_actions))

    def observe(self, action: int, utility: float) -> None:
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action {action} out of range")
        self._advance_stage()

    def strategy(self) -> np.ndarray:
        return np.full(self.num_actions, 1.0 / self.num_actions)


class StickyLearner(LearnerBase):
    """Picks once, then re-picks uniformly with small probability per stage.

    Models the fixed user-helper topology of prior helper systems: the
    overlay only changes on rare reconnection events.
    """

    def __init__(
        self,
        num_actions: int,
        rng: Seedish = None,
        switch_probability: float = 0.01,
    ) -> None:
        super().__init__(num_actions, as_generator(rng))
        if not 0 <= switch_probability <= 1:
            raise ValueError("switch_probability must lie in [0, 1]")
        self._switch_probability = float(switch_probability)
        self._current = int(self._rng.integers(num_actions))

    def act(self) -> int:
        if self._rng.random() < self._switch_probability:
            self._current = int(self._rng.integers(self.num_actions))
        return self._current

    def observe(self, action: int, utility: float) -> None:
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action {action} out of range")
        self._advance_stage()

    def strategy(self) -> np.ndarray:
        probs = np.full(
            self.num_actions, self._switch_probability / self.num_actions
        )
        probs[self._current] += 1.0 - self._switch_probability
        return probs


class EpsilonGreedyLearner(LearnerBase):
    """Constant-epsilon greedy over exponentially-weighted rate estimates."""

    def __init__(
        self,
        num_actions: int,
        rng: Seedish = None,
        epsilon: float = 0.1,
        step_size: float = 0.1,
    ) -> None:
        super().__init__(num_actions, as_generator(rng))
        if not 0 <= epsilon <= 1:
            raise ValueError("epsilon must lie in [0, 1]")
        if not 0 < step_size <= 1:
            raise ValueError("step_size must lie in (0, 1]")
        self._epsilon = float(epsilon)
        self._step_size = float(step_size)
        self._estimates = np.zeros(num_actions)
        self._visited = np.zeros(num_actions, dtype=bool)

    def act(self) -> int:
        unvisited = np.flatnonzero(~self._visited)
        if unvisited.size:
            return int(self._rng.choice(unvisited))
        if self._rng.random() < self._epsilon:
            return int(self._rng.integers(self.num_actions))
        return int(np.argmax(self._estimates))

    def observe(self, action: int, utility: float) -> None:
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action {action} out of range")
        if not self._visited[action]:
            self._estimates[action] = utility
            self._visited[action] = True
        else:
            self._estimates[action] += self._step_size * (
                utility - self._estimates[action]
            )
        self._advance_stage()

    def strategy(self) -> np.ndarray:
        probs = np.zeros(self.num_actions)
        unvisited = np.flatnonzero(~self._visited)
        if unvisited.size:
            probs[unvisited] = 1.0 / unvisited.size
            return probs
        probs += self._epsilon / self.num_actions
        probs[int(np.argmax(self._estimates))] += 1.0 - self._epsilon
        return probs


class ProportionalSamplerLearner(LearnerBase):
    """Randomizes proportionally to the estimated attainable share.

    Keeps an exponentially-weighted estimate of the rate each helper
    delivered when used and samples the next helper with probability
    proportional to those estimates (plus a uniform exploration floor) —
    the natural "follow the bandwidth" heuristic.  Its population fixed
    point is ``p_k ∝ sqrt(C_k)`` (sampling ∝ share = C/(N p) balances at
    ``p² ∝ C``), so it *softens* load imbalance relative to uniform random
    but does not reach capacity-proportional loads, has no equilibrium or
    no-regret guarantee, and keeps a constant stream of helper switches.
    A useful mid-strength baseline between random and RTHS.
    """

    def __init__(
        self,
        num_actions: int,
        rng: Seedish = None,
        step_size: float = 0.2,
        exploration: float = 0.05,
    ) -> None:
        super().__init__(num_actions, as_generator(rng))
        if not 0 < step_size <= 1:
            raise ValueError("step_size must lie in (0, 1]")
        if not 0 <= exploration < 1:
            raise ValueError("exploration must lie in [0, 1)")
        self._step_size = float(step_size)
        self._exploration = float(exploration)
        self._estimates = np.zeros(num_actions)
        self._visited = np.zeros(num_actions, dtype=bool)

    def strategy(self) -> np.ndarray:
        unvisited = np.flatnonzero(~self._visited)
        if unvisited.size:
            probs = np.zeros(self.num_actions)
            probs[unvisited] = 1.0 / unvisited.size
            return probs
        total = self._estimates.sum()
        if total <= 0:
            return np.full(self.num_actions, 1.0 / self.num_actions)
        probs = (1.0 - self._exploration) * self._estimates / total
        probs += self._exploration / self.num_actions
        return probs

    def act(self) -> int:
        return int(self._rng.choice(self.num_actions, p=self.strategy()))

    def observe(self, action: int, utility: float) -> None:
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action {action} out of range")
        value = max(0.0, utility)
        if not self._visited[action]:
            self._estimates[action] = value
            self._visited[action] = True
        else:
            self._estimates[action] += self._step_size * (
                value - self._estimates[action]
            )
        self._advance_stage()
