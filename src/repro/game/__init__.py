"""Game-theoretic substrate: the helper-selection game and baseline dynamics.

The paper models helper selection as a non-cooperative repeated game (a
player-specific congestion game in the sense of Milchtaich [16]): each of
``N`` peers picks one of ``H`` helpers, a helper's capacity is split evenly
among the peers that picked it, and each peer's stage utility is its
received streaming rate.

This package contains:

* :mod:`repro.game.interfaces` — the minimal ``Learner`` protocol every
  strategy object implements (``act``/``observe``), shared by the learning
  algorithms in :mod:`repro.core` and the baselines here.
* :mod:`repro.game.strategic_game` — generic finite normal-form games.
* :mod:`repro.game.helper_selection` — the stage game itself.
* :mod:`repro.game.nash` — pure Nash equilibria of the stage game.
* :mod:`repro.game.best_response` — (simultaneous) best-response dynamics,
  exhibiting the herd-oscillation pathology of paper Sec. III-B, plus the
  sequential variant that converges.
* :mod:`repro.game.fictitious_play` and :mod:`repro.game.baselines` —
  additional comparison strategies (fictitious play, uniform random,
  sticky-random).
* :mod:`repro.game.repeated_game` — the stage-synchronous driver that runs a
  population of learners against a (possibly time-varying) capacity process
  and records full trajectories.
"""

from repro.game.asynchronous import AsynchronousGameDriver
from repro.game.baselines import (
    EpsilonGreedyLearner,
    ProportionalSamplerLearner,
    StickyLearner,
    UniformRandomLearner,
)
from repro.game.best_response import (
    BestResponseLearner,
    sequential_best_response,
    simultaneous_best_response_path,
)
from repro.game.fictitious_play import FictitiousPlayLearner
from repro.game.helper_selection import HelperSelectionGame, loads_from_profile
from repro.game.interfaces import Learner
from repro.game.nash import (
    enumerate_pure_nash,
    greedy_balanced_assignment,
    is_pure_nash,
)
from repro.game.potential import (
    exact_potential,
    greedy_potential_ascent,
    potential_maximizing_loads,
    potential_of_profile,
)
from repro.game.repeated_game import RepeatedGameDriver, StageRecord, Trajectory
from repro.game.strategic_game import NormalFormGame, TabularGame

__all__ = [
    "Learner",
    "NormalFormGame",
    "TabularGame",
    "HelperSelectionGame",
    "loads_from_profile",
    "enumerate_pure_nash",
    "greedy_balanced_assignment",
    "is_pure_nash",
    "exact_potential",
    "potential_of_profile",
    "potential_maximizing_loads",
    "greedy_potential_ascent",
    "BestResponseLearner",
    "sequential_best_response",
    "simultaneous_best_response_path",
    "FictitiousPlayLearner",
    "UniformRandomLearner",
    "StickyLearner",
    "EpsilonGreedyLearner",
    "ProportionalSamplerLearner",
    "RepeatedGameDriver",
    "AsynchronousGameDriver",
    "StageRecord",
    "Trajectory",
]
