"""The ``repro``-namespaced logging hierarchy.

Every package logs under a child of the ``repro`` root logger —
``repro.runtime``, ``repro.sim``, ``repro.spec``, ``repro.analysis`` —
so one knob controls the whole library and host applications can route
or silence it like any well-behaved dependency.  The library itself
never calls :func:`logging.basicConfig`; it only emits.  The CLI's
``--log-level`` flag calls :func:`configure_logging` to attach a
stderr handler; embedders configure the ``repro`` logger however their
application does.
"""

from __future__ import annotations

import logging
from typing import Optional

#: Valid ``--log-level`` choices, in increasing severity.
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: str) -> logging.Logger:
    """The logger for a repro subsystem (``get_logger("runtime")``).

    Accepts either the bare subsystem name or an already-qualified
    ``repro.*`` dotted path.
    """
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


def configure_logging(
    level: str = "warning", stream=None
) -> logging.Logger:
    """Attach a stream handler to the ``repro`` root logger.

    Idempotent: reconfiguring replaces the handler installed by a
    previous call instead of stacking duplicates (repeated CLI
    invocations in one process, tests).  Returns the ``repro`` logger.
    """
    level = str(level).lower()
    if level not in LOG_LEVELS:
        raise ValueError(
            f"log level must be one of {LOG_LEVELS}, got {level!r}"
        )
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_cli_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler._repro_cli_handler = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(getattr(logging, level.upper()))
    # Do not leak records to the root logger's handlers on top of ours.
    logger.propagate = False
    return logger


def logging_level_name(logger: Optional[logging.Logger] = None) -> str:
    """The effective level of the ``repro`` hierarchy, lowercased."""
    logger = logger if logger is not None else logging.getLogger("repro")
    return logging.getLevelName(logger.getEffectiveLevel()).lower()
