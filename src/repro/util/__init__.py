"""Shared utilities: seeded randomness, argument validation, small numerics.

Every stochastic component in :mod:`repro` draws randomness from a
:class:`numpy.random.Generator` injected at construction time.  The helpers
in :mod:`repro.util.rng` make it easy to derive independent, reproducible
streams for sub-components from a single experiment seed.
"""

from repro.util.logconfig import configure_logging, get_logger
from repro.util.rng import as_generator, spawn, spawn_many
from repro.util.validation import (
    require_in_closed_unit_interval,
    require_non_negative,
    require_positive,
    require_positive_int,
    require_probability_vector,
    require_square_matrix,
)

__all__ = [
    "configure_logging",
    "get_logger",
    "as_generator",
    "spawn",
    "spawn_many",
    "require_in_closed_unit_interval",
    "require_non_negative",
    "require_positive",
    "require_positive_int",
    "require_probability_vector",
    "require_square_matrix",
]
