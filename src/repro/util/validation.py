"""Argument-validation helpers shared across the library.

These raise early, with messages that name the offending parameter, so that
mis-configured experiments fail at construction rather than deep inside a
simulation loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_PROB_ATOL = 1e-9


def require_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, else raise ``ValueError``."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def require_non_negative(value: float, name: str) -> float:
    """Return ``value`` if >= 0, else raise ``ValueError``."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return float(value)


def require_positive_int(value: int, name: str) -> int:
    """Return ``value`` if a strictly positive integer, else raise."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def require_in_closed_unit_interval(value: float, name: str) -> float:
    """Return ``value`` if in ``[0, 1]``, else raise ``ValueError``."""
    if not np.isfinite(value) or value < 0 or value > 1:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def require_probability_vector(vec: Sequence[float], name: str) -> np.ndarray:
    """Validate and return ``vec`` as a 1-D probability vector.

    Entries must be non-negative and sum to 1 within a small tolerance; the
    returned array is renormalized exactly.
    """
    arr = np.asarray(vec, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-D vector")
    if np.any(~np.isfinite(arr)) or np.any(arr < -_PROB_ATOL):
        raise ValueError(f"{name} must have finite non-negative entries, got {arr!r}")
    total = arr.sum()
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"{name} must sum to 1 (got sum={total!r})")
    arr = np.clip(arr, 0.0, None)
    return arr / arr.sum()


def require_square_matrix(mat: Sequence[Sequence[float]], name: str) -> np.ndarray:
    """Validate and return ``mat`` as a square 2-D float array."""
    arr = np.asarray(mat, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1] or arr.shape[0] == 0:
        raise ValueError(f"{name} must be a non-empty square matrix, got shape {arr.shape}")
    if np.any(~np.isfinite(arr)):
        raise ValueError(f"{name} must have finite entries")
    return arr


def require_stochastic_matrix(mat: Sequence[Sequence[float]], name: str) -> np.ndarray:
    """Validate and return ``mat`` as a row-stochastic square matrix."""
    arr = require_square_matrix(mat, name)
    if np.any(arr < -_PROB_ATOL):
        raise ValueError(f"{name} must have non-negative entries")
    rows = arr.sum(axis=1)
    if np.any(np.abs(rows - 1.0) > 1e-6):
        raise ValueError(f"{name} rows must each sum to 1, got row sums {rows!r}")
    arr = np.clip(arr, 0.0, None)
    return arr / arr.sum(axis=1, keepdims=True)
