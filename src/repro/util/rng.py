"""Reproducible random-number-generator plumbing.

The repository convention is:

* public constructors accept ``rng`` as either ``None``, an integer seed, or
  an existing :class:`numpy.random.Generator`;
* components never call :func:`numpy.random.default_rng` implicitly at use
  time — all randomness is bound at construction, so an experiment is fully
  determined by the seeds passed at the top;
* sub-components receive *spawned* children so that adding a new consumer of
  randomness does not perturb the streams of existing ones.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

Seedish = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(rng: Seedish = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS-entropy generator), an ``int`` seed, a
    :class:`numpy.random.SeedSequence`, or an existing generator (returned
    unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(
        f"rng must be None, int, SeedSequence or numpy Generator, got {type(rng)!r}"
    )


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Derive one statistically independent child generator from ``rng``."""
    return spawn_many(rng, 1)[0]


def spawn_many(rng: np.random.Generator, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Children are seeded from the parent's bit stream, so the parent's state
    advances; repeated calls yield fresh, non-overlapping streams.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def stable_choice(rng: np.random.Generator, weights: Iterable[float]) -> int:
    """Sample an index proportionally to ``weights`` (need not be normalized).

    Raises :class:`ValueError` on negative or all-zero weights.
    """
    w = np.asarray(list(weights), dtype=float)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must not all be zero")
    return int(rng.choice(w.size, p=w / total))


def derive_seed(rng: np.random.Generator) -> Optional[int]:
    """Draw a fresh 63-bit integer seed from ``rng``."""
    return int(rng.integers(0, 2**63 - 1))
