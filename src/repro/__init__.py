"""repro — reproduction of "Decentralized Adaptive Helper Selection in
Multi-channel P2P Streaming Systems" (Mostafavi & Dehghan, ICDCS 2014).

The package implements the paper's RTHS / R2HS regret-tracking helper
selection algorithms, the multi-channel P2P streaming substrate they run
on, the centralized MDP (occupation-measure LP) benchmark, and the full
evaluation harness regenerating every figure in the paper's Section IV.

Quick start::

    import repro

    scenario = repro.small_scale_scenario()
    process = repro.make_capacity_process(scenario, rng=1)
    population = repro.make_learner_population(scenario, rng=2)
    trajectory = population.run(process, scenario.num_stages)
    print(trajectory.welfare[-100:].mean())

For population-scale full-system runs use the vectorized runtime::

    system = repro.make_vectorized_system(repro.massive_scale_scenario(), rng=0)
    trace = system.run(100)

See ``examples/`` for end-to-end scripts and the repository ``README.md``
for the system inventory and the scalar-vs-vectorized backend guide.
"""

from repro.core import (
    LearnerPopulation,
    R2HSLearner,
    RTHSLearner,
    empirical_ce_regret,
    empirical_ce_regret_report,
    is_epsilon_correlated_equilibrium,
    regret_matching_learner,
    solve_ce_lp,
)
from repro.game import (
    BestResponseLearner,
    FictitiousPlayLearner,
    HelperSelectionGame,
    RepeatedGameDriver,
    StickyLearner,
    Trajectory,
    UniformRandomLearner,
)
from repro.game.repeated_game import StaticCapacities
from repro.mdp import (
    BatchMarkovChains,
    MarkovChain,
    birth_death_chain,
    optimal_welfare_for_state,
    solve_occupation_lp,
    solve_symmetric_optimum,
)
from repro.analysis import ParallelRunner
from repro.metrics import jain_index, load_balance_report, server_load_report
from repro.multichannel import AdaptiveAllocator, JointMultiChannelSystem
from repro.runtime import (
    PeerStore,
    R2HSBank,
    RTHSBank,
    StickyBank,
    UniformBank,
    VectorizedStreamingSystem,
    bank_factory,
)
from repro.sim import (
    PAPER_BANDWIDTH_LEVELS,
    ChurnConfig,
    MarkovCapacityProcess,
    StreamingSystem,
    SystemConfig,
    TraceCapacityProcess,
    VectorizedCapacityProcess,
    paper_bandwidth_process,
)
from repro.spec import (
    CapacitySpec,
    ChurnSpec,
    ExperimentSpec,
    LearnerSpec,
    MetricsSpec,
    SweepSpec,
    TopologySpec,
    UnknownComponentError,
    register_capacity_backend,
    register_learner,
    register_metric,
    register_scenario,
)
from repro.workloads import (
    Scenario,
    fig5_scenario,
    flash_crowd_spec,
    large_scale_scenario,
    make_capacity_process,
    make_learner_population,
    make_system_config,
    make_vectorized_system,
    massive_scale_scenario,
    popularity_skew_spec,
    small_scale_scenario,
    spec_for_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "RTHSLearner",
    "R2HSLearner",
    "regret_matching_learner",
    "LearnerPopulation",
    "empirical_ce_regret",
    "empirical_ce_regret_report",
    "is_epsilon_correlated_equilibrium",
    "solve_ce_lp",
    # game
    "HelperSelectionGame",
    "RepeatedGameDriver",
    "Trajectory",
    "StaticCapacities",
    "BestResponseLearner",
    "FictitiousPlayLearner",
    "UniformRandomLearner",
    "StickyLearner",
    # mdp
    "MarkovChain",
    "birth_death_chain",
    "solve_occupation_lp",
    "solve_symmetric_optimum",
    "optimal_welfare_for_state",
    # sim
    "PAPER_BANDWIDTH_LEVELS",
    "MarkovCapacityProcess",
    "TraceCapacityProcess",
    "paper_bandwidth_process",
    "VectorizedCapacityProcess",
    "BatchMarkovChains",
    "StreamingSystem",
    "SystemConfig",
    "ChurnConfig",
    # metrics
    "jain_index",
    "load_balance_report",
    "server_load_report",
    # multichannel
    "AdaptiveAllocator",
    "JointMultiChannelSystem",
    # runtime
    "PeerStore",
    "RTHSBank",
    "R2HSBank",
    "UniformBank",
    "StickyBank",
    "bank_factory",
    "VectorizedStreamingSystem",
    # analysis
    "ParallelRunner",
    # spec
    "ExperimentSpec",
    "TopologySpec",
    "CapacitySpec",
    "LearnerSpec",
    "ChurnSpec",
    "MetricsSpec",
    "SweepSpec",
    "UnknownComponentError",
    "register_capacity_backend",
    "register_learner",
    "register_metric",
    "register_scenario",
    # workloads
    "Scenario",
    "small_scale_scenario",
    "large_scale_scenario",
    "fig5_scenario",
    "massive_scale_scenario",
    "spec_for_scenario",
    "popularity_skew_spec",
    "flash_crowd_spec",
    "make_capacity_process",
    "make_learner_population",
    "make_system_config",
    "make_vectorized_system",
]
