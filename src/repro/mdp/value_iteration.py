"""Generic finite MDPs and (relative) value iteration.

Used to cross-check the occupation-measure LP: the cooperative helper
assignment problem is an average-reward MDP whose state is the helper
bandwidth vector, whose actions are load vectors, and whose dynamics are
*uncontrolled* (the chains move on their own).  Relative value iteration on
that MDP must recover the same optimal gain as the LP and the symmetric
closed form — ``tests/mdp/test_cross_check.py`` asserts all three agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class FiniteMDP:
    """A finite MDP with dense tensors.

    Attributes
    ----------
    transitions:
        Array ``(S, A, S)``; ``transitions[s, a, s']`` is the probability of
        moving to ``s'`` when playing ``a`` in ``s``.  Rows must sum to 1.
    rewards:
        Array ``(S, A)`` of expected one-step rewards.
    """

    transitions: np.ndarray
    rewards: np.ndarray

    def __post_init__(self) -> None:
        t = np.asarray(self.transitions, dtype=float)
        r = np.asarray(self.rewards, dtype=float)
        if t.ndim != 3 or t.shape[0] != t.shape[2]:
            raise ValueError(f"transitions must be (S, A, S), got {t.shape}")
        if r.shape != t.shape[:2]:
            raise ValueError(
                f"rewards shape {r.shape} incompatible with transitions {t.shape}"
            )
        if np.any(t < -1e-9):
            raise ValueError("transition probabilities must be non-negative")
        sums = t.sum(axis=2)
        if np.any(np.abs(sums - 1.0) > 1e-6):
            raise ValueError("transition rows must sum to 1")
        object.__setattr__(self, "transitions", t)
        object.__setattr__(self, "rewards", r)

    @property
    def num_states(self) -> int:
        """Number of states ``S``."""
        return self.transitions.shape[0]

    @property
    def num_actions(self) -> int:
        """Number of actions ``A``."""
        return self.transitions.shape[1]


def value_iteration(
    mdp: FiniteMDP,
    discount: float,
    tolerance: float = 1e-9,
    max_iterations: int = 100000,
) -> Tuple[np.ndarray, np.ndarray]:
    """Discounted value iteration.

    Returns ``(values, policy)`` where ``values`` has shape ``(S,)`` and
    ``policy[s]`` is a greedy optimal action.
    """
    if not 0 <= discount < 1:
        raise ValueError("discount must lie in [0, 1)")
    v = np.zeros(mdp.num_states)
    for _ in range(max_iterations):
        q = mdp.rewards + discount * np.einsum("sat,t->sa", mdp.transitions, v)
        new_v = q.max(axis=1)
        if np.max(np.abs(new_v - v)) < tolerance * (1.0 - discount):
            v = new_v
            break
        v = new_v
    else:
        raise RuntimeError("value iteration did not converge")
    q = mdp.rewards + discount * np.einsum("sat,t->sa", mdp.transitions, v)
    return v, q.argmax(axis=1)


def relative_value_iteration(
    mdp: FiniteMDP,
    tolerance: float = 1e-9,
    max_iterations: int = 200000,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Average-reward (relative) value iteration for unichain MDPs.

    Returns ``(gain, bias, policy)`` — ``gain`` is the optimal long-run
    average reward (the quantity the occupation LP maximizes).
    """
    h = np.zeros(mdp.num_states)
    gain = 0.0
    for _ in range(max_iterations):
        q = mdp.rewards + np.einsum("sat,t->sa", mdp.transitions, h)
        new_h = q.max(axis=1)
        # Span-based convergence test.
        diff = new_h - h
        span = diff.max() - diff.min()
        gain = 0.5 * (diff.max() + diff.min())
        h = new_h - new_h[0]  # pin one component to keep the iterates bounded
        if span < tolerance:
            break
    else:
        raise RuntimeError("relative value iteration did not converge")
    q = mdp.rewards + np.einsum("sat,t->sa", mdp.transitions, h)
    return float(gain), h, q.argmax(axis=1)
