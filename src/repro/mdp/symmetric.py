"""Exact cooperative optimum exploiting peer exchangeability.

The verbatim occupation LP enumerates ``H^N`` assignments — hopeless for the
paper's scenarios (N in the tens to hundreds).  But peers are exchangeable:
welfare depends on the assignment only through the *load vector*
``(n_1..n_H)``, so the per-state optimization reduces to a search over
occupied-helper subsets (and, with connection costs, over how many peers pay
which cost).  With the paper's pure even-split utility the per-state optimum
is simply the total capacity of the ``min(N, H)`` best helpers.

This module provides that reduction plus a canonical *fair* optimal
assignment (water-filling over the occupied helpers), which is what the
Fig. 2 benchmark uses as the MDP reference line.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.mdp.markov_chain import MarkovChain

StateVector = Tuple[int, ...]


def optimal_welfare_for_state(
    capacities: Sequence[float],
    num_peers: int,
    connection_costs: Optional[Sequence[float]] = None,
) -> float:
    """Maximum social welfare achievable in one stage.

    With zero costs: sum of the ``min(N, H)`` largest capacities (occupying
    a helper contributes its full capacity regardless of how many peers
    share it).  With per-connection costs ``c_j``, occupying helper ``j``
    with one peer contributes ``C_j - c_j`` and every extra peer costs a
    further ``c_j``, so the optimum occupies helpers with positive margin
    (at most ``N``) and parks surplus peers on the cheapest occupied helper.
    """
    caps = np.asarray(capacities, dtype=float)
    if caps.ndim != 1 or caps.size == 0:
        raise ValueError("capacities must be non-empty and 1-D")
    if num_peers < 1:
        raise ValueError("num_peers must be >= 1")
    h = caps.size
    if connection_costs is None:
        costs = np.zeros(h)
    else:
        costs = np.asarray(connection_costs, dtype=float)
        if costs.shape != caps.shape:
            raise ValueError("connection_costs must match capacities")

    if np.all(costs == 0):
        top = np.sort(caps)[::-1][: min(num_peers, h)]
        return float(top.sum())

    # Margins of occupying each helper with exactly one peer.
    margins = caps - costs
    order = np.argsort(margins)[::-1]
    best = -np.inf
    # Try occupying the best m helpers for each feasible m; surplus peers go
    # to the occupied helper with the smallest per-peer cost.
    for m in range(1, min(num_peers, h) + 1):
        chosen = order[:m]
        base = margins[chosen].sum()
        surplus = num_peers - m
        total = base - surplus * costs[chosen].min()
        best = max(best, float(total))
    return best


def optimal_assignment_for_state(
    capacities: Sequence[float],
    num_peers: int,
    connection_costs: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """A welfare-optimal *and* fair load vector for one stage.

    Among welfare-optimal allocations (all allocations occupying the right
    helper set are welfare-equal under even splitting, costs aside) this
    picks the water-filling one: each successive peer joins the occupied
    helper offering the highest marginal rate, maximizing the minimum
    per-peer rate.  Returns the load vector ``(n_1..n_H)``.
    """
    caps = np.asarray(capacities, dtype=float)
    h = caps.size
    if num_peers < 1:
        raise ValueError("num_peers must be >= 1")
    if connection_costs is None:
        costs = np.zeros(h)
    else:
        costs = np.asarray(connection_costs, dtype=float)

    # Choose the occupied set exactly as optimal_welfare_for_state does.
    if np.all(costs == 0):
        occupied = np.argsort(caps)[::-1][: min(num_peers, h)]
    else:
        margins = caps - costs
        order = np.argsort(margins)[::-1]
        best_value, best_m = -np.inf, 1
        for m in range(1, min(num_peers, h) + 1):
            chosen = order[:m]
            total = margins[chosen].sum() - (num_peers - m) * costs[chosen].min()
            if total > best_value:
                best_value, best_m = float(total), m
        occupied = order[:best_m]

    loads = np.zeros(h, dtype=int)
    loads[occupied] = 1
    remaining = num_peers - occupied.size
    for _ in range(remaining):
        # Water-filling: add the next peer where the post-join rate is best.
        rates = np.full(h, -np.inf)
        rates[occupied] = caps[occupied] / (loads[occupied] + 1)
        j = int(np.argmax(rates))
        loads[j] += 1
    return loads


@dataclass(frozen=True)
class SymmetricOptimum:
    """Expected cooperative optimum over the joint helper-state space."""

    value: float
    per_state_value: Dict[StateVector, float]
    per_state_loads: Dict[StateVector, np.ndarray]
    stationary: Dict[StateVector, float]


def solve_symmetric_optimum(
    chains: Sequence[MarkovChain],
    num_peers: int,
    connection_costs: Optional[Sequence[float]] = None,
    state_limit: int = 200000,
) -> SymmetricOptimum:
    """``sum_y pi(y) * W*(y)`` with the per-state optimum in closed form.

    Exact for any ``N``; joint state space must stay under ``state_limit``
    (3 bandwidth levels and H <= 10 helpers is 59049 states).  Accepts a
    sequence of scalar chains or a
    :class:`~repro.mdp.markov_chain.BatchMarkovChains` bank (the
    vectorized capacity engine's representation).
    """
    from repro.mdp.markov_chain import BatchMarkovChains

    if isinstance(chains, BatchMarkovChains):
        chains = chains.to_chains()
    if not chains:
        raise ValueError("need at least one helper chain")
    if num_peers < 1:
        raise ValueError("num_peers must be >= 1")
    num_helpers = len(chains)
    states = list(itertools.product(*[range(c.num_states) for c in chains]))
    if len(states) > state_limit:
        raise ValueError(f"joint state space has {len(states)} states, too large")
    pis = [c.stationary_distribution() for c in chains]
    per_state_value: Dict[StateVector, float] = {}
    per_state_loads: Dict[StateVector, np.ndarray] = {}
    stationary: Dict[StateVector, float] = {}
    value = 0.0
    for y in states:
        pi_y = float(np.prod([pis[j][y[j]] for j in range(num_helpers)]))
        caps = np.array([chains[j].states[y[j]] for j in range(num_helpers)])
        w = optimal_welfare_for_state(caps, num_peers, connection_costs)
        per_state_value[y] = w
        per_state_loads[y] = optimal_assignment_for_state(
            caps, num_peers, connection_costs
        )
        stationary[y] = pi_y
        value += pi_y * w
    return SymmetricOptimum(
        value=value,
        per_state_value=per_state_value,
        per_state_loads=per_state_loads,
        stationary=stationary,
    )


def optimal_welfare_series(
    capacity_series: np.ndarray,
    num_peers: int,
    connection_costs: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Per-stage cooperative optimum along a realized capacity path.

    ``capacity_series`` has shape ``(T, H)``; the result ``(T,)`` is the
    upper envelope the Fig. 2 benchmark plots RTHS welfare against.
    """
    series = np.asarray(capacity_series, dtype=float)
    if series.ndim != 2:
        raise ValueError("capacity_series must have shape (T, H)")
    return np.array(
        [
            optimal_welfare_for_state(series[t], num_peers, connection_costs)
            for t in range(series.shape[0])
        ]
    )
