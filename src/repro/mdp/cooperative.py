"""Build the cooperative helper-assignment MDP explicitly.

State: the joint helper bandwidth vector ``y`` (product of the per-helper
chains).  Action: an anonymous load vector ``(n_1..n_H)`` with
``sum n_j = N`` (peer exchangeability makes identities irrelevant).
Dynamics: the product chain, independent of the action.  Reward: social
welfare of the load vector under the stage capacities.

The resulting :class:`~repro.mdp.value_iteration.FiniteMDP` feeds relative
value iteration; because dynamics are uncontrolled its optimal gain equals
the occupation-LP optimum and the symmetric closed form.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.game.nash import compositions
from repro.mdp.markov_chain import MarkovChain
from repro.mdp.value_iteration import FiniteMDP

StateVector = Tuple[int, ...]


def build_cooperative_mdp(
    chains: Sequence[MarkovChain],
    num_peers: int,
    connection_costs: Optional[Sequence[float]] = None,
    state_limit: int = 5000,
    action_limit: int = 5000,
) -> Tuple[FiniteMDP, List[StateVector], List[Tuple[int, ...]]]:
    """Materialize the cooperative MDP as dense tensors.

    Returns ``(mdp, states, actions)`` where ``states`` indexes the joint
    helper-state vectors and ``actions`` the load vectors.
    """
    if not chains:
        raise ValueError("need at least one helper chain")
    if num_peers < 1:
        raise ValueError("num_peers must be >= 1")
    num_helpers = len(chains)
    states: List[StateVector] = list(
        itertools.product(*[range(c.num_states) for c in chains])
    )
    if len(states) > state_limit:
        raise ValueError(f"{len(states)} joint states exceed limit {state_limit}")
    actions: List[Tuple[int, ...]] = list(compositions(num_peers, num_helpers))
    if len(actions) > action_limit:
        raise ValueError(f"{len(actions)} load vectors exceed limit {action_limit}")
    if connection_costs is None:
        costs = np.zeros(num_helpers)
    else:
        costs = np.asarray(connection_costs, dtype=float)
        if costs.shape != (num_helpers,):
            raise ValueError("connection_costs must have one entry per helper")

    num_states, num_actions = len(states), len(actions)
    state_index = {y: i for i, y in enumerate(states)}

    transitions = np.zeros((num_states, num_actions, num_states))
    rewards = np.zeros((num_states, num_actions))
    for si, y in enumerate(states):
        caps = np.array([chains[j].states[y[j]] for j in range(num_helpers)])
        for ai, loads in enumerate(actions):
            loads_arr = np.asarray(loads)
            occupied = loads_arr > 0
            rewards[si, ai] = float(
                caps[occupied].sum() - (loads_arr[occupied] * costs[occupied]).sum()
            )
        # Uncontrolled product dynamics: same row for every action.
        for y_next in states:
            prob = 1.0
            for j in range(num_helpers):
                prob *= chains[j].transition[y[j], y_next[j]]
            if prob > 0:
                transitions[si, :, state_index[y_next]] = prob
    return FiniteMDP(transitions=transitions, rewards=rewards), states, actions
