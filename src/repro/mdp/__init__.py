"""Markov-chain substrate and the centralized MDP benchmark (paper Sec. IV-A).

Contents
--------

* :mod:`repro.mdp.markov_chain` — finite ergodic Markov chains, stationary
  distributions, and the slow-switching birth–death chains that drive helper
  upload bandwidth in the paper's evaluation.
* :mod:`repro.mdp.occupation_lp` — the cooperative optimization of Sec. IV-A
  expressed as a linear program over global occupation measures
  ``rho(y, x)`` and solved exactly with :func:`scipy.optimize.linprog`.
* :mod:`repro.mdp.symmetric` — an exact, composition-based reformulation of
  the same optimum that exploits peer exchangeability, tractable for the
  large ``N`` used in the paper's figures.
* :mod:`repro.mdp.value_iteration` — a generic finite MDP value-iteration
  solver used to cross-check the LP on small instances.
"""

from repro.mdp.cooperative import build_cooperative_mdp
from repro.mdp.markov_chain import (
    BatchMarkovChains,
    MarkovChain,
    birth_death_chain,
    birth_death_transition,
    lazy_uniform_chain,
)
from repro.mdp.occupation_lp import (
    CentralizedMDPSolution,
    decomposed_optimum,
    solve_occupation_lp,
)
from repro.mdp.symmetric import (
    SymmetricOptimum,
    optimal_assignment_for_state,
    optimal_welfare_for_state,
    optimal_welfare_series,
    solve_symmetric_optimum,
)
from repro.mdp.value_iteration import (
    FiniteMDP,
    relative_value_iteration,
    value_iteration,
)

__all__ = [
    "MarkovChain",
    "BatchMarkovChains",
    "birth_death_chain",
    "birth_death_transition",
    "lazy_uniform_chain",
    "CentralizedMDPSolution",
    "solve_occupation_lp",
    "decomposed_optimum",
    "SymmetricOptimum",
    "optimal_assignment_for_state",
    "optimal_welfare_for_state",
    "optimal_welfare_series",
    "solve_symmetric_optimum",
    "FiniteMDP",
    "value_iteration",
    "relative_value_iteration",
    "build_cooperative_mdp",
]
