"""The centralized MDP benchmark as an occupation-measure LP (paper Sec. IV-A).

The cooperative problem: a single controller (the streaming server) observes
the helper-state vector ``y`` (each helper's bandwidth level, an independent
ergodic Markov chain) and assigns every peer a helper, i.e. picks
``x = (x_1..x_N)``.  Over randomized stationary policies ``s(x|y)`` the
average social welfare is linear in the *global occupation measure*

    rho(y, x) = pi(y) * s(x|y),        pi(y) = prod_j pi_j(y_j)

giving the LP (paper Sec. IV-A):

    max_rho  sum_{y,x} u(y, x) rho(y, x)
    s.t.     sum_x rho(y, x) = pi(y)          for every y
             rho >= 0
             (sum_{y,x} rho(y,x) = 1 is implied)

Because the helper chains are uncontrolled, the LP decomposes per state and
the optimum is attained by a deterministic policy; we still build and solve
the full LP with ``scipy.optimize.linprog`` (it *is* the paper's benchmark),
and cross-check against the decomposed argmax and relative value iteration
in the tests.  Profile spaces grow as ``H^N * prod|Y_j|``, so the verbatim
LP is for small instances; :mod:`repro.mdp.symmetric` handles the paper's
larger scenarios by exploiting peer exchangeability.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.mdp.markov_chain import MarkovChain

StateVector = Tuple[int, ...]
Assignment = Tuple[int, ...]
WelfareFunction = Callable[[np.ndarray, Assignment], float]


def even_split_welfare(capacities: np.ndarray, assignment: Assignment) -> float:
    """Social welfare under even splitting: total capacity of occupied helpers."""
    loads = np.bincount(np.asarray(assignment), minlength=capacities.size)
    return float(capacities[loads > 0].sum())


@dataclass(frozen=True)
class CentralizedMDPSolution:
    """Solution of the cooperative occupation-measure LP.

    Attributes
    ----------
    value:
        Optimal expected per-stage social welfare.
    policy:
        Mapping helper-state vector -> (assignment -> probability).  Only
        states with positive stationary mass appear.
    stationary:
        Mapping helper-state vector -> stationary probability pi(y).
    per_state_value:
        Mapping helper-state vector -> conditional optimal welfare.
    """

    value: float
    policy: Dict[StateVector, Dict[Assignment, float]]
    stationary: Dict[StateVector, float]
    per_state_value: Dict[StateVector, float]

    def assignment_for(self, state: StateVector) -> Assignment:
        """Most probable assignment under the policy at ``state``."""
        options = self.policy.get(tuple(state))
        if not options:
            raise KeyError(f"no policy entry for state {state}")
        return max(options.items(), key=lambda kv: kv[1])[0]


def solve_occupation_lp(
    chains: Sequence[MarkovChain],
    num_peers: int,
    welfare: Optional[WelfareFunction] = None,
    state_limit: int = 2000,
    assignment_limit: int = 5000,
) -> CentralizedMDPSolution:
    """Build and solve the Sec. IV-A LP exactly.

    Parameters
    ----------
    chains:
        One ergodic Markov chain per helper; ``chains[j].states`` are that
        helper's bandwidth levels.
    num_peers:
        Number of peers ``N`` to assign each stage.
    welfare:
        ``welfare(capacities, assignment) -> float``; defaults to the even
        split welfare of the paper's utility.
    state_limit, assignment_limit:
        Guards on the enumerated joint spaces.
    """
    if num_peers < 1:
        raise ValueError("num_peers must be >= 1")
    if not chains:
        raise ValueError("need at least one helper chain")
    welfare_fn = welfare if welfare is not None else even_split_welfare

    num_helpers = len(chains)
    state_spaces = [range(c.num_states) for c in chains]
    states: List[StateVector] = list(itertools.product(*state_spaces))
    if len(states) > state_limit:
        raise ValueError(
            f"joint helper-state space has {len(states)} entries, "
            f"over limit {state_limit}"
        )
    assignments: List[Assignment] = list(
        itertools.product(range(num_helpers), repeat=num_peers)
    )
    if len(assignments) > assignment_limit:
        raise ValueError(
            f"assignment space has {len(assignments)} entries, over limit "
            f"{assignment_limit}; use repro.mdp.symmetric for large N"
        )

    pis = [c.stationary_distribution() for c in chains]
    pi_of: Dict[StateVector, float] = {}
    for y in states:
        pi_of[y] = float(np.prod([pis[j][y[j]] for j in range(num_helpers)]))

    caps_of: Dict[StateVector, np.ndarray] = {
        y: np.array([chains[j].states[y[j]] for j in range(num_helpers)])
        for y in states
    }

    num_vars = len(states) * len(assignments)

    def var(yi: int, xi: int) -> int:
        return yi * len(assignments) + xi

    c = np.empty(num_vars)
    for yi, y in enumerate(states):
        caps = caps_of[y]
        for xi, x in enumerate(assignments):
            c[var(yi, xi)] = -welfare_fn(caps, x)  # linprog minimizes

    a_eq = np.zeros((len(states), num_vars))
    b_eq = np.empty(len(states))
    for yi, y in enumerate(states):
        a_eq[yi, var(yi, 0) : var(yi, len(assignments) - 1) + 1] = 1.0
        b_eq[yi] = pi_of[y]

    result = linprog(
        c,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0, None)] * num_vars,
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"occupation LP failed: {result.message}")

    rho = np.clip(result.x, 0.0, None).reshape(len(states), len(assignments))
    policy: Dict[StateVector, Dict[Assignment, float]] = {}
    per_state_value: Dict[StateVector, float] = {}
    for yi, y in enumerate(states):
        mass = rho[yi].sum()
        if mass <= 1e-15:
            continue
        conditional = rho[yi] / mass
        entries = {
            assignments[xi]: float(conditional[xi])
            for xi in range(len(assignments))
            if conditional[xi] > 1e-12
        }
        policy[y] = entries
        caps = caps_of[y]
        per_state_value[y] = float(
            sum(prob * welfare_fn(caps, x) for x, prob in entries.items())
        )
    value = float(-result.fun)
    return CentralizedMDPSolution(
        value=value,
        policy=policy,
        stationary=pi_of,
        per_state_value=per_state_value,
    )


def decomposed_optimum(
    chains: Sequence[MarkovChain],
    num_peers: int,
    welfare: Optional[WelfareFunction] = None,
    state_limit: int = 200000,
    assignment_limit: int = 5000,
) -> float:
    """Per-state argmax shortcut: ``sum_y pi(y) max_x u(y, x)``.

    Valid because the helper chains are uncontrolled, so the LP decomposes;
    used to cross-check :func:`solve_occupation_lp` in the tests.
    """
    welfare_fn = welfare if welfare is not None else even_split_welfare
    num_helpers = len(chains)
    states = list(itertools.product(*[range(c.num_states) for c in chains]))
    if len(states) > state_limit:
        raise ValueError("state space too large")
    assignments = list(itertools.product(range(num_helpers), repeat=num_peers))
    if len(assignments) > assignment_limit:
        raise ValueError("assignment space too large; use repro.mdp.symmetric")
    pis = [c.stationary_distribution() for c in chains]
    total = 0.0
    for y in states:
        pi_y = float(np.prod([pis[j][y[j]] for j in range(num_helpers)]))
        caps = np.array([chains[j].states[y[j]] for j in range(num_helpers)])
        best = max(welfare_fn(caps, x) for x in assignments)
        total += pi_y * best
    return total
