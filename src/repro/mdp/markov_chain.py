"""Finite ergodic Markov chains.

The paper models each helper's available upload bandwidth as an independent
ergodic finite Markov chain over the levels ``[700, 800, 900]`` that switches
"according to a slowly changing random process" (Sec. IV).  This module
provides the chain abstraction plus the two canned constructors used by the
experiments:

* :func:`birth_death_chain` — nearest-neighbour transitions with a large
  self-loop probability (the "slowly changing" process);
* :func:`lazy_uniform_chain` — a lazy chain that jumps uniformly on change,
  used in ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.util.rng import Seedish, as_generator, spawn_many
from repro.util.validation import (
    require_in_closed_unit_interval,
    require_probability_vector,
    require_stochastic_matrix,
)


@dataclass
class MarkovChain:
    """A finite, time-homogeneous Markov chain.

    Parameters
    ----------
    transition:
        Row-stochastic ``S x S`` transition matrix ``P[s, s']``.
    states:
        Optional per-state labels/values (e.g. bandwidth levels in kbit/s).
        Defaults to ``0..S-1``.
    rng:
        Seed or generator driving the sample path.
    initial:
        Optional distribution over the initial state; defaults to the
        stationary distribution, so sample paths start in steady state as
        assumed by the occupation-measure LP.
    """

    transition: np.ndarray
    states: Optional[np.ndarray] = None
    rng: Seedish = None
    initial: Optional[Sequence[float]] = None
    _state: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        self.transition = require_stochastic_matrix(self.transition, "transition")
        n = self.transition.shape[0]
        if self.states is None:
            self.states = np.arange(n, dtype=float)
        else:
            self.states = np.asarray(self.states, dtype=float)
            if self.states.shape != (n,):
                raise ValueError(
                    f"states must have length {n}, got shape {self.states.shape}"
                )
        self.rng = as_generator(self.rng)
        if self.initial is None:
            init = self.stationary_distribution()
        else:
            init = require_probability_vector(self.initial, "initial")
            if init.size != n:
                raise ValueError(f"initial must have length {n}")
        self._state = int(self.rng.choice(n, p=init))

    @property
    def num_states(self) -> int:
        """Number of states ``S``."""
        return self.transition.shape[0]

    @property
    def state_index(self) -> int:
        """Current state index in ``0..S-1``."""
        return self._state

    @property
    def state_value(self) -> float:
        """Label/value of the current state."""
        return float(self.states[self._state])

    def step(self) -> int:
        """Advance one step; return the new state index."""
        self._state = int(
            self.rng.choice(self.num_states, p=self.transition[self._state])
        )
        return self._state

    def sample_path(self, length: int) -> np.ndarray:
        """Advance ``length`` steps and return the visited state indices."""
        if length < 0:
            raise ValueError("length must be >= 0")
        path = np.empty(length, dtype=int)
        for t in range(length):
            path[t] = self.step()
        return path

    def set_state(self, index: int) -> None:
        """Force the chain into state ``index`` (used by tests/scenarios)."""
        if not 0 <= index < self.num_states:
            raise ValueError(f"state index {index} out of range 0..{self.num_states - 1}")
        self._state = int(index)

    def stationary_distribution(self) -> np.ndarray:
        """Stationary distribution ``pi`` with ``pi P = pi``.

        Computed from the eigenvector of ``P^T`` at eigenvalue 1; raises
        :class:`ValueError` if the chain is not ergodic enough for a unique
        strictly positive solution (up to numerical tolerance).
        """
        return stationary_distribution(self.transition)

    def expected_state_value(self) -> float:
        """Stationary expectation of the state value ``E_pi[states]``."""
        return float(self.stationary_distribution() @ self.states)


def stationary_distribution(transition: np.ndarray) -> np.ndarray:
    """Stationary distribution of a row-stochastic matrix.

    Solves ``pi (P - I) = 0`` with the normalization ``sum(pi) = 1`` via a
    least-squares system, then validates uniqueness by checking the
    eigenvalue-1 multiplicity.
    """
    p = require_stochastic_matrix(transition, "transition")
    n = p.shape[0]
    # pi solves A^T pi = b with A = [P^T - I; 1^T].
    a = np.vstack([p.T - np.eye(n), np.ones((1, n))])
    b = np.zeros(n + 1)
    b[-1] = 1.0
    pi, *_ = np.linalg.lstsq(a, b, rcond=None)
    if np.any(pi < -1e-8):
        raise ValueError("transition matrix has no non-negative stationary vector; "
                         "is the chain ergodic?")
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0 or abs(total - 1.0) > 1e-6:
        raise ValueError("failed to normalize stationary distribution")
    resid = np.linalg.norm(pi @ p - pi, ord=1)
    if resid > 1e-6:
        raise ValueError(f"stationary residual too large ({resid}); chain may be periodic")
    return pi / total


def birth_death_transition(
    num_states: int, stay_probability: float
) -> np.ndarray:
    """The nearest-neighbour transition matrix behind :func:`birth_death_chain`."""
    if num_states < 2:
        raise ValueError("need at least two states")
    stay = require_in_closed_unit_interval(stay_probability, "stay_probability")
    n = int(num_states)
    move = 1.0 - stay
    p = np.zeros((n, n))
    for s in range(n):
        p[s, s] = stay
        if s == 0:
            p[s, 1] += move
        elif s == n - 1:
            p[s, n - 2] += move
        else:
            p[s, s - 1] += move / 2
            p[s, s + 1] += move / 2
    return p


def birth_death_chain(
    levels: Sequence[float],
    stay_probability: float = 0.9,
    rng: Seedish = None,
    initial: Optional[Sequence[float]] = None,
) -> MarkovChain:
    """Slowly-switching nearest-neighbour chain over ``levels``.

    With probability ``stay_probability`` the chain keeps its level; the
    remaining mass moves to adjacent levels (split evenly for interior
    states, all of it for boundary states).  With the default 0.9 this is
    the "slowly changing random process" over ``[700, 800, 900]`` of the
    paper's evaluation.
    """
    values = np.asarray(levels, dtype=float)
    if values.ndim != 1 or values.size < 2:
        raise ValueError("levels must be a 1-D sequence of at least two values")
    p = birth_death_transition(values.size, stay_probability)
    return MarkovChain(transition=p, states=values, rng=rng, initial=initial)


def lazy_uniform_chain(
    levels: Sequence[float],
    stay_probability: float = 0.9,
    rng: Seedish = None,
) -> MarkovChain:
    """Lazy chain that, when it moves, jumps uniformly over the other levels."""
    values = np.asarray(levels, dtype=float)
    if values.ndim != 1 or values.size < 2:
        raise ValueError("levels must be a 1-D sequence of at least two values")
    stay = require_in_closed_unit_interval(stay_probability, "stay_probability")
    n = values.size
    p = np.full((n, n), (1.0 - stay) / (n - 1))
    np.fill_diagonal(p, stay)
    return MarkovChain(transition=p, states=values, rng=rng)


class BatchMarkovChains:
    """``H`` independent finite Markov chains advanced in lock-step.

    The scalar :class:`MarkovChain` is one Python object per chain; stepping
    ``H`` of them costs ``H`` ``rng.choice`` calls per stage, which dominates
    environment advancement once ``H`` reaches the thousands.  This class
    keeps the whole bank in arrays:

    * ``state`` — ``(H,)`` current state indices,
    * ``group`` — ``(H,)`` index into a small set of *chain groups*; chains
      in a group share a transition matrix and level values (the paper's
      environment is one group; the heterogeneous scenario is two),
    * per-group transition matrices ``(G, S, S)`` with precomputed
      cumulative rows, so one stage is a single ``rng.random(H)`` draw plus
      an inverse-CDF lookup — no per-chain Python.

    The sample paths are exact: each chain follows its own transition law,
    and chains are independent because each consumes its own uniform per
    stage.  Only the RNG *stream layout* differs from a bank of scalar
    chains (one shared generator here, one child generator each there), so
    agreement with scalar banks is distributional — pinned by the
    stationary-occupancy and switching-rate tests.

    Parameters
    ----------
    transitions:
        ``(S, S)`` matrix shared by every chain, or ``(G, S, S)`` stacked
        per-group matrices (each row-stochastic).
    values:
        Per-state labels/values: ``(S,)`` shared, or ``(G, S)`` per group.
    num_chains:
        Number of chains ``H`` when ``groups`` is omitted.
    groups:
        Optional ``(H,)`` group index per chain; required when
        ``transitions`` is 3-D with ``G > 1``.
    rng:
        One generator drives the whole bank.
    initial_states:
        Optional ``(H,)`` explicit starting states; defaults to one draw
        per chain from its group's stationary distribution (matching the
        scalar chain's steady-state start).
    """

    def __init__(
        self,
        transitions: np.ndarray,
        values: np.ndarray,
        num_chains: Optional[int] = None,
        groups: Optional[Sequence[int]] = None,
        rng: Seedish = None,
        initial_states: Optional[Sequence[int]] = None,
    ) -> None:
        p = np.asarray(transitions, dtype=float)
        if p.ndim == 2:
            p = p[None]
        if p.ndim != 3 or p.shape[1] != p.shape[2]:
            raise ValueError("transitions must be (S, S) or (G, S, S)")
        for g in range(p.shape[0]):
            require_stochastic_matrix(p[g], f"transitions[{g}]")
        num_groups, num_states = p.shape[0], p.shape[1]

        vals = np.asarray(values, dtype=float)
        if vals.ndim == 1 and vals.shape == (num_states,):
            vals = np.broadcast_to(vals, (num_groups, num_states)).copy()
        if vals.shape != (num_groups, num_states):
            raise ValueError(
                f"values must be ({num_states},) or {(num_groups, num_states)}, "
                f"got shape {vals.shape}"
            )

        if groups is None:
            if num_groups != 1:
                raise ValueError("groups is required with more than one group")
            if num_chains is None:
                raise ValueError("pass num_chains (or groups)")
            if num_chains < 1:
                raise ValueError("num_chains must be >= 1")
            group = np.zeros(int(num_chains), dtype=np.intp)
        else:
            group = np.asarray(groups, dtype=np.intp)
            if group.ndim != 1 or group.size == 0:
                raise ValueError("groups must be a non-empty 1-D sequence")
            if group.min() < 0 or group.max() >= num_groups:
                raise ValueError("group index out of range")
            if num_chains is not None and num_chains != group.size:
                raise ValueError("num_chains disagrees with len(groups)")

        self._p = p
        self._cum = np.cumsum(p, axis=2)
        self._cum[:, :, -1] = 1.0  # guard fp drift in the last column
        self._values = vals
        self._group = group
        self._h = int(group.size)
        self._s = int(num_states)
        self._rng = as_generator(rng)
        self._stationary = np.stack(
            [stationary_distribution(p[g]) for g in range(num_groups)]
        )
        if initial_states is None:
            init_cum = np.cumsum(self._stationary, axis=1)[group]
            init_cum[:, -1] = 1.0
            self._state = self._inverse_cdf(init_cum, self._rng.random(self._h))
        else:
            state = np.asarray(initial_states, dtype=np.intp)
            if state.shape != (self._h,):
                raise ValueError(f"initial_states must have shape ({self._h},)")
            if state.min() < 0 or state.max() >= self._s:
                raise ValueError("initial state index out of range")
            self._state = state.copy()

    @staticmethod
    def _inverse_cdf(cum_rows: np.ndarray, draws: np.ndarray) -> np.ndarray:
        """Per-row inverse CDF: first index where ``cum >= draw``."""
        idx = (cum_rows < draws[:, None]).sum(axis=1)
        return np.minimum(idx, cum_rows.shape[1] - 1)

    @property
    def num_chains(self) -> int:
        """Number of chains ``H``."""
        return self._h

    @property
    def num_states(self) -> int:
        """States per chain ``S``."""
        return self._s

    @property
    def num_groups(self) -> int:
        """Number of distinct chain groups ``G``."""
        return self._p.shape[0]

    @property
    def state_indices(self) -> np.ndarray:
        """Current state indices, shape ``(H,)`` (copy)."""
        return self._state.copy()

    @property
    def groups(self) -> np.ndarray:
        """Group index of each chain, shape ``(H,)`` (copy)."""
        return self._group.copy()

    def state_values(self) -> np.ndarray:
        """Current per-chain state values, shape ``(H,)``."""
        return self._values[self._group, self._state]

    def set_states(self, indices: Sequence[int]) -> None:
        """Force all chains into the given states (tests/scenarios)."""
        state = np.asarray(indices, dtype=np.intp)
        if state.shape != (self._h,):
            raise ValueError(f"indices must have shape ({self._h},)")
        if state.size and (state.min() < 0 or state.max() >= self._s):
            raise ValueError("state index out of range")
        self._state = state.copy()

    def step(self) -> np.ndarray:
        """Advance every chain one step; returns the new state indices."""
        rows = self._cum[self._group, self._state]
        self._state = self._inverse_cdf(rows, self._rng.random(self._h))
        return self._state

    def sample_value_paths(self, length: int) -> np.ndarray:
        """Record ``length`` stages of state values in one shot.

        Returns a ``(length, H)`` array whose row ``t`` holds the values
        *before* the ``t``-th step — i.e. row 0 is the current state and the
        bank ends ``length`` steps ahead, exactly the contract of
        :func:`repro.sim.bandwidth.record_capacity_trace`.  The uniforms are
        drawn as one ``(length, H)`` block, which consumes the generator in
        the same order as ``length`` separate :meth:`step` calls, so the
        fast path is stream-identical to the loop.
        """
        if length < 1:
            raise ValueError("length must be >= 1")
        draws = self._rng.random((length, self._h))
        out = np.empty((length, self._h))
        state = self._state
        for t in range(length):
            out[t] = self._values[self._group, state]
            state = self._inverse_cdf(self._cum[self._group, state], draws[t])
        self._state = state
        return out

    def stationary_distributions(self) -> np.ndarray:
        """Per-group stationary distributions, shape ``(G, S)`` (copy)."""
        return self._stationary.copy()

    def expected_state_values(self) -> np.ndarray:
        """Stationary expectation of each chain's value, shape ``(H,)``."""
        per_group = np.einsum("gs,gs->g", self._stationary, self._values)
        return per_group[self._group]

    def minimum_values(self) -> np.ndarray:
        """Lowest level of each chain, shape ``(H,)``."""
        return self._values.min(axis=1)[self._group]

    @classmethod
    def birth_death(
        cls,
        levels: Sequence[float],
        num_chains: int,
        stay_probability: float = 0.9,
        rng: Seedish = None,
        initial_states: Optional[Sequence[int]] = None,
    ) -> "BatchMarkovChains":
        """``num_chains`` independent copies of the paper's slow chain.

        The batch analogue of building ``num_chains`` separate
        :func:`birth_death_chain` objects.
        """
        values = np.asarray(levels, dtype=float)
        if values.ndim != 1 or values.size < 2:
            raise ValueError("levels must be a 1-D sequence of at least two values")
        transition = birth_death_transition(values.size, stay_probability)
        return cls(
            transition,
            values,
            num_chains=num_chains,
            rng=rng,
            initial_states=initial_states,
        )

    def to_chains(self, rng: Seedish = None) -> list:
        """Materialize scalar :class:`MarkovChain` views of every chain.

        The inverse of :meth:`from_chains`: each returned chain carries its
        group's transition matrix and values and starts in the batch's
        *current* state.  Use for analysis code written against scalar
        chains (e.g. the symmetric-optimum solver); the returned chains get
        fresh child generators from ``rng``, so stepping them does not
        touch the batch stream.
        """
        parent = as_generator(rng)
        children = spawn_many(parent, self._h)
        chains = []
        for i, child in enumerate(children):
            g = int(self._group[i])
            chain = MarkovChain(
                transition=self._p[g].copy(),
                states=self._values[g].copy(),
                rng=child,
            )
            chain.set_state(int(self._state[i]))
            chains.append(chain)
        return chains

    @classmethod
    def from_chains(
        cls,
        chains: Sequence[MarkovChain],
        rng: Seedish = None,
    ) -> "BatchMarkovChains":
        """Batch a bank of scalar chains, preserving their current states.

        Chains with identical ``(transition, states)`` pairs collapse into
        one group; all chains must have the same number of states.  The
        scalar chains' generators are *not* carried over — pass ``rng`` for
        the batch stream.
        """
        if not chains:
            raise ValueError("need at least one chain")
        num_states = chains[0].num_states
        if any(c.num_states != num_states for c in chains):
            raise ValueError("all chains must have the same number of states")
        keys: dict = {}
        transitions: list = []
        values: list = []
        group = np.empty(len(chains), dtype=np.intp)
        for i, chain in enumerate(chains):
            key = (chain.transition.tobytes(), chain.states.tobytes())
            g = keys.get(key)
            if g is None:
                g = len(transitions)
                keys[key] = g
                transitions.append(chain.transition)
                values.append(chain.states)
            group[i] = g
        return cls(
            np.stack(transitions),
            np.stack(values),
            groups=group,
            rng=rng,
            initial_states=[c.state_index for c in chains],
        )


def product_stationary(chains: Sequence[MarkovChain]) -> np.ndarray:
    """Joint stationary distribution of independent chains.

    Returns an array of shape ``(S_1, ..., S_H)`` with
    ``pi(y) = prod_i pi_i(y_i)`` — the ``pi(x)`` of paper Sec. IV-A.
    """
    if not chains:
        raise ValueError("need at least one chain")
    joint = np.array([1.0])
    for chain in chains:
        joint = np.multiply.outer(joint, chain.stationary_distribution())
    return joint[0] if joint.ndim > len(chains) else joint
