"""Finite ergodic Markov chains.

The paper models each helper's available upload bandwidth as an independent
ergodic finite Markov chain over the levels ``[700, 800, 900]`` that switches
"according to a slowly changing random process" (Sec. IV).  This module
provides the chain abstraction plus the two canned constructors used by the
experiments:

* :func:`birth_death_chain` — nearest-neighbour transitions with a large
  self-loop probability (the "slowly changing" process);
* :func:`lazy_uniform_chain` — a lazy chain that jumps uniformly on change,
  used in ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.util.rng import Seedish, as_generator
from repro.util.validation import (
    require_in_closed_unit_interval,
    require_probability_vector,
    require_stochastic_matrix,
)


@dataclass
class MarkovChain:
    """A finite, time-homogeneous Markov chain.

    Parameters
    ----------
    transition:
        Row-stochastic ``S x S`` transition matrix ``P[s, s']``.
    states:
        Optional per-state labels/values (e.g. bandwidth levels in kbit/s).
        Defaults to ``0..S-1``.
    rng:
        Seed or generator driving the sample path.
    initial:
        Optional distribution over the initial state; defaults to the
        stationary distribution, so sample paths start in steady state as
        assumed by the occupation-measure LP.
    """

    transition: np.ndarray
    states: Optional[np.ndarray] = None
    rng: Seedish = None
    initial: Optional[Sequence[float]] = None
    _state: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        self.transition = require_stochastic_matrix(self.transition, "transition")
        n = self.transition.shape[0]
        if self.states is None:
            self.states = np.arange(n, dtype=float)
        else:
            self.states = np.asarray(self.states, dtype=float)
            if self.states.shape != (n,):
                raise ValueError(
                    f"states must have length {n}, got shape {self.states.shape}"
                )
        self.rng = as_generator(self.rng)
        if self.initial is None:
            init = self.stationary_distribution()
        else:
            init = require_probability_vector(self.initial, "initial")
            if init.size != n:
                raise ValueError(f"initial must have length {n}")
        self._state = int(self.rng.choice(n, p=init))

    @property
    def num_states(self) -> int:
        """Number of states ``S``."""
        return self.transition.shape[0]

    @property
    def state_index(self) -> int:
        """Current state index in ``0..S-1``."""
        return self._state

    @property
    def state_value(self) -> float:
        """Label/value of the current state."""
        return float(self.states[self._state])

    def step(self) -> int:
        """Advance one step; return the new state index."""
        self._state = int(
            self.rng.choice(self.num_states, p=self.transition[self._state])
        )
        return self._state

    def sample_path(self, length: int) -> np.ndarray:
        """Advance ``length`` steps and return the visited state indices."""
        if length < 0:
            raise ValueError("length must be >= 0")
        path = np.empty(length, dtype=int)
        for t in range(length):
            path[t] = self.step()
        return path

    def set_state(self, index: int) -> None:
        """Force the chain into state ``index`` (used by tests/scenarios)."""
        if not 0 <= index < self.num_states:
            raise ValueError(f"state index {index} out of range 0..{self.num_states - 1}")
        self._state = int(index)

    def stationary_distribution(self) -> np.ndarray:
        """Stationary distribution ``pi`` with ``pi P = pi``.

        Computed from the eigenvector of ``P^T`` at eigenvalue 1; raises
        :class:`ValueError` if the chain is not ergodic enough for a unique
        strictly positive solution (up to numerical tolerance).
        """
        return stationary_distribution(self.transition)

    def expected_state_value(self) -> float:
        """Stationary expectation of the state value ``E_pi[states]``."""
        return float(self.stationary_distribution() @ self.states)


def stationary_distribution(transition: np.ndarray) -> np.ndarray:
    """Stationary distribution of a row-stochastic matrix.

    Solves ``pi (P - I) = 0`` with the normalization ``sum(pi) = 1`` via a
    least-squares system, then validates uniqueness by checking the
    eigenvalue-1 multiplicity.
    """
    p = require_stochastic_matrix(transition, "transition")
    n = p.shape[0]
    # pi solves A^T pi = b with A = [P^T - I; 1^T].
    a = np.vstack([p.T - np.eye(n), np.ones((1, n))])
    b = np.zeros(n + 1)
    b[-1] = 1.0
    pi, *_ = np.linalg.lstsq(a, b, rcond=None)
    if np.any(pi < -1e-8):
        raise ValueError("transition matrix has no non-negative stationary vector; "
                         "is the chain ergodic?")
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0 or abs(total - 1.0) > 1e-6:
        raise ValueError("failed to normalize stationary distribution")
    resid = np.linalg.norm(pi @ p - pi, ord=1)
    if resid > 1e-6:
        raise ValueError(f"stationary residual too large ({resid}); chain may be periodic")
    return pi / total


def birth_death_chain(
    levels: Sequence[float],
    stay_probability: float = 0.9,
    rng: Seedish = None,
    initial: Optional[Sequence[float]] = None,
) -> MarkovChain:
    """Slowly-switching nearest-neighbour chain over ``levels``.

    With probability ``stay_probability`` the chain keeps its level; the
    remaining mass moves to adjacent levels (split evenly for interior
    states, all of it for boundary states).  With the default 0.9 this is
    the "slowly changing random process" over ``[700, 800, 900]`` of the
    paper's evaluation.
    """
    values = np.asarray(levels, dtype=float)
    if values.ndim != 1 or values.size < 2:
        raise ValueError("levels must be a 1-D sequence of at least two values")
    stay = require_in_closed_unit_interval(stay_probability, "stay_probability")
    n = values.size
    move = 1.0 - stay
    p = np.zeros((n, n))
    for s in range(n):
        p[s, s] = stay
        if s == 0:
            p[s, 1] += move
        elif s == n - 1:
            p[s, n - 2] += move
        else:
            p[s, s - 1] += move / 2
            p[s, s + 1] += move / 2
    return MarkovChain(transition=p, states=values, rng=rng, initial=initial)


def lazy_uniform_chain(
    levels: Sequence[float],
    stay_probability: float = 0.9,
    rng: Seedish = None,
) -> MarkovChain:
    """Lazy chain that, when it moves, jumps uniformly over the other levels."""
    values = np.asarray(levels, dtype=float)
    if values.ndim != 1 or values.size < 2:
        raise ValueError("levels must be a 1-D sequence of at least two values")
    stay = require_in_closed_unit_interval(stay_probability, "stay_probability")
    n = values.size
    p = np.full((n, n), (1.0 - stay) / (n - 1))
    np.fill_diagonal(p, stay)
    return MarkovChain(transition=p, states=values, rng=rng)


def product_stationary(chains: Sequence[MarkovChain]) -> np.ndarray:
    """Joint stationary distribution of independent chains.

    Returns an array of shape ``(S_1, ..., S_H)`` with
    ``pi(y) = prod_i pi_i(y_i)`` — the ``pi(x)`` of paper Sec. IV-A.
    """
    if not chains:
        raise ValueError("need at least one chain")
    joint = np.array([1.0])
    for chain in chains:
        joint = np.multiply.outer(joint, chain.stationary_distribution())
    return joint[0] if joint.ndim > len(chains) else joint
