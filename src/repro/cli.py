"""Command-line interface: reproduce paper figures and run custom scenarios.

Usage::

    python -m repro figure fig1 [--seed 0]
    python -m repro figure all
    python -m repro scenario --peers 30 --helpers 5 --stages 2000 --seed 1
    python -m repro run --backend=vectorized --peers 100000 --workers 4
    python -m repro run --spec examples/smoke.json
    python -m repro run --peers 500 --churn-rate 2 --mean-lifetime 50 --dump-spec
    python -m repro run --spec sweep.json --workers 8 --store results/ --max-retries 2
    python -m repro sweep --spec sweep.json --workers 8 --store results/ --resume
    python -m repro eval --scenarios oscillating_capacity,flash_storm \\
        --learners rths,sticky --window 25
    python -m repro eval --spec examples/eval_matrix.json --format markdown
    python -m repro store ls results/
    python -m repro store gc results/ --dry-run
    python -m repro list

``figure`` regenerates one (or all) of the paper's figures and prints the
same text tables the benchmark harness writes to ``benchmarks/output/``.
``scenario`` runs an ad-hoc helper-selection experiment (bare repeated
game, vectorized population) and prints the headline metrics.  ``run``
executes the *full streaming system* — channels, tracker, churn, origin
server — on either the scalar (``repro.sim``) or the vectorized
(``repro.runtime``) backend, optionally fanning replications across worker
processes.  ``eval`` runs a prequential learner × scenario comparison
matrix (see :mod:`repro.eval`) and prints the per-cell metric table.

``run`` is a thin adapter over the declarative spec layer: the flags
compile into an :class:`~repro.spec.ExperimentSpec` (printable with
``--dump-spec``, loadable with ``--spec path.json``), component names
resolve through the :mod:`repro.spec` registries — so plug-in learners
and capacity backends appear automatically — and invalid specs (unknown
names, ``--dtype float32`` with the scalar backend, ``--mean-lifetime``
without churn) fail at parse time with the list of valid choices.  When
``--spec`` is given, any run flag set to a non-default value overrides
the corresponding spec field (so one spec file drives both backends:
``--spec smoke.json --backend scalar``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.analysis.experiments import ALL_FIGURES
from repro.analysis.parallel import ParallelRunner
from repro.analysis.reporting import render_table
from repro.core import LearnerPopulation, empirical_ce_regret
from repro.mdp import solve_symmetric_optimum
from repro.metrics import jain_index, load_balance_report
from repro.sim import paper_bandwidth_process
from repro.spec import (
    CAPACITY_BACKENDS,
    CAPACITY_TRANSFORMS,
    LEARNERS,
    METRICS,
    SCENARIOS,
    ExperimentSpec,
    SweepSpec,
)
from repro.telemetry import (
    merge_snapshots,
    render_snapshot,
    round_phase_shares,
    sink_names,
)
from repro.util.logconfig import LOG_LEVELS, configure_logging

FIGURE_DESCRIPTIONS = {
    "fig1": "worst-player regret decay (large scale)",
    "fig2": "RTHS welfare vs. centralized MDP optimum (N=10, H=4)",
    "fig3": "helper load distribution",
    "fig4": "per-peer bandwidth fairness",
    "fig5": "server workload vs. minimum bandwidth deficit",
}

#: run-flag dest -> ExperimentSpec override path (see --spec in the help).
RUN_FLAG_SPEC_PATHS = {
    "backend": "backend",
    "rounds": "rounds",
    "seed": "seed",
    "peers": "topology.num_peers",
    "helpers": "topology.num_helpers",
    "channels": "topology.num_channels",
    "bitrate": "topology.channel_bitrates",
    "stay": "capacity.stay_probability",
    "capacity_backend": "capacity.backend",
    "learner": "learner.name",
    "epsilon": "learner.epsilon",
    "delta": "learner.delta",
    "mu": "learner.mu",
    "dtype": "learner.dtype",
    "bank": "learner.bank",
    "topk": "learner.topk",
    "engine": "learner.engine",
    "shards": "learner.shards",
    "churn_rate": "churn.arrival_rate",
    "mean_lifetime": "churn.mean_lifetime",
    "max_retries": "execution.max_retries",
    "cell_timeout": "execution.cell_timeout",
    "heartbeat_interval": "execution.heartbeat_interval",
    "on_failure": "execution.on_failure",
}

#: The flags above are registered with ``argparse.SUPPRESS`` defaults, so
#: compile_run_spec can tell "explicitly passed" (overrides the --spec
#: file, even when the value equals the dataclass default) from "left
#: unset" (the file's value — or the ExperimentSpec field default —
#: wins).  The field defaults on the spec dataclasses are the single
#: source of run defaults.


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Decentralized Adaptive Helper Selection in "
        "Multi-channel P2P Streaming Systems' (ICDCS 2014).",
    )
    parser.add_argument(
        "--log-level",
        choices=list(LOG_LEVELS),
        default=None,
        help="attach a stderr handler to the 'repro' logger hierarchy at "
        "this level (library default: emit but never configure handlers)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument(
        "which",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="figure id, or 'all'",
    )
    fig.add_argument("--seed", type=int, default=0)

    scen = sub.add_parser("scenario", help="run a custom scenario")
    scen.add_argument("--peers", type=int, default=20)
    scen.add_argument("--helpers", type=int, default=4)
    scen.add_argument("--stages", type=int, default=2000)
    scen.add_argument("--seed", type=int, default=0)
    scen.add_argument("--epsilon", type=float, default=0.05)
    scen.add_argument("--delta", type=float, default=0.1)
    scen.add_argument("--mu", type=float, default=None)
    scen.add_argument(
        "--stay", type=float, default=0.9,
        help="bandwidth chain stay-probability",
    )

    runp = sub.add_parser(
        "run",
        help="run the full streaming system (scalar or vectorized backend)",
    )
    _add_spec_flags(runp)
    runp.add_argument(
        "--dump-spec",
        action="store_true",
        help="print the compiled ExperimentSpec JSON and exit without running",
    )
    runp.add_argument(
        "--telemetry",
        nargs="?",
        const=None,
        default=argparse.SUPPRESS,
        metavar="SINK",
        help="enable instrumentation for the run and print a merged "
        "summary; the optional sink reference 'name[:arg]' over "
        f"{{{', '.join(sink_names())}}} additionally streams snapshots "
        "there (e.g. --telemetry=jsonl:run.jsonl)",
    )
    runp.add_argument(
        "--replications", type=int, default=1,
        help="independent repetitions (deterministically seeded)",
    )
    runp.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the replications",
    )
    _add_store_flags(runp)

    swp = sub.add_parser(
        "sweep",
        help="fan a spec's sweep grid across workers and print the "
        "per-cell metric table",
    )
    _add_spec_flags(swp)
    swp.add_argument(
        "--replications", type=int, default=argparse.SUPPRESS,
        help="override the spec's replication count",
    )
    swp.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep cells",
    )
    _add_store_flags(swp)

    evalp = sub.add_parser(
        "eval",
        help="run a prequential learner x scenario evaluation matrix and "
        "print the per-cell metric table",
    )
    evalp.add_argument(
        "--spec",
        default=None,
        metavar="PATH",
        help="load the matrix from an EvalSpec JSON file; explicitly-set "
        "eval flags override the file's fields",
    )
    unset = argparse.SUPPRESS  # see _compile_eval_spec
    evalp.add_argument(
        "--scenarios",
        default=unset,
        metavar="NAMES",
        help="comma-separated registered scenarios "
        f"({', '.join(SCENARIOS.names())})",
    )
    evalp.add_argument(
        "--learners",
        default=unset,
        metavar="NAMES",
        help="comma-separated registered learners "
        f"({', '.join(LEARNERS.names())}; default rths,sticky)",
    )
    evalp.add_argument(
        "--window", type=int, default=unset,
        help="prequential window size in rounds (default 25)",
    )
    evalp.add_argument(
        "--rounds", type=int, default=unset,
        help="override every scenario's horizon",
    )
    evalp.add_argument(
        "--backend", choices=["scalar", "vectorized"], default=unset,
        help="override every scenario's system backend",
    )
    evalp.add_argument(
        "--seed", type=int, default=unset,
        help="root of the per-cell seed derivation (default 0)",
    )
    evalp.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the matrix cells",
    )
    evalp.add_argument(
        "--format",
        choices=["table", "markdown", "json"],
        default="table",
        help="result rendering (default: aligned text table)",
    )
    evalp.add_argument(
        "--output", "-o",
        default=None,
        metavar="PATH",
        help="write the rendered result to PATH instead of stdout",
    )
    evalp.add_argument(
        "--dump-spec",
        action="store_true",
        help="print the compiled EvalSpec JSON and exit without running",
    )
    _add_store_flags(evalp)

    storep = sub.add_parser(
        "store",
        help="inspect or maintain a content-addressed results store",
    )
    storep.add_argument(
        "op", choices=["ls", "verify", "gc"],
        help="ls: list committed entries; verify: full checksum sweep "
        "(corrupt entries are quarantined); gc: reclaim torn commits, "
        "quarantine, and (with --keep-spec) stale spec generations",
    )
    storep.add_argument("dir", metavar="DIR", help="store directory")
    storep.add_argument(
        "--keep-spec",
        action="append",
        default=None,
        metavar="DIGEST",
        help="gc only: keep entries of this spec digest (repeatable); "
        "all other spec generations are removed",
    )
    storep.add_argument(
        "--no-quarantine",
        action="store_true",
        help="verify only: report corrupt entries without moving them "
        "aside",
    )
    storep.add_argument(
        "--dry-run",
        action="store_true",
        help="gc only: report what would be reclaimed without removing "
        "anything",
    )

    prof = sub.add_parser(
        "profile",
        help="run one spec with telemetry on and print the per-phase "
        "round-loop decomposition",
    )
    _add_spec_flags(prof)
    prof.add_argument(
        "--output", "-o",
        default=None,
        metavar="PATH",
        help="also append snapshot records to a JSONL file at PATH",
    )
    prof.add_argument(
        "--flush-interval", type=int, default=0,
        help="emit an intermediate snapshot every this many rounds "
        "(0 = final snapshot only)",
    )
    prof.add_argument(
        "--sample-period", type=int, default=100,
        help="record process gauges (RSS, GC) every this many rounds "
        "(0 = off; default 100)",
    )

    sub.add_parser(
        "list", help="list the available figures and registered components"
    )
    return parser


def _add_spec_flags(runp: argparse.ArgumentParser) -> None:
    """Register the shared spec-compiling flags (``run`` and ``profile``).

    Every flag in :data:`RUN_FLAG_SPEC_PATHS` uses an
    ``argparse.SUPPRESS`` default so :func:`compile_run_spec` can tell
    "explicitly passed" from "left unset".
    """
    runp.add_argument(
        "--spec",
        default=None,
        metavar="PATH",
        help="load the experiment from an ExperimentSpec JSON file; "
        "explicitly-set run flags override the file's fields",
    )
    unset = argparse.SUPPRESS  # see RUN_FLAG_SPEC_PATHS
    runp.add_argument(
        "--backend",
        choices=["scalar", "vectorized"],
        default=unset,
        help="peer representation: Python objects or numpy arrays "
        "(default vectorized)",
    )
    runp.add_argument(
        "--capacity-backend",
        default=unset,
        help="helper-bandwidth environment: 'auto' (match --backend, the "
        "default) or a registered capacity backend "
        f"({', '.join(CAPACITY_BACKENDS.names())})",
    )
    runp.add_argument(
        "--dtype",
        choices=["float32", "float64"],
        default=unset,
        help="learner-bank and peer-store precision (float32 halves the "
        "regret update's memory traffic; vectorized backend only; "
        "default float64)",
    )
    runp.add_argument(
        "--bank",
        choices=["dense", "topk"],
        default=unset,
        help="regret-bank storage family: the full per-peer regret tensor "
        "or sparse top-k blocks (vectorized regret learners only; the "
        "memory unlock for --helpers >> 1000; default dense)",
    )
    runp.add_argument(
        "--topk",
        type=int,
        default=unset,
        help="tracked helper arms per peer for --bank topk "
        "(clamped to the channel helper count; default 32)",
    )
    runp.add_argument(
        "--engine",
        choices=["auto", "grouped", "per_channel"],
        default=unset,
        help="vectorized learner dispatch: one fused act/observe across "
        "all channels per round ('grouped', bit-identical to "
        "'per_channel' and faster from C >= 20) or private per-channel "
        "banks; default auto (grouped for the regret families)",
    )
    runp.add_argument(
        "--shards",
        type=int,
        default=unset,
        help="partition the learner banks across N worker processes "
        "(vectorized grouped engine, N <= channels); traces are "
        "bit-identical to --shards 1, so this is a pure speed knob "
        "on multi-core hosts (default 1)",
    )
    runp.add_argument("--peers", type=int, default=unset)
    runp.add_argument("--helpers", type=int, default=unset)
    runp.add_argument("--channels", type=int, default=unset)
    runp.add_argument("--rounds", type=int, default=unset)
    runp.add_argument("--bitrate", type=float, default=unset)
    runp.add_argument(
        "--learner",
        default=unset,
        help="registered learner family "
        f"({', '.join(LEARNERS.names())}; default r2hs)",
    )
    runp.add_argument("--epsilon", type=float, default=unset)
    runp.add_argument("--delta", type=float, default=unset)
    runp.add_argument("--mu", type=float, default=unset)
    runp.add_argument("--stay", type=float, default=unset)
    runp.add_argument(
        "--churn-rate", type=float, default=unset,
        help="Poisson arrival rate (0 disables churn)",
    )
    runp.add_argument(
        "--mean-lifetime", type=float, default=unset,
        help="mean exponential peer lifetime (requires churn arrivals)",
    )
    runp.add_argument("--seed", type=int, default=unset)
    runp.add_argument(
        "--max-retries", type=int, default=unset,
        help="re-dispatch a sweep cell up to this many times after a "
        "worker crash, timeout, or hang (retried cells are bit-identical "
        "to first-try; default 0)",
    )
    runp.add_argument(
        "--cell-timeout", type=float, default=unset,
        help="wall-clock budget in seconds per sweep-cell attempt "
        "(default: unlimited)",
    )
    runp.add_argument(
        "--heartbeat-interval", type=float, default=unset,
        help="worker heartbeat period in seconds; a worker silent for "
        "~4 intervals is presumed frozen and its cell retried "
        "(default 0 = off)",
    )
    runp.add_argument(
        "--on-failure", choices=["raise", "record"], default=unset,
        help="when a cell fails beyond its retries: abort the sweep "
        "('raise', the default) or complete around the hole and report "
        "the failure ('record')",
    )


def _add_store_flags(runp: argparse.ArgumentParser) -> None:
    """Register the results-store flags (``run`` and ``sweep``)."""
    runp.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="commit every completed cell to a content-addressed results "
        "store at DIR (created if missing); committed cells are cache "
        "hits on later runs, so interrupted sweeps resume for free",
    )
    runp.add_argument(
        "--resume",
        action="store_true",
        help="require --store DIR to already exist from a previous run "
        "(guards resume jobs against a mistyped fresh path)",
    )


def compile_run_spec(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> ExperimentSpec:
    """Compile ``run`` flags (and an optional ``--spec`` file) into a spec.

    All spec validation — unknown registry names, illegal
    ``--dtype``/``--backend`` combinations, malformed JSON — happens
    here, immediately after parsing, and reports through
    ``parser.error`` (clear message, exit code 2) instead of surfacing
    deep inside system construction.
    """
    # SUPPRESS defaults: a flag attribute exists iff the user passed it.
    provided = {
        flag for flag in RUN_FLAG_SPEC_PATHS if hasattr(args, flag)
    }
    try:
        if args.spec is not None:
            spec = ExperimentSpec.load(args.spec)
        else:
            spec = ExperimentSpec(name="cli-run")
        overrides = {
            RUN_FLAG_SPEC_PATHS[flag]: getattr(args, flag)
            for flag in provided
        }
        if overrides:
            spec = spec.with_overrides(overrides)
    except (OSError, ValueError, KeyError) as exc:
        parser.error(str(exc))
    if (
        spec.churn.mean_lifetime is not None
        and spec.churn.arrival_rate <= 0
        and not spec.churn.initial_peer_lifetimes
    ):
        # Checked on the *compiled* spec so a churn-enabling --spec file
        # legitimizes --mean-lifetime.
        parser.error(
            "churn mean_lifetime requires arrival_rate > 0 "
            "(--churn-rate) or initial_peer_lifetimes"
        )
    return spec


def _open_store(parser, args):
    """Build the ``ResultsStore`` requested by ``--store``/``--resume``."""
    import os

    from repro.store import ResultsStore, StoreError

    if args.store is None:
        if args.resume:
            parser.error("--resume requires --store DIR")
        return None
    if args.resume and not os.path.isdir(args.store):
        parser.error(
            f"--resume: store {args.store!r} does not exist; drop --resume "
            "to start a fresh store there"
        )
    try:
        return ResultsStore(args.store)
    except StoreError as exc:
        parser.error(str(exc))


def _run_system(parser, args, out) -> None:
    from repro.analysis.sweeps import SweepCell
    from repro.spec import run_spec_cell

    if args.replications < 1:
        parser.error("--replications must be >= 1")
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    store = _open_store(parser, args)
    spec = compile_run_spec(parser, args)
    if hasattr(args, "telemetry"):
        sinks = [] if args.telemetry is None else [args.telemetry]
        try:
            spec = spec.with_overrides(
                {"telemetry.enabled": True, "telemetry.sinks": sinks}
            )
        except ValueError as exc:
            parser.error(str(exc))
    if args.dump_spec:
        print(spec.to_json(), file=out)
        return
    # The spec file's sweep section is honored; --replications > 1 adds
    # (or overrides) the replication count on top of its grid.
    sweep = spec.sweep_spec
    if args.replications > 1:
        sweep = SweepSpec(
            grid=sweep.grid if sweep is not None else {},
            replications=args.replications,
        )
    replications = sweep.replications if sweep is not None else 1
    if sweep is None and store is None:
        # No sweep, one replication: the run IS the spec — execute it
        # with the spec's own seed so `repro run --spec x.json`
        # reproduces `spec.run()` (and the golden expectations) exactly.
        cells = [
            SweepCell(
                parameters={},
                metrics=run_spec_cell(spec.to_dict(), {}, spec.seed),
            )
        ]
    else:
        # A store routes even single runs through the runner: that is
        # where commit-on-complete and cache-consult live.
        runner = ParallelRunner(workers=args.workers)
        result = spec.sweep(runner=runner, sweep=sweep, store=store)
        cells = [cell for cell in result.cells if cell is not None]
        _report_failures(result, out)
        if not cells:
            print("error: every sweep cell failed", file=sys.stderr)
            return 1
    topo = spec.topology
    engine = spec.resolved_engine()
    print(
        f"run: backend={spec.backend} learner={spec.learner.name} "
        + (f"engine={engine} " if engine is not None else "")
        + f"N={topo.num_peers} H={topo.num_helpers} C={topo.num_channels} "
        f"rounds={spec.rounds} replications={replications} "
        f"cells={len(cells)} workers={args.workers}",
        file=out,
    )
    # Scalars only: dict payloads (the telemetry snapshot) and array
    # metrics have no mean/std row.  np.ndim(dict) == 0, so an explicit
    # scalar check is required.
    metric_names = [
        name for name in cells[0].metrics
        if isinstance(cells[0].metrics[name], (int, float, np.number))
    ]
    values = {
        name: np.array([cell.metrics[name] for cell in cells])
        for name in metric_names
    }
    rows = [
        [name, float(values[name].mean()), float(values[name].std())]
        for name in metric_names
    ]
    print(render_table(["metric", "mean", "std"], rows), file=out)
    merged = merge_snapshots(
        cell.metrics.get("telemetry") for cell in cells
    )
    if merged is not None:
        print(file=out)
        print(render_snapshot(merged), file=out)
    return 0


def _report_failures(result, out) -> None:
    """Print one structured line per recorded cell failure."""
    for failure in result.failures:
        print(f"warning: {failure.describe()}", file=out)


def _run_sweep_cmd(parser, args, out) -> int:
    """``repro sweep``: fan the spec's grid out, print the cell table."""
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    store = _open_store(parser, args)
    spec = compile_run_spec(parser, args)
    sweep = spec.sweep_spec
    if hasattr(args, "replications"):
        if args.replications < 1:
            parser.error("--replications must be >= 1")
        sweep = SweepSpec(
            grid=sweep.grid if sweep is not None else {},
            replications=args.replications,
        )
    if sweep is None or (not sweep.grid and sweep.replications <= 1):
        parser.error(
            "nothing to sweep: give --spec a file with a sweep section "
            "or pass --replications N"
        )
    runner = ParallelRunner(workers=args.workers)
    result = spec.sweep(runner=runner, sweep=sweep, store=store)
    print(
        f"sweep: spec={spec.result_digest()} cells={len(result.cells)} "
        f"workers={args.workers}"
        + (f" store={args.store}" if store is not None else ""),
        file=out,
    )
    _report_failures(result, out)
    if result.completed_cells():
        print(result.to_table(), file=out)
    else:
        print("error: every sweep cell failed", file=sys.stderr)
        return 1
    return 0


#: eval-flag dest -> EvalSpec field (all SUPPRESS defaults, like the run
#: flags: present on the namespace iff the user passed them).
EVAL_FLAG_FIELDS = ("scenarios", "learners", "window", "rounds", "backend", "seed")


def _compile_eval_spec(parser, args):
    """Compile ``eval`` flags (and an optional ``--spec`` file) into an EvalSpec.

    The comma-separated ``--scenarios``/``--learners`` lists become
    tuples; every other flag overrides the corresponding field.  All
    validation (unknown registry names, bad window) reports through
    ``parser.error``.
    """
    import dataclasses

    from repro.eval import EvalSpec

    overrides = {
        name: getattr(args, name)
        for name in EVAL_FLAG_FIELDS
        if hasattr(args, name)
    }
    for name in ("scenarios", "learners"):
        if name in overrides:
            overrides[name] = tuple(
                item.strip()
                for item in overrides[name].split(",")
                if item.strip()
            )
    try:
        spec = EvalSpec.load(args.spec) if args.spec is not None else EvalSpec()
        if overrides:
            spec = dataclasses.replace(spec, **overrides)
    except (OSError, ValueError, KeyError) as exc:
        parser.error(str(exc))
    return spec


def _run_eval(parser, args, out) -> int:
    """``repro eval``: run the matrix, print/write the metric table."""
    from repro.eval import Evaluator

    if args.workers < 1:
        parser.error("--workers must be >= 1")
    store = _open_store(parser, args)
    spec = _compile_eval_spec(parser, args)
    if args.dump_spec:
        print(spec.to_json(), file=out)
        return 0
    if not spec.scenarios or not spec.learners:
        parser.error(
            "nothing to evaluate: pass --scenarios (and --learners) or "
            "give --spec a file naming them"
        )
    try:
        result = Evaluator(workers=args.workers).run(spec, store=store)
    except ValueError as exc:
        # Fail-fast cell-build errors (scenario option typos, learners
        # missing the pinned backend) name the offending cell.
        parser.error(str(exc))
    print(
        f"eval: spec={spec.eval_digest()} cells={len(result.cells)} "
        f"workers={args.workers}"
        + (f" store={args.store}" if store is not None else ""),
        file=out,
    )
    _report_failures(result, out)
    if not result.completed_cells():
        print("error: every eval cell failed", file=sys.stderr)
        return 1
    if args.format == "json":
        rendered = result.to_json()
    elif args.format == "markdown":
        rendered = result.to_markdown()
    else:
        rendered = result.to_table()
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
        print(f"wrote {args.output}", file=out)
    else:
        print(rendered, file=out)
    return 0


def _run_store(args, out) -> int:
    """``repro store {ls,verify,gc}``: results-store maintenance."""
    from repro.store import ResultsStore, StoreError

    try:
        store = ResultsStore(args.dir, create=False)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.op == "ls":
        rows = store.ls()
        for row in rows:
            if row["status"] == "ok":
                print(
                    f"{row['spec_digest']}/{row['cell_digest']}  "
                    f"metrics={row['metrics']} arrays={row['arrays']} "
                    f"bytes={row['bytes']} params={row['params']} "
                    f"seed={row['seed']}",
                    file=out,
                )
            else:
                print(
                    f"{row['spec_digest']}/{row['cell_digest']}  "
                    f"CORRUPT: {row['detail']}",
                    file=out,
                )
        print(f"{len(rows)} entr{'y' if len(rows) == 1 else 'ies'}", file=out)
        return 0
    if args.op == "verify":
        report = store.verify(quarantine=not args.no_quarantine)
        for item in report["corrupt"]:
            print(
                f"corrupt: {item['spec_digest']}/{item['cell_digest']}: "
                f"{item['reason']}",
                file=out,
            )
        print(
            f"checked={report['checked']} ok={report['ok']} "
            f"corrupt={len(report['corrupt'])} "
            f"quarantined={report['quarantined']}",
            file=out,
        )
        return 1 if report["corrupt"] else 0
    report = store.gc(keep_specs=args.keep_spec, dry_run=args.dry_run)
    label = "gc (dry-run): would remove" if args.dry_run else "gc:"
    print(
        f"{label} tmp_removed={report['tmp_removed']} "
        f"quarantine_removed={report['quarantine_removed']} "
        f"entries_removed={report['entries_removed']} "
        f"bytes_freed={report['bytes_freed']}",
        file=out,
    )
    return 0


def _run_profile(parser, args, out) -> None:
    """``repro profile``: one instrumented run, phase table to stdout."""
    if args.flush_interval < 0:
        parser.error("--flush-interval must be >= 0")
    if args.sample_period < 0:
        parser.error("--sample-period must be >= 0")
    spec = compile_run_spec(parser, args)
    sinks = [] if args.output is None else [f"jsonl:{args.output}"]
    try:
        spec = spec.with_overrides(
            {
                "telemetry.enabled": True,
                "telemetry.sinks": sinks,
                "telemetry.flush_interval": args.flush_interval,
                "telemetry.sample_period": args.sample_period,
            }
        )
    except ValueError as exc:
        parser.error(str(exc))
    result = spec.run()
    topo = spec.topology
    engine = spec.resolved_engine()
    print(
        f"profile: spec={spec.spec_digest()} backend={spec.backend} "
        + (f"engine={engine} " if engine is not None else "")
        + f"learner={spec.learner.name} N={topo.num_peers} "
        f"H={topo.num_helpers} C={topo.num_channels} rounds={spec.rounds}",
        file=out,
    )
    print(render_snapshot(result.telemetry), file=out)
    shares = round_phase_shares(result.telemetry)
    if shares is not None and shares["coverage"] < 0.9:
        print(
            f"warning: named round phases cover only "
            f"{shares['coverage']:.1%} of round.total — a hot unnamed "
            "region is hiding",
            file=out,
        )
    if args.output is not None:
        print(f"snapshots appended to {args.output}", file=out)


def _run_figure(which: str, seed: int, out) -> None:
    names = sorted(ALL_FIGURES) if which == "all" else [which]
    for name in names:
        result = ALL_FIGURES[name](seed=seed)
        print(f"=== {name}: {FIGURE_DESCRIPTIONS[name]} ===", file=out)
        print(result.text, file=out)
        print(file=out)


def _run_scenario(args, out) -> None:
    process = paper_bandwidth_process(
        args.helpers, stay_probability=args.stay, rng=args.seed
    )
    population = LearnerPopulation(
        args.peers,
        args.helpers,
        epsilon=args.epsilon,
        delta=args.delta,
        mu=args.mu,
        u_max=900.0,
        rng=args.seed + 1,
    )
    trajectory = population.run(process, args.stages)
    optimum = solve_symmetric_optimum(process.chains, args.peers).value
    tail = trajectory.tail(0.25)
    balance = load_balance_report(trajectory)
    per_peer = tail.utilities.mean(axis=0)
    steady = float(tail.welfare.mean())
    print(f"scenario: N={args.peers} H={args.helpers} stages={args.stages} "
          f"eps={args.epsilon} delta={args.delta} "
          f"mu={'default' if args.mu is None else args.mu}", file=out)
    print(f"MDP optimum          : {optimum:10.1f} kbit/s", file=out)
    print(f"steady welfare       : {steady:10.1f} kbit/s "
          f"({steady / optimum:.1%})", file=out)
    print(f"CE regret (norm.)    : "
          f"{empirical_ce_regret(trajectory, u_max=900.0):10.4f}", file=out)
    print(f"Jain of helper loads : {balance.jain:10.4f}", file=out)
    print(f"Jain of peer rates   : {jain_index(per_peer):10.4f}", file=out)


def _doc_summary(obj) -> str:
    """First docstring line of a registered factory ('' when undocumented)."""
    doc = getattr(obj, "__doc__", None) or ""
    return doc.strip().splitlines()[0].strip() if doc.strip() else ""


def _factory_options(factory) -> str:
    """The keyword options a registry factory accepts, with their defaults."""
    import inspect

    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return ""
    return ", ".join(
        f"{name}={param.default}"
        for name, param in signature.parameters.items()
        if param.kind not in (param.VAR_POSITIONAL, param.VAR_KEYWORD)
        and param.default is not param.empty
    )


def _run_list(out) -> None:
    for name in sorted(ALL_FIGURES):
        print(f"{name}: {FIGURE_DESCRIPTIONS[name]}", file=out)
    print(file=out)
    print("registered components (repro.spec registries):", file=out)
    print("  scenarios:", file=out)
    for name in SCENARIOS.names():
        factory = SCENARIOS.get(name)
        summary = _doc_summary(factory)
        print(f"    {name}: {summary}" if summary else f"    {name}", file=out)
        options = _factory_options(factory)
        if options:
            print(f"      options: {options}", file=out)
    print("  learners:", file=out)
    for name in LEARNERS.names():
        entry = LEARNERS.get(name)
        flags = [
            f"min_actions={entry.min_actions}",
            *(["sparse"] if entry.sparse else []),
            *(["grouped"] if entry.grouped else []),
        ]
        line = f"    {name} [{', '.join(flags)}]"
        if entry.description:
            line += f": {entry.description}"
        print(line, file=out)
    print("  capacity backends:", file=out)
    for name in CAPACITY_BACKENDS.names():
        backend = CAPACITY_BACKENDS.get(name)
        summary = _doc_summary(backend)
        print(f"    {name}: {summary}" if summary else f"    {name}", file=out)
        options = _factory_options(backend)
        if options:
            print(f"      options: {options}", file=out)
    print("  capacity transforms:", file=out)
    for name in CAPACITY_TRANSFORMS.names():
        entry = CAPACITY_TRANSFORMS.get(name)
        summary = entry.description or _doc_summary(entry.factory)
        print(f"    {name}: {summary}" if summary else f"    {name}", file=out)
        options = _factory_options(entry.factory)
        if options:
            print(f"      options: {options}", file=out)
    print("  helper classes:", file=out)
    from repro.network.classes import HELPER_CLASSES

    for name in HELPER_CLASSES.names():
        profile = HELPER_CLASSES.get(name)
        line = (
            f"    {name} [scale={profile.capacity_scale}, "
            f"latency={profile.latency_ms}ms, jitter={profile.jitter_ms}ms, "
            f"loss={profile.loss_rate}]"
        )
        if profile.description:
            line += f": {profile.description}"
        print(line, file=out)
    print(f"  metrics: {', '.join(METRICS.names())}", file=out)


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None:
        configure_logging(args.log_level)
    if args.command == "profile":
        _run_profile(parser, args, out)
        return 0
    if args.command == "list":
        _run_list(out)
        return 0
    if args.command == "figure":
        _run_figure(args.which, args.seed, out)
        return 0
    if args.command == "scenario":
        _run_scenario(args, out)
        return 0
    if args.command == "store":
        return _run_store(args, out)
    if args.command in ("run", "sweep", "eval"):
        from repro.analysis.supervision import SweepError

        try:
            if args.command == "run":
                return _run_system(parser, args, out) or 0
            if args.command == "eval":
                return _run_eval(parser, args, out)
            return _run_sweep_cmd(parser, args, out)
        except SweepError as exc:
            # One structured line (spec digest + cell index + params)
            # instead of a worker traceback dump; the full trace stays
            # available under --log-level debug.
            if args.log_level == "debug":
                import traceback

                traceback.print_exc(file=sys.stderr)
            print(f"error: {exc.failure.describe()}", file=sys.stderr)
            return 1
    return 2  # unreachable: argparse enforces the choices
