"""Command-line interface: reproduce paper figures and run custom scenarios.

Usage::

    python -m repro figure fig1 [--seed 0]
    python -m repro figure all
    python -m repro scenario --peers 30 --helpers 5 --stages 2000 --seed 1
    python -m repro list

``figure`` regenerates one (or all) of the paper's figures and prints the
same text tables the benchmark harness writes to ``benchmarks/output/``.
``scenario`` runs an ad-hoc helper-selection experiment and prints the
headline metrics.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

import repro
from repro.analysis.experiments import ALL_FIGURES
from repro.core import LearnerPopulation, empirical_ce_regret
from repro.mdp import solve_symmetric_optimum
from repro.metrics import jain_index, load_balance_report
from repro.sim import paper_bandwidth_process

FIGURE_DESCRIPTIONS = {
    "fig1": "worst-player regret decay (large scale)",
    "fig2": "RTHS welfare vs. centralized MDP optimum (N=10, H=4)",
    "fig3": "helper load distribution",
    "fig4": "per-peer bandwidth fairness",
    "fig5": "server workload vs. minimum bandwidth deficit",
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Decentralized Adaptive Helper Selection in "
        "Multi-channel P2P Streaming Systems' (ICDCS 2014).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument(
        "which",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="figure id, or 'all'",
    )
    fig.add_argument("--seed", type=int, default=0)

    scen = sub.add_parser("scenario", help="run a custom scenario")
    scen.add_argument("--peers", type=int, default=20)
    scen.add_argument("--helpers", type=int, default=4)
    scen.add_argument("--stages", type=int, default=2000)
    scen.add_argument("--seed", type=int, default=0)
    scen.add_argument("--epsilon", type=float, default=0.05)
    scen.add_argument("--delta", type=float, default=0.1)
    scen.add_argument("--mu", type=float, default=None)
    scen.add_argument(
        "--stay", type=float, default=0.9,
        help="bandwidth chain stay-probability",
    )

    sub.add_parser("list", help="list the available figures")
    return parser


def _run_figure(which: str, seed: int, out) -> None:
    names = sorted(ALL_FIGURES) if which == "all" else [which]
    for name in names:
        result = ALL_FIGURES[name](seed=seed)
        print(f"=== {name}: {FIGURE_DESCRIPTIONS[name]} ===", file=out)
        print(result.text, file=out)
        print(file=out)


def _run_scenario(args, out) -> None:
    process = paper_bandwidth_process(
        args.helpers, stay_probability=args.stay, rng=args.seed
    )
    population = LearnerPopulation(
        args.peers,
        args.helpers,
        epsilon=args.epsilon,
        delta=args.delta,
        mu=args.mu,
        u_max=900.0,
        rng=args.seed + 1,
    )
    trajectory = population.run(process, args.stages)
    optimum = solve_symmetric_optimum(process.chains, args.peers).value
    tail = trajectory.tail(0.25)
    balance = load_balance_report(trajectory)
    per_peer = tail.utilities.mean(axis=0)
    steady = float(tail.welfare.mean())
    print(f"scenario: N={args.peers} H={args.helpers} stages={args.stages} "
          f"eps={args.epsilon} delta={args.delta} "
          f"mu={'default' if args.mu is None else args.mu}", file=out)
    print(f"MDP optimum          : {optimum:10.1f} kbit/s", file=out)
    print(f"steady welfare       : {steady:10.1f} kbit/s "
          f"({steady / optimum:.1%})", file=out)
    print(f"CE regret (norm.)    : "
          f"{empirical_ce_regret(trajectory, u_max=900.0):10.4f}", file=out)
    print(f"Jain of helper loads : {balance.jain:10.4f}", file=out)
    print(f"Jain of peer rates   : {jain_index(per_peer):10.4f}", file=out)


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(ALL_FIGURES):
            print(f"{name}: {FIGURE_DESCRIPTIONS[name]}", file=out)
        return 0
    if args.command == "figure":
        _run_figure(args.which, args.seed, out)
        return 0
    if args.command == "scenario":
        _run_scenario(args, out)
        return 0
    return 2  # unreachable: argparse enforces the choices
