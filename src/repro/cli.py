"""Command-line interface: reproduce paper figures and run custom scenarios.

Usage::

    python -m repro figure fig1 [--seed 0]
    python -m repro figure all
    python -m repro scenario --peers 30 --helpers 5 --stages 2000 --seed 1
    python -m repro run --backend=vectorized --peers 100000 --workers 4
    python -m repro list

``figure`` regenerates one (or all) of the paper's figures and prints the
same text tables the benchmark harness writes to ``benchmarks/output/``.
``scenario`` runs an ad-hoc helper-selection experiment (bare repeated
game, vectorized population) and prints the headline metrics.  ``run``
executes the *full streaming system* — channels, tracker, churn, origin
server — on either the scalar (``repro.sim``) or the vectorized
(``repro.runtime``) backend, optionally fanning replications across worker
processes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Mapping, Optional

import numpy as np

import repro
from repro.analysis.experiments import ALL_FIGURES
from repro.analysis.parallel import ParallelRunner
from repro.analysis.reporting import render_table
from repro.core import LearnerPopulation, empirical_ce_regret
from repro.game.baselines import StickyLearner, UniformRandomLearner
from repro.mdp import solve_symmetric_optimum
from repro.metrics import jain_index, load_balance_report
from repro.sim import (
    PAPER_BANDWIDTH_LEVELS,
    ChurnConfig,
    StreamingSystem,
    SystemConfig,
    paper_bandwidth_process,
)
from repro.runtime import VectorizedStreamingSystem, bank_factory

FIGURE_DESCRIPTIONS = {
    "fig1": "worst-player regret decay (large scale)",
    "fig2": "RTHS welfare vs. centralized MDP optimum (N=10, H=4)",
    "fig3": "helper load distribution",
    "fig4": "per-peer bandwidth fairness",
    "fig5": "server workload vs. minimum bandwidth deficit",
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Decentralized Adaptive Helper Selection in "
        "Multi-channel P2P Streaming Systems' (ICDCS 2014).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument(
        "which",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="figure id, or 'all'",
    )
    fig.add_argument("--seed", type=int, default=0)

    scen = sub.add_parser("scenario", help="run a custom scenario")
    scen.add_argument("--peers", type=int, default=20)
    scen.add_argument("--helpers", type=int, default=4)
    scen.add_argument("--stages", type=int, default=2000)
    scen.add_argument("--seed", type=int, default=0)
    scen.add_argument("--epsilon", type=float, default=0.05)
    scen.add_argument("--delta", type=float, default=0.1)
    scen.add_argument("--mu", type=float, default=None)
    scen.add_argument(
        "--stay", type=float, default=0.9,
        help="bandwidth chain stay-probability",
    )

    runp = sub.add_parser(
        "run",
        help="run the full streaming system (scalar or vectorized backend)",
    )
    runp.add_argument(
        "--backend",
        choices=["scalar", "vectorized"],
        default="vectorized",
        help="peer representation: Python objects or numpy arrays",
    )
    runp.add_argument(
        "--capacity-backend",
        choices=["auto", "scalar", "vectorized"],
        default="auto",
        help="helper-bandwidth environment: per-helper Markov chain objects "
        "or one array-backed chain bank ('auto' matches --backend)",
    )
    runp.add_argument(
        "--dtype",
        choices=["float32", "float64"],
        default="float64",
        help="learner-bank and peer-store precision (float32 halves the "
        "regret update's memory traffic; vectorized backend only)",
    )
    runp.add_argument("--peers", type=int, default=1000)
    runp.add_argument("--helpers", type=int, default=20)
    runp.add_argument("--channels", type=int, default=1)
    runp.add_argument("--rounds", type=int, default=200)
    runp.add_argument("--bitrate", type=float, default=350.0)
    runp.add_argument(
        "--learner",
        choices=["rths", "r2hs", "uniform", "sticky"],
        default="r2hs",
    )
    runp.add_argument("--epsilon", type=float, default=0.05)
    runp.add_argument("--delta", type=float, default=0.1)
    runp.add_argument("--mu", type=float, default=None)
    runp.add_argument("--stay", type=float, default=0.9)
    runp.add_argument(
        "--churn-rate", type=float, default=0.0,
        help="Poisson arrival rate (0 disables churn)",
    )
    runp.add_argument(
        "--mean-lifetime", type=float, default=None,
        help="mean exponential peer lifetime (requires --churn-rate > 0)",
    )
    runp.add_argument("--seed", type=int, default=0)
    runp.add_argument(
        "--replications", type=int, default=1,
        help="independent repetitions (deterministically seeded)",
    )
    runp.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the replications",
    )

    sub.add_parser("list", help="list the available figures")
    return parser


def _system_cell(params: Mapping[str, object], seed: int) -> Dict[str, float]:
    """Run one streaming-system replication; picklable for ParallelRunner."""
    churn = ChurnConfig(
        arrival_rate=float(params["churn_rate"]),
        mean_lifetime=params["mean_lifetime"],
    )
    config = SystemConfig(
        num_peers=int(params["peers"]),
        num_helpers=int(params["helpers"]),
        num_channels=int(params["channels"]),
        channel_bitrates=float(params["bitrate"]),
        stay_probability=float(params["stay"]),
        churn=churn,
    )
    u_max = float(max(PAPER_BANDWIDTH_LEVELS))
    learner = str(params["learner"])
    epsilon = float(params["epsilon"])
    delta = float(params["delta"])
    mu = params["mu"]
    capacity_backend = str(params.get("capacity_backend", "auto"))
    if capacity_backend == "auto":
        capacity_backend = (
            "vectorized" if params["backend"] == "vectorized" else "scalar"
        )
    dtype = np.dtype(str(params.get("dtype", "float64")))
    start = time.perf_counter()
    if params["backend"] == "vectorized":
        system = VectorizedStreamingSystem(
            config,
            bank_factory(
                learner, epsilon=epsilon, delta=delta, mu=mu, u_max=u_max,
                dtype=dtype,
            ),
            rng=seed,
            capacity_backend=capacity_backend,
            dtype=dtype,
        )
    else:
        system = StreamingSystem(
            config,
            _scalar_learner_factory(learner, epsilon, delta, mu, u_max),
            rng=seed,
            capacity_backend=capacity_backend,
        )
    trace = system.run(int(params["rounds"]))
    elapsed = time.perf_counter() - start
    summary = trace.summary()
    summary["elapsed_s"] = elapsed
    summary["rounds_per_s"] = float(params["rounds"]) / elapsed
    return summary


def _scalar_learner_factory(learner, epsilon, delta, mu, u_max):
    if learner == "r2hs":
        return lambda h, rng: repro.R2HSLearner(
            h, rng=rng, epsilon=epsilon, delta=delta, mu=mu, u_max=u_max
        )
    if learner == "rths":
        return lambda h, rng: repro.RTHSLearner(
            h, rng=rng, epsilon=epsilon, delta=delta, mu=mu, u_max=u_max
        )
    if learner == "uniform":
        return lambda h, rng: UniformRandomLearner(h, rng=rng)
    if learner == "sticky":
        return lambda h, rng: StickyLearner(h, rng=rng)
    raise ValueError(f"unknown learner {learner!r}")


def _run_system(args, out) -> None:
    params = {
        "backend": args.backend,
        "peers": args.peers,
        "helpers": args.helpers,
        "channels": args.channels,
        "rounds": args.rounds,
        "bitrate": args.bitrate,
        "learner": args.learner,
        "epsilon": args.epsilon,
        "delta": args.delta,
        "mu": args.mu,
        "stay": args.stay,
        "churn_rate": args.churn_rate,
        "mean_lifetime": args.mean_lifetime,
        "capacity_backend": args.capacity_backend,
        "dtype": args.dtype,
    }
    runner = ParallelRunner(workers=args.workers)
    cells = runner.run_replications(
        _system_cell, params, args.replications, rng=args.seed
    )
    print(
        f"run: backend={args.backend} learner={args.learner} "
        f"N={args.peers} H={args.helpers} C={args.channels} "
        f"rounds={args.rounds} replications={args.replications} "
        f"workers={runner.workers}",
        file=out,
    )
    metric_names = list(cells[0].metrics)
    values = {
        name: np.array([cell.metrics[name] for cell in cells])
        for name in metric_names
    }
    rows = [
        [name, float(values[name].mean()), float(values[name].std())]
        for name in metric_names
    ]
    print(render_table(["metric", "mean", "std"], rows), file=out)


def _run_figure(which: str, seed: int, out) -> None:
    names = sorted(ALL_FIGURES) if which == "all" else [which]
    for name in names:
        result = ALL_FIGURES[name](seed=seed)
        print(f"=== {name}: {FIGURE_DESCRIPTIONS[name]} ===", file=out)
        print(result.text, file=out)
        print(file=out)


def _run_scenario(args, out) -> None:
    process = paper_bandwidth_process(
        args.helpers, stay_probability=args.stay, rng=args.seed
    )
    population = LearnerPopulation(
        args.peers,
        args.helpers,
        epsilon=args.epsilon,
        delta=args.delta,
        mu=args.mu,
        u_max=900.0,
        rng=args.seed + 1,
    )
    trajectory = population.run(process, args.stages)
    optimum = solve_symmetric_optimum(process.chains, args.peers).value
    tail = trajectory.tail(0.25)
    balance = load_balance_report(trajectory)
    per_peer = tail.utilities.mean(axis=0)
    steady = float(tail.welfare.mean())
    print(f"scenario: N={args.peers} H={args.helpers} stages={args.stages} "
          f"eps={args.epsilon} delta={args.delta} "
          f"mu={'default' if args.mu is None else args.mu}", file=out)
    print(f"MDP optimum          : {optimum:10.1f} kbit/s", file=out)
    print(f"steady welfare       : {steady:10.1f} kbit/s "
          f"({steady / optimum:.1%})", file=out)
    print(f"CE regret (norm.)    : "
          f"{empirical_ce_regret(trajectory, u_max=900.0):10.4f}", file=out)
    print(f"Jain of helper loads : {balance.jain:10.4f}", file=out)
    print(f"Jain of peer rates   : {jain_index(per_peer):10.4f}", file=out)


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(ALL_FIGURES):
            print(f"{name}: {FIGURE_DESCRIPTIONS[name]}", file=out)
        return 0
    if args.command == "figure":
        _run_figure(args.which, args.seed, out)
        return 0
    if args.command == "scenario":
        _run_scenario(args, out)
        return 0
    if args.command == "run":
        _run_system(args, out)
        return 0
    return 2  # unreachable: argparse enforces the choices
