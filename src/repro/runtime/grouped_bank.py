"""The fused multi-channel learner engine.

The vectorized system's round loop used to make ``2 * C`` small bank
calls per round — one ``act`` and one ``observe`` per channel — which is
overhead-bound once channel counts reach the scenario-diversity regime
(C >= 20): each call is a handful of tiny numpy dispatches on a few
hundred rows.  This module fuses them.  A :class:`GroupedLearnerBank`
owns **every** peer row across **all** channels and advances the whole
population with exactly one :meth:`~GroupedLearnerBank.act_all` and one
:meth:`~GroupedLearnerBank.observe_all` per round, operating on the
channel-sorted permutation of the online peers (per-channel offsets mark
the segments).

Two implementations:

* :class:`GroupedRegretBank` — the fused engine for the regret families
  (dense :class:`~repro.core.population.LearnerPopulation` or sparse
  :class:`~repro.core.sparse_population.TopKPopulation` storage).
  Channels are grouped by **arm count** (helpers partition round-robin,
  so at most two distinct widths exist) and each width group hosts all of
  its channels' rows in a single backing population — one gather/cumsum/
  update kernel pass per width instead of one per channel.
* :class:`PerChannelGroupedBank` — the reference adapter: wraps the
  classic ``List[LearnerBank]`` and loops channels inside the fused API.
  This is the ``engine="per_channel"`` path, the baseline the fused
  engine is asserted bit-identical against, and the fallback for
  third-party bank factories without a fused implementation.

**Bit-identity.**  The fused engine reproduces the per-channel path
float-for-float, by construction:

* every channel keeps its *own* child generator (spawned in channel
  order, exactly like the per-channel banks), and ``act_all`` feeds each
  channel's uniforms into the shared kernel via the populations'
  ``draws=`` hook — so action streams match draw-for-draw;
* rows of one width live in a population with exactly that many arms
  (no padding ever enters the arithmetic), and every kernel operation is
  per-row, so batching rows of many channels into one call leaves each
  row's float sequence unchanged;
* the sparse population keeps a *per-channel-group* play-popularity EWMA
  (see ``num_channel_groups``), so top-k re-selection sees only its own
  channel's plays — just as with private per-channel banks.

``tests/runtime/test_grouped_engine.py`` asserts the resulting
``SystemTrace`` equality trace-for-trace, dense and topk, with and
without churn.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.population import LearnerPopulation
from repro.core.schedules import StepSchedule
from repro.core.sparse_population import TopKPopulation
from repro.runtime.learner_bank import _INITIAL_ROWS, LearnerBank, _RowBank
from repro.telemetry import get_telemetry
from repro.util.rng import as_generator


@runtime_checkable
class GroupedLearnerBank(Protocol):
    """Strategy state for all peers of *all* channels, advanced fused.

    ``offsets`` is the ``(C + 1,)`` per-channel segment table into the
    channel-sorted row permutation: channel ``c`` owns positions
    ``offsets[c]:offsets[c + 1]``.  Row indices are bank-internal (the
    system stores them in ``PeerStore.bank_row``); a channel's rows are
    only meaningful together with that channel id.
    """

    @property
    def num_channels(self) -> int:
        """Number of channels this bank hosts."""
        ...

    def num_actions_of(self, channel: int) -> int:
        """Action-set size (helper count) of ``channel``."""
        ...

    def acquire(self, channel: int) -> int:
        """Claim a fresh-state row for a peer joining ``channel``."""
        ...

    def acquire_many(self, channel: int, count: int) -> np.ndarray:
        """Bulk :meth:`acquire` for initial populations."""
        ...

    def release(self, channel: int, row: int) -> None:
        """Return a leaving peer's row to ``channel``'s free pool."""
        ...

    def act_all(self, offsets: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """One fused draw: a channel-local action per listed row."""
        ...

    def observe_all(
        self,
        offsets: np.ndarray,
        rows: np.ndarray,
        actions: np.ndarray,
        utilities: np.ndarray,
    ) -> None:
        """One fused update feeding realized utilities back to the rows."""
        ...

    def channel_views(self) -> List:
        """Per-channel bank(-view) objects, for introspection."""
        ...


def build_per_channel_banks(
    bank_factory, arm_counts: Sequence[int], rngs: Sequence
) -> List[LearnerBank]:
    """Build one bank per channel, with channel-naming error context.

    Shared by the ``per_channel`` engine and the baseline adapters so a
    factory failure (e.g. a one-helper channel under a regret family)
    always reports *which* channel could not be built.
    """
    banks: List[LearnerBank] = []
    for c, (size, rng) in enumerate(zip(arm_counts, rngs)):
        size = int(size)
        try:
            bank = bank_factory(size, rng)
        except ValueError as exc:
            raise ValueError(
                f"cannot build a learner bank for channel {c} with "
                f"{size} helper(s): {exc}"
            ) from exc
        if bank.num_actions != size:
            raise ValueError(
                f"bank_factory produced {bank.num_actions} actions for "
                f"a channel with {size} helpers"
            )
        banks.append(bank)
    return banks


def _channel_segments(channels, offsets) -> List[tuple]:
    """Non-empty ``(channel, start, stop)`` segments, in channel order."""
    return [
        (c, int(offsets[c]), int(offsets[c + 1]))
        for c in channels
        if offsets[c + 1] > offsets[c]
    ]


class PerChannelGroupedBank:
    """The reference engine: per-channel banks behind the fused API.

    Dispatches one ``act``/``observe`` per non-empty channel inside
    :meth:`act_all` / :meth:`observe_all` — operation-for-operation the
    pre-fusion round loop, so it serves as the bit-identity baseline and
    as the adapter for arbitrary third-party :data:`BankFactory` objects
    (scripted banks included).
    """

    def __init__(self, banks: Sequence[LearnerBank]) -> None:
        self._banks = list(banks)
        tel = get_telemetry()
        self._ph_act = tel.phase("bank.act")
        self._ph_observe = tel.phase("bank.observe")

    @property
    def num_channels(self) -> int:
        return len(self._banks)

    def num_actions_of(self, channel: int) -> int:
        return self._banks[channel].num_actions

    def acquire(self, channel: int) -> int:
        return self._banks[channel].acquire()

    def acquire_many(self, channel: int, count: int) -> np.ndarray:
        return self._banks[channel].acquire_many(count)

    def release(self, channel: int, row: int) -> None:
        self._banks[channel].release(row)

    def act_all(self, offsets: np.ndarray, rows: np.ndarray) -> np.ndarray:
        t0 = self._ph_act.start()
        local = np.empty(int(offsets[-1]), dtype=np.int64)
        for c, start, stop in _channel_segments(
            range(len(self._banks)), offsets
        ):
            local[start:stop] = self._banks[c].act(rows[start:stop])
        self._ph_act.stop(t0)
        return local

    def observe_all(
        self,
        offsets: np.ndarray,
        rows: np.ndarray,
        actions: np.ndarray,
        utilities: np.ndarray,
    ) -> None:
        t0 = self._ph_observe.start()
        for c, start, stop in _channel_segments(
            range(len(self._banks)), offsets
        ):
            self._banks[c].observe(
                rows[start:stop], actions[start:stop], utilities[start:stop]
            )
        self._ph_observe.stop(t0)

    def channel_views(self) -> List[LearnerBank]:
        return list(self._banks)


class _GroupRows(_RowBank):
    """Row lifecycle of one width group over its shared population."""

    def __init__(self, population, initial_rows: int) -> None:
        self._pop = population
        super().__init__(initial_rows)

    def _grow_rows(self, new_rows: int) -> None:
        self._pop.ensure_capacity(new_rows)

    def _reset_rows(self, rows: np.ndarray) -> None:
        self._pop.reset_slots(rows)


class _WidthGroup:
    """All channels sharing one arm count, hosted in one population."""

    __slots__ = ("width", "channels", "population", "rows")

    def __init__(self, width, channels, population, rows) -> None:
        self.width = width
        self.channels = channels
        self.population = population
        self.rows = rows


class GroupedChannelView:
    """Introspection view of one channel inside a fused bank.

    Mirrors the read surface of a per-channel regret bank
    (``num_actions``, ``population``, ``k`` where sparse); rows handed
    out for this channel index directly into the shared width-group
    ``population``.
    """

    def __init__(self, bank: "GroupedRegretBank", channel: int) -> None:
        self._bank = bank
        self._channel = int(channel)

    @property
    def channel(self) -> int:
        """The viewed channel id."""
        return self._channel

    @property
    def num_actions(self) -> int:
        """The channel's helper count."""
        return self._bank.num_actions_of(self._channel)

    @property
    def population(self):
        """The shared backing population of the channel's width group."""
        return self._bank.population_of(self._channel)

    @property
    def k(self) -> int:
        """Tracked arms per row (sparse storage only)."""
        return self.population.k


class GroupedRegretBank:
    """Fused regret engine: every channel's rows, two kernel calls/round.

    Parameters
    ----------
    arm_counts:
        Helper count per channel (the round-robin partition's widths).
    rngs:
        One child generator per channel, spawned in channel order — the
        same streams the per-channel banks would own, consumed one
        ``random(n_c)`` call per non-empty channel per round.
    epsilon, mu, delta, u_max, schedule, dtype:
        As in :class:`~repro.runtime.learner_bank.RegretBank`; ``mu=None``
        resolves to each width's own default, exactly like per-channel
        banks.
    bank, topk, reselect_every:
        Storage family: ``"dense"`` full regret tensors or ``"topk"``
        sparse :class:`~repro.core.sparse_population.TopKPopulation`
        blocks (``topk`` arms per row, popularity re-selection every
        ``reselect_every`` stages, per-channel popularity domains).
    """

    def __init__(
        self,
        arm_counts: Sequence[int],
        rngs: Sequence,
        epsilon: float = 0.05,
        mu: Optional[float] = None,
        delta: float = 0.1,
        u_max: float = 1.0,
        schedule: Optional[StepSchedule] = None,
        dtype=np.float64,
        bank: str = "dense",
        topk: int = 32,
        reselect_every: int = 32,
        initial_rows: int = _INITIAL_ROWS,
    ) -> None:
        arm_counts = [int(a) for a in arm_counts]
        if len(rngs) != len(arm_counts):
            raise ValueError("need one child generator per channel")
        if bank not in ("dense", "topk"):
            raise ValueError(f"bank must be 'dense' or 'topk', got {bank!r}")
        self._arm_counts = arm_counts
        self._rngs = [as_generator(r) for r in rngs]
        self._sparse = bank == "topk"
        self._groups: List[_WidthGroup] = []
        self._group_of = np.empty(len(arm_counts), dtype=np.int64)
        # A channel's popularity-domain index inside its width group
        # (sparse storage: selects the group-local play EWMA).
        self._domain_of = np.zeros(len(arm_counts), dtype=np.int64)
        by_width: dict = {}
        for c, width in enumerate(arm_counts):
            by_width.setdefault(width, []).append(c)
        for width in sorted(by_width):
            channels = by_width[width]
            try:
                if self._sparse:
                    population = TopKPopulation(
                        initial_rows,
                        width,
                        k=topk,
                        epsilon=epsilon,
                        mu=mu,
                        delta=delta,
                        u_max=u_max,
                        schedule=schedule,
                        dtype=dtype,
                        reselect_every=reselect_every,
                        num_channel_groups=len(channels),
                    )
                else:
                    population = LearnerPopulation(
                        initial_rows,
                        width,
                        epsilon=epsilon,
                        mu=mu,
                        delta=delta,
                        u_max=u_max,
                        schedule=schedule,
                        dtype=dtype,
                    )
            except ValueError as exc:
                raise ValueError(
                    f"cannot build a learner bank for channel {channels[0]} "
                    f"with {width} helper(s): {exc}"
                ) from exc
            group = _WidthGroup(
                width, channels, population, _GroupRows(population, initial_rows)
            )
            index = len(self._groups)
            self._groups.append(group)
            for domain, c in enumerate(channels):
                self._group_of[c] = index
                self._domain_of[c] = domain
        tel = get_telemetry()
        self._ph_act = tel.phase("bank.act")
        self._ph_observe = tel.phase("bank.observe")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_channels(self) -> int:
        return len(self._arm_counts)

    @property
    def num_width_groups(self) -> int:
        """Distinct arm counts (= fused kernel passes per round)."""
        return len(self._groups)

    def num_actions_of(self, channel: int) -> int:
        return self._arm_counts[channel]

    def population_of(self, channel: int):
        """The shared backing population hosting ``channel``'s rows."""
        return self._groups[self._group_of[channel]].population

    def channel_views(self) -> List[GroupedChannelView]:
        return [
            GroupedChannelView(self, c) for c in range(len(self._arm_counts))
        ]

    # ------------------------------------------------------------------
    # Row lifecycle (free-list churn, O(1) per event)
    # ------------------------------------------------------------------

    def acquire(self, channel: int) -> int:
        group = self._groups[self._group_of[channel]]
        row = group.rows.acquire()
        if self._sparse:
            group.population.set_slot_groups(
                np.array([row], dtype=np.int64), int(self._domain_of[channel])
            )
        return row

    def acquire_many(self, channel: int, count: int) -> np.ndarray:
        group = self._groups[self._group_of[channel]]
        rows = group.rows.acquire_many(count)
        if self._sparse and rows.size:
            group.population.set_slot_groups(
                rows, int(self._domain_of[channel])
            )
        return rows

    def release(self, channel: int, row: int) -> None:
        self._groups[self._group_of[channel]].rows.release(row)

    # ------------------------------------------------------------------
    # The two fused calls
    # ------------------------------------------------------------------

    def _group_passes(self, offsets: np.ndarray):
        """Per width group: its non-empty segments plus a fused indexer.

        Under the round-robin partition a width's channels are contiguous
        in channel order, so the fused indexer is a plain slice (no
        copies); arbitrary partitions fall back to a gather index.
        """
        for group in self._groups:
            segments = _channel_segments(group.channels, offsets)
            if not segments:
                continue
            start, stop = segments[0][1], segments[-1][2]
            if stop - start == sum(e - s for _, s, e in segments):
                yield group, segments, slice(start, stop)
            else:
                yield group, segments, np.concatenate(
                    [np.arange(s, e) for _, s, e in segments]
                )

    def act_all(self, offsets: np.ndarray, rows: np.ndarray) -> np.ndarray:
        t0 = self._ph_act.start()
        local = np.empty(int(offsets[-1]), dtype=np.int64)
        for group, segments, index in self._group_passes(offsets):
            # Per-channel uniforms from per-channel streams (bit-identity
            # with private banks); everything else is one kernel call.
            draws = [self._rngs[c].random(stop - start) for c, start, stop in segments]
            draws = draws[0] if len(draws) == 1 else np.concatenate(draws)
            local[index] = group.population.act_slots(rows[index], draws=draws)
        self._ph_act.stop(t0)
        return local

    def observe_all(
        self,
        offsets: np.ndarray,
        rows: np.ndarray,
        actions: np.ndarray,
        utilities: np.ndarray,
    ) -> None:
        t0 = self._ph_observe.start()
        for group, _, index in self._group_passes(offsets):
            group.population.observe_slots(
                rows[index], actions[index], utilities[index]
            )
        self._ph_observe.stop(t0)
