"""The vectorized streaming runtime.

:class:`VectorizedStreamingSystem` is a drop-in, array-backed
implementation of the full multi-channel streaming system of
:class:`repro.sim.system.StreamingSystem`: same
:class:`~repro.sim.system.SystemConfig`, same discrete-event engine
driving rounds and churn, same origin-server semantics, and the same
:class:`~repro.sim.trace.SystemTrace` / RoundRecord schema — so every
existing metric, analysis and reporting path works unchanged.  Only the
*representation* differs: peers live in a :class:`~repro.runtime.peer_store.PeerStore`
(struct-of-arrays with a free-list) and strategies in per-channel
:class:`~repro.runtime.learner_bank.LearnerBank` blocks, so one learning
round is a handful of numpy operations (`np.bincount` for helper loads,
masked arithmetic for shares and deficits, one batched learner update per
channel) instead of a Python loop over peers.

Given identical helper choices the two systems produce identical round
records (asserted trace-for-trace in ``tests/runtime/test_equivalence.py``
by scripting the choices); with learners on, agreement is distributional
(same dynamics, different RNG stream layout).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.runtime.learner_bank import BankFactory, LearnerBank
from repro.runtime.peer_store import PeerStore
from repro.sim.bandwidth import paper_bandwidth_process
from repro.sim.churn import ChurnProcess
from repro.sim.engine import Simulator
from repro.sim.entities import Channel, StreamingServer
from repro.sim.system import (
    SystemConfig,
    drive_rounds,
    install_channel_switching,
    normalized_channel_weights,
)
from repro.sim.trace import RoundRecord, SystemTrace
from repro.sim.tracker import Tracker
from repro.util.rng import Seedish, as_generator, spawn


class VectorizedStreamingSystem:
    """A runnable multi-channel P2P streaming deployment, array-backed.

    Parameters
    ----------
    config:
        The same :class:`~repro.sim.system.SystemConfig` the scalar system
        takes.
    bank_factory:
        Builds one :class:`~repro.runtime.learner_bank.LearnerBank` per
        channel: called with ``(num_channel_helpers, child_rng)``.
    rng, capacity_process:
        As in the scalar system.
    initial_channels:
        Optional explicit channel per initial peer (for paired
        scalar-vs-vectorized runs); defaults to popularity-weighted draws.
    capacity_backend:
        Backend for the default environment when ``capacity_process`` is
        omitted: ``"vectorized"`` (default — one
        :class:`~repro.sim.bandwidth.VectorizedCapacityProcess` draw per
        round regardless of ``H``) or ``"scalar"`` (per-helper chains, the
        pre-engine behaviour).
    dtype:
        Float dtype of the per-peer accumulator columns
        (:class:`~repro.runtime.peer_store.PeerStore` ``demand`` /
        ``cumulative_rate`` / ``cumulative_deficit``).  ``numpy.float32``
        halves their memory traffic; pair it with a float32 bank via
        ``bank_factory(..., dtype=np.float32)`` for the full effect.
        Round records stay float64.
    """

    def __init__(
        self,
        config: SystemConfig,
        bank_factory: BankFactory,
        rng: Seedish = None,
        capacity_process=None,
        initial_channels: Optional[Sequence[int]] = None,
        capacity_backend: str = "vectorized",
        dtype=np.float64,
    ) -> None:
        self._config = config
        self._rng = as_generator(rng)
        self._sim = Simulator()
        self._server = StreamingServer(capacity=config.server_capacity)
        self._tracker = Tracker()
        self._trace = SystemTrace(
            actions=[] if config.record_peers else None,
            utilities=[] if config.record_peers else None,
        )
        self._round_index = 0
        self._population_changed = False
        # Memoized round grouping (see _round_grouping): valid until the
        # population changes.
        self._grouping = None

        if capacity_process is None:
            capacity_process = paper_bandwidth_process(
                config.num_helpers,
                levels=config.bandwidth_levels,
                stay_probability=config.stay_probability,
                rng=spawn(self._rng),
                backend=capacity_backend,
            )
        if capacity_process.num_helpers != config.num_helpers:
            raise ValueError("capacity process size does not match num_helpers")
        self._capacity_process = capacity_process
        # minimum_capacities() is a per-helper *lower bound over time* —
        # constant for every process implementation (chain level sets and
        # recorded traces are fixed at construction) — so its sum, the only
        # thing the round loop needs, is computed once.
        self._min_caps_sum = float(
            np.asarray(capacity_process.minimum_capacities()).sum()
        )

        # Channels, popularity, helper partition (identical to scalar).
        self._channel_weights = normalized_channel_weights(
            config.num_channels, config.channel_popularity
        )
        self._channels = [
            Channel(
                channel_id=c,
                bitrate=config.bitrate_of(c),
                popularity=float(self._channel_weights[c]),
            )
            for c in range(config.num_channels)
        ]
        for h in range(config.num_helpers):
            self._tracker.register_helper(h, h % config.num_channels)
        self._channel_helpers: List[np.ndarray] = [
            np.asarray(self._tracker.helpers_for(c), dtype=np.int64)
            for c in range(config.num_channels)
        ]

        # One learner bank per channel block.
        self._banks: List[LearnerBank] = []
        for c in range(config.num_channels):
            try:
                bank = bank_factory(
                    int(self._channel_helpers[c].size), spawn(self._rng)
                )
            except ValueError as exc:
                raise ValueError(
                    f"cannot build a learner bank for channel {c} with "
                    f"{self._channel_helpers[c].size} helper(s): {exc}"
                ) from exc
            if bank.num_actions != self._channel_helpers[c].size:
                raise ValueError(
                    f"bank_factory produced {bank.num_actions} actions for "
                    f"a channel with {self._channel_helpers[c].size} helpers"
                )
            self._banks.append(bank)

        # Initial population, bulk-allocated.
        self._store = PeerStore(
            initial_capacity=max(64, config.num_peers), dtype=dtype
        )
        self._uid_slot: dict[int, int] = {}
        if initial_channels is not None:
            if len(initial_channels) != config.num_peers:
                raise ValueError(
                    "initial_channels must list one channel per initial peer"
                )
            channels = np.asarray(list(initial_channels), dtype=np.int64)
            if channels.size and (
                channels.min() < 0 or channels.max() >= config.num_channels
            ):
                raise ValueError("initial channel out of range")
        else:
            channels = self._rng.choice(
                config.num_channels, size=config.num_peers, p=self._channel_weights
            ).astype(np.int64)
        demands = np.array([config.bitrate_of(int(c)) for c in channels])
        slots = self._store.allocate_many(channels, demands, now=self._sim.now)
        for c in range(config.num_channels):
            mask = channels == c
            count = int(mask.sum())
            if count == 0:
                continue
            self._store.bank_row[slots[mask]] = self._banks[c].acquire_many(count)
        for slot in slots:
            self._uid_slot[int(self._store.uid[slot])] = int(slot)

        # Churn (same process and semantics as the scalar system; peer ids
        # handed to the churn process are uids, which are never reused, so
        # a stale leave event can never hit a recycled slot).
        self._churn = ChurnProcess(
            config.churn,
            on_join=self._churn_join,
            on_leave=self._churn_leave,
            rng=spawn(self._rng),
        )
        if config.churn.initial_peer_lifetimes and config.churn.mean_lifetime:
            for slot in slots:
                self._churn.schedule_lifetime(
                    self._sim, int(self._store.uid[slot])
                )
        self._churn.start(self._sim)

        # Viewer channel switching (time-varying popularity).
        self._switch_rng = spawn(self._rng)
        self._channel_switches = 0
        if config.channel_switch_rate > 0:
            install_channel_switching(
                self._sim, config, self._switch_rng, self._churn,
                self._switch_once,
            )

    # ------------------------------------------------------------------
    # Construction helpers / churn callbacks
    # ------------------------------------------------------------------

    def _create_peer(self, channel_id: Optional[int] = None) -> int:
        """Bring one peer online; returns its uid."""
        if channel_id is None:
            channel_id = int(
                self._rng.choice(self._config.num_channels, p=self._channel_weights)
            )
        row = self._banks[channel_id].acquire()
        slot, _ = self._store.allocate(
            channel_id,
            self._config.bitrate_of(channel_id),
            now=self._sim.now,
            bank_row=row,
        )
        uid = int(self._store.uid[slot])
        self._uid_slot[uid] = slot
        return uid

    def _churn_join(self) -> int:
        uid = self._create_peer()
        self._population_changed = True
        self._grouping = None
        return uid

    def _churn_leave(self, uid: int) -> None:
        slot = self._uid_slot.pop(int(uid), None)
        if slot is None or not self._store.online[slot]:
            return
        self._banks[int(self._store.channel[slot])].release(
            int(self._store.bank_row[slot])
        )
        self._store.release(slot, now=self._sim.now)
        self._population_changed = True
        self._grouping = None

    def _switch_once(self) -> Optional[int]:
        """One viewer channel switch; returns the replacement's uid."""
        online = self._store.online_slots()
        if not online.size:
            return None
        slot = online[int(self._switch_rng.integers(online.size))]
        self._churn_leave(int(self._store.uid[slot]))
        uid = self._create_peer()
        self._channel_switches += 1
        self._population_changed = True
        self._grouping = None
        return uid

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def config(self) -> SystemConfig:
        """The experiment configuration."""
        return self._config

    @property
    def simulator(self) -> Simulator:
        """The underlying event engine."""
        return self._sim

    @property
    def store(self) -> PeerStore:
        """The struct-of-arrays peer table."""
        return self._store

    @property
    def banks(self) -> List[LearnerBank]:
        """Per-channel learner banks."""
        return self._banks

    @property
    def channels(self) -> List[Channel]:
        """All channels."""
        return self._channels

    @property
    def server(self) -> StreamingServer:
        """The origin server."""
        return self._server

    @property
    def trace(self) -> SystemTrace:
        """The recorded per-round history."""
        return self._trace

    @property
    def channel_switches(self) -> int:
        """Viewer channel-switch events processed so far."""
        return self._channel_switches

    @property
    def num_online(self) -> int:
        """Currently online peers."""
        return self._store.num_online

    def invalidate_round_cache(self) -> None:
        """Drop the memoized per-channel round grouping.

        The round loop caches which slots are online, their per-channel
        bank rows, and their demand totals until the population changes
        (churn and channel switches invalidate automatically).  Call this
        after mutating the grouping-defining store columns directly —
        ``channel``, ``demand``, ``online`` or ``bank_row`` — so the next
        round observes the edit; the accumulator columns
        (``cumulative_rate`` etc.) are not cached and need no
        invalidation.
        """
        self._grouping = None

    # ------------------------------------------------------------------
    # The learning round
    # ------------------------------------------------------------------

    def _round_grouping(self):
        """Per-channel round grouping, memoized until the population changes.

        Returns ``(online, groups, demand_online, total_demand)`` with
        ``groups`` a list of ``(channel, idx, rows)`` — ``idx`` the
        positions of the channel's peers inside ``online``, ``rows`` their
        bank rows.  All of it is a pure function of the online population
        (slots, channels, bank rows and demands are fixed for a live
        peer), so churn-free stretches pay the grouping scan exactly once
        instead of every round.
        """
        if self._grouping is None:
            store = self._store
            online = store.online_slots()
            channel_of = store.channel[online]
            groups = []
            for c in range(self._config.num_channels):
                idx = np.flatnonzero(channel_of == c)
                if not idx.size:
                    continue
                groups.append((c, idx, store.bank_row[online[idx]]))
            demand_online = store.demand[online]
            self._grouping = (
                online, groups, demand_online, float(demand_online.sum())
            )
        return self._grouping

    def _execute_round(self, _: Simulator) -> None:
        config = self._config
        store = self._store
        num_helpers = config.num_helpers
        caps = np.asarray(self._capacity_process.capacities(), dtype=float)
        online, groups, demand_online, total_demand = self._round_grouping()
        n = online.size

        # 1. Every online peer draws a helper from its channel's bank.
        helper_global = np.empty(n, dtype=np.int64)
        per_channel: List[tuple] = []  # (channel, idx, rows, local actions)
        for c, idx, rows in groups:
            local = self._banks[c].act(rows)
            helper_global[idx] = self._channel_helpers[c][local]
            per_channel.append((c, idx, rows, local))
        loads = np.bincount(helper_global, minlength=num_helpers)

        # 2./3. Shares realize; the server covers deficits.
        if n:
            shares = caps[helper_global] / loads[helper_global]
            deficits = np.maximum(0.0, demand_online - shares)
            total_share = float(shares.sum())
            total_deficit_requested = float(deficits.sum())
        else:
            shares = np.empty(0)
            deficits = np.empty(0)
            total_share = 0.0
            total_deficit_requested = 0.0
        granted = self._server.serve(total_deficit_requested)

        # 4. Banks observe the raw helper shares (the game utility).
        for c, idx, rows, local in per_channel:
            self._banks[c].observe(rows, local, shares[idx])
        store.rounds_participated[online] += 1
        store.cumulative_rate[online] += shares
        store.cumulative_deficit[online] += deficits

        min_deficit = max(0.0, total_demand - self._min_caps_sum)
        record = RoundRecord(
            time=self._sim.now,
            capacities=caps,
            loads=loads,
            welfare=total_share,
            server_load=granted,
            min_deficit=min_deficit,
            online_peers=n,
            total_demand=total_demand,
        )
        self._trace.append(record)

        if config.record_peers:
            if self._population_changed:
                raise RuntimeError(
                    "record_peers=True requires a fixed population; disable "
                    "churn or per-peer recording"
                )
            # Global helper ids, in slot (= creation) order, exactly like
            # the scalar system's peer order.
            self._trace.actions.append(helper_global.copy())  # type: ignore[union-attr]
            self._trace.utilities.append(shares.copy())  # type: ignore[union-attr]

        self._capacity_process.advance()
        self._round_index += 1

    def run(self, num_rounds: int) -> SystemTrace:
        """Advance the system by ``num_rounds`` learning rounds.

        May be called repeatedly; the trace accumulates.
        """
        drive_rounds(
            self._sim,
            self._config.round_duration,
            self._execute_round,
            lambda: self._round_index,
            num_rounds,
        )
        return self._trace
