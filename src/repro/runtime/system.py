"""The vectorized streaming runtime.

:class:`VectorizedStreamingSystem` is a drop-in, array-backed
implementation of the full multi-channel streaming system of
:class:`repro.sim.system.StreamingSystem`: same
:class:`~repro.sim.system.SystemConfig`, same discrete-event engine
driving rounds and churn, same origin-server semantics, and the same
:class:`~repro.sim.trace.SystemTrace` / RoundRecord schema — so every
existing metric, analysis and reporting path works unchanged.  Only the
*representation* differs: peers live in a :class:`~repro.runtime.peer_store.PeerStore`
(struct-of-arrays with a free-list) and strategies in one
:class:`~repro.runtime.grouped_bank.GroupedLearnerBank` owning every
channel's rows, so a learning round is a handful of numpy operations —
one fused ``act_all``, ``np.bincount`` for helper loads, masked
arithmetic for shares and deficits, one fused ``observe_all`` — instead
of a Python loop over peers or ``2 * C`` per-channel bank calls.

The ``engine`` parameter picks the learner dispatch structure:
``"grouped"`` (the fused engine, one kernel pass per distinct channel
width) or ``"per_channel"`` (private per-channel banks looped inside the
fused API — the pre-fusion reference).  The two engines are
**bit-identical**: same per-channel RNG streams, same per-row float
sequences, same traces (asserted trace-for-trace in
``tests/runtime/test_grouped_engine.py``).  ``"auto"`` (default) uses the
fused engine whenever the bank factory provides one.

Given identical helper choices the scalar and vectorized systems produce
identical round records (asserted trace-for-trace in
``tests/runtime/test_equivalence.py`` by scripting the choices); with
learners on, agreement is distributional (same dynamics, different RNG
stream layout).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.runtime.grouped_bank import (
    GroupedLearnerBank,
    PerChannelGroupedBank,
    build_per_channel_banks,
)
from repro.runtime.learner_bank import BankFactory
from repro.runtime.peer_store import PeerStore
from repro.sim.bandwidth import paper_bandwidth_process
from repro.sim.churn import ChurnProcess
from repro.sim.engine import Simulator
from repro.sim.entities import Channel, StreamingServer
from repro.sim.system import (
    SystemConfig,
    drive_rounds,
    install_channel_switching,
    install_popularity_drift,
    normalized_channel_weights,
)
from repro.sim.trace import SystemTrace
from repro.sim.tracker import Tracker
from repro.telemetry import get_telemetry
from repro.util.logconfig import get_logger
from repro.util.rng import Seedish, as_generator, spawn

logger = get_logger("runtime")

#: Learner dispatch structures the vectorized system supports.
ENGINES = ("auto", "grouped", "per_channel")


class VectorizedStreamingSystem:
    """A runnable multi-channel P2P streaming deployment, array-backed.

    Parameters
    ----------
    config:
        The same :class:`~repro.sim.system.SystemConfig` the scalar system
        takes.
    bank_factory:
        Builds one :class:`~repro.runtime.learner_bank.LearnerBank` per
        channel: called with ``(num_channel_helpers, child_rng)``.  The
        stock factories from :func:`repro.runtime.bank_factory` also
        carry a ``make_grouped`` hook building the fused multi-channel
        engine; plain factories run on the per-channel engine.
    rng, capacity_process:
        As in the scalar system.
    initial_channels:
        Optional explicit channel per initial peer (for paired
        scalar-vs-vectorized runs); defaults to popularity-weighted draws.
    capacity_backend:
        Backend for the default environment when ``capacity_process`` is
        omitted: ``"vectorized"`` (default — one
        :class:`~repro.sim.bandwidth.VectorizedCapacityProcess` draw per
        round regardless of ``H``) or ``"scalar"`` (per-helper chains, the
        pre-engine behaviour).
    dtype:
        Float dtype of the per-peer accumulator columns
        (:class:`~repro.runtime.peer_store.PeerStore` ``demand`` /
        ``cumulative_rate`` / ``cumulative_deficit``).  ``numpy.float32``
        halves their memory traffic; pair it with a float32 bank via
        ``bank_factory(..., dtype=np.float32)`` for the full effect.
        Round records stay float64.
    engine:
        ``"grouped"`` — one fused ``act_all``/``observe_all`` across all
        channels per round (requires a factory with ``make_grouped``);
        ``"per_channel"`` — private per-channel banks, the pre-fusion
        dispatch; ``"auto"`` (default) — grouped when available.  The
        engines are bit-identical; grouped removes the O(C) per-round
        Python/numpy dispatch wall.
    """

    def __init__(
        self,
        config: SystemConfig,
        bank_factory: BankFactory,
        rng: Seedish = None,
        capacity_process=None,
        initial_channels: Optional[Sequence[int]] = None,
        capacity_backend: str = "vectorized",
        dtype=np.float64,
        engine: str = "auto",
    ) -> None:
        self._config = config
        self._rng = as_generator(rng)
        self._sim = Simulator()
        self._server = StreamingServer(capacity=config.server_capacity)
        self._tracker = Tracker()
        self._trace = SystemTrace(
            actions=[] if config.record_peers else None,
            utilities=[] if config.record_peers else None,
        )
        self._round_index = 0
        self._population_changed = False
        # Memoized round grouping (see _round_grouping): valid until the
        # population changes.
        self._grouping = None
        # Deferred per-peer accumulators, aligned with the grouping's
        # `online` array (see _flush_accumulators): churn-free stretches
        # pay three contiguous adds per round instead of three
        # fancy-index read-modify-writes over the store columns.
        self._acc_rounds = 0
        self._acc_rate: Optional[np.ndarray] = None
        self._acc_deficit: Optional[np.ndarray] = None

        if capacity_process is None:
            capacity_process = paper_bandwidth_process(
                config.num_helpers,
                levels=config.bandwidth_levels,
                stay_probability=config.stay_probability,
                rng=spawn(self._rng),
                backend=capacity_backend,
            )
        if capacity_process.num_helpers != config.num_helpers:
            raise ValueError("capacity process size does not match num_helpers")
        self._capacity_process = capacity_process
        # minimum_capacities() is a per-helper *lower bound over time* —
        # constant for every process implementation (chain level sets and
        # recorded traces are fixed at construction) — so its sum, the only
        # thing the round loop needs, is computed once.
        self._min_caps_sum = float(
            np.asarray(capacity_process.minimum_capacities()).sum()
        )

        # Channels, popularity, helper partition (identical to scalar).
        self._channel_weights = normalized_channel_weights(
            config.num_channels, config.channel_popularity
        )
        # Per-channel playback bitrates as a lookup table: demand vectors
        # for whole populations (and single join events) become one
        # gather instead of a Python loop over config.bitrate_of.
        self._bitrate_table = np.asarray(config.channel_bitrates, dtype=float)
        self._channels = [
            Channel(
                channel_id=c,
                bitrate=config.bitrate_of(c),
                popularity=float(self._channel_weights[c]),
            )
            for c in range(config.num_channels)
        ]
        for h in range(config.num_helpers):
            self._tracker.register_helper(h, h % config.num_channels)
        self._channel_helpers: List[np.ndarray] = [
            np.asarray(self._tracker.helpers_for(c), dtype=np.int64)
            for c in range(config.num_channels)
        ]
        # Channel-local action -> global helper id, one 2-D gather per
        # round (padding rows never indexed past the channel's width).
        widths = [int(helpers.size) for helpers in self._channel_helpers]
        self._helper_table = np.full(
            (config.num_channels, max(widths)), -1, dtype=np.int64
        )
        for c, helpers in enumerate(self._channel_helpers):
            self._helper_table[c, : helpers.size] = helpers

        # The learner bank: one object owning every channel's rows.  Child
        # generators are spawned in channel order regardless of engine, so
        # both engines (and the pre-fusion per-channel banks) consume the
        # parent stream identically.
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        bank_rngs = [spawn(self._rng) for _ in range(config.num_channels)]
        make_grouped = getattr(bank_factory, "make_grouped", None)
        if engine == "auto":
            engine = "grouped" if make_grouped is not None else "per_channel"
        if engine == "grouped":
            if make_grouped is None:
                raise ValueError(
                    "bank_factory has no fused channel-grouped "
                    "implementation (no make_grouped hook); use "
                    "engine='per_channel' or a stock factory from "
                    "repro.runtime.bank_factory"
                )
            self._bank: GroupedLearnerBank = make_grouped(widths, bank_rngs)
            if self._bank.num_channels != config.num_channels:
                raise ValueError(
                    f"grouped bank hosts {self._bank.num_channels} "
                    f"channels, config has {config.num_channels}"
                )
            for c, width in enumerate(widths):
                if self._bank.num_actions_of(c) != width:
                    raise ValueError(
                        f"grouped bank produced {self._bank.num_actions_of(c)} "
                        f"actions for channel {c} with {width} helpers"
                    )
        else:
            self._bank = PerChannelGroupedBank(
                build_per_channel_banks(bank_factory, widths, bank_rngs)
            )
        self._engine = engine

        # Initial population, bulk-allocated.
        self._store = PeerStore(
            initial_capacity=max(64, config.num_peers), dtype=dtype
        )
        self._uid_slot: dict[int, int] = {}
        if initial_channels is not None:
            if len(initial_channels) != config.num_peers:
                raise ValueError(
                    "initial_channels must list one channel per initial peer"
                )
            channels = np.asarray(list(initial_channels), dtype=np.int64)
            if channels.size and (
                channels.min() < 0 or channels.max() >= config.num_channels
            ):
                raise ValueError("initial channel out of range")
        else:
            channels = self._rng.choice(
                config.num_channels, size=config.num_peers, p=self._channel_weights
            ).astype(np.int64)
        demands = self._bitrate_table[channels]
        slots = self._store.allocate_many(channels, demands, now=self._sim.now)
        for c in range(config.num_channels):
            mask = channels == c
            count = int(mask.sum())
            if count == 0:
                continue
            self._store.bank_row[slots[mask]] = self._bank.acquire_many(c, count)
        for slot in slots:
            self._uid_slot[int(self._store.uid[slot])] = int(slot)

        # Churn (same process and semantics as the scalar system; peer ids
        # handed to the churn process are uids, which are never reused, so
        # a stale leave event can never hit a recycled slot).
        self._churn = ChurnProcess(
            config.churn,
            on_join=self._churn_join,
            on_leave=self._churn_leave,
            rng=spawn(self._rng),
        )
        if config.churn.initial_peer_lifetimes and config.churn.mean_lifetime:
            for slot in slots:
                self._churn.schedule_lifetime(
                    self._sim, int(self._store.uid[slot])
                )
        self._churn.start(self._sim)

        # Viewer channel switching (time-varying popularity).
        self._switch_rng = spawn(self._rng)
        self._channel_switches = 0
        if config.channel_switch_rate > 0:
            install_channel_switching(
                self._sim, config, self._switch_rng, self._churn,
                self._switch_once,
            )

        # Diurnal popularity drift (skew-shifting workloads): periodically
        # re-mixes the channel weights that churn joins and viewer
        # switches draw from.  The child generator is only spawned when
        # drift is on, so drift-free configs keep their RNG streams.
        if config.popularity_drift_rate > 0:
            install_popularity_drift(
                self._sim, config, spawn(self._rng),
                lambda: self._channel_weights, self._set_channel_weights,
            )

        # Telemetry instruments bind once, here: when the process-wide
        # registry is disabled every handle below is the shared null
        # object, so the round loop pays one attribute call per phase
        # and nothing else.  The `round.*` phases tile _execute_round;
        # `round.total` is the envelope the profiler computes coverage
        # against.
        tel = get_telemetry()
        self._ph_total = tel.phase("round.total")
        self._ph_capacity = tel.phase("round.capacity")
        self._ph_grouping = tel.phase("round.grouping")
        self._ph_act = tel.phase("round.act")
        self._ph_reduce = tel.phase("round.reduce")
        self._ph_observe = tel.phase("round.observe")
        self._ph_trace = tel.phase("round.trace")
        self._ph_churn = tel.phase("churn.apply")
        self._ctr_rounds = tel.counter("round.count")
        self._ctr_joins = tel.counter("churn.joins")
        self._ctr_leaves = tel.counter("churn.leaves")
        self._ctr_switches = tel.counter("churn.switches")
        self._gauge_online = tel.gauge("round.online_peers")
        self._hist_round_s = tel.histogram("round.duration_s")
        self._pump = tel.pump()
        logger.debug(
            "vectorized system up: N=%d H=%d C=%d engine=%s dtype=%s",
            config.num_peers, config.num_helpers, config.num_channels,
            self._engine, np.dtype(dtype).name,
        )

    # ------------------------------------------------------------------
    # Construction helpers / churn callbacks
    # ------------------------------------------------------------------

    def _create_peer(self, channel_id: Optional[int] = None) -> int:
        """Bring one peer online; returns its uid."""
        if channel_id is None:
            channel_id = int(
                self._rng.choice(self._config.num_channels, p=self._channel_weights)
            )
        row = self._bank.acquire(channel_id)
        slot, _ = self._store.allocate(
            channel_id,
            float(self._bitrate_table[channel_id]),
            now=self._sim.now,
            bank_row=row,
        )
        uid = int(self._store.uid[slot])
        self._uid_slot[uid] = slot
        return uid

    def _churn_join(self) -> int:
        with self._ph_churn:
            self._flush_accumulators()
            uid = self._create_peer()
            self._population_changed = True
            self._grouping = None
            self._ctr_joins.inc()
        return uid

    def _churn_leave(self, uid: int) -> None:
        with self._ph_churn:
            slot = self._uid_slot.pop(int(uid), None)
            if slot is None or not self._store.online[slot]:
                return
            self._flush_accumulators()
            self._bank.release(
                int(self._store.channel[slot]), int(self._store.bank_row[slot])
            )
            self._store.release(slot, now=self._sim.now)
            self._population_changed = True
            self._grouping = None
            self._ctr_leaves.inc()

    def _switch_once(self) -> Optional[int]:
        """One viewer channel switch; returns the replacement's uid."""
        online = self._store.online_slots()
        if not online.size:
            return None
        slot = online[int(self._switch_rng.integers(online.size))]
        self._flush_accumulators()
        self._churn_leave(int(self._store.uid[slot]))
        uid = self._create_peer()
        self._channel_switches += 1
        self._population_changed = True
        self._grouping = None
        self._ctr_switches.inc()
        return uid

    def _set_channel_weights(self, weights: np.ndarray) -> None:
        self._channel_weights = weights

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def config(self) -> SystemConfig:
        """The experiment configuration."""
        return self._config

    @property
    def simulator(self) -> Simulator:
        """The underlying event engine."""
        return self._sim

    @property
    def store(self) -> PeerStore:
        """The struct-of-arrays peer table.

        Accessing it flushes the round loop's deferred per-peer
        accumulators, so the cumulative columns are always current from
        the caller's point of view.
        """
        self._flush_accumulators()
        return self._store

    @property
    def engine(self) -> str:
        """The resolved learner engine: ``"grouped"`` or ``"per_channel"``."""
        return self._engine

    @property
    def bank(self) -> GroupedLearnerBank:
        """The learner bank owning every channel's rows."""
        return self._bank

    @property
    def banks(self) -> List:
        """Per-channel bank views, in channel order.

        Under the per-channel engine these are the actual
        :class:`~repro.runtime.learner_bank.LearnerBank` objects; under
        the grouped engine they are lightweight
        :class:`~repro.runtime.grouped_bank.GroupedChannelView` objects
        exposing ``num_actions`` and the shared width-group
        ``population`` for introspection.
        """
        return self._bank.channel_views()

    @property
    def channels(self) -> List[Channel]:
        """All channels."""
        return self._channels

    @property
    def channel_weights(self) -> np.ndarray:
        """Current channel popularity weights (drift updates them)."""
        return self._channel_weights.copy()

    @property
    def server(self) -> StreamingServer:
        """The origin server."""
        return self._server

    @property
    def trace(self) -> SystemTrace:
        """The recorded per-round history."""
        return self._trace

    @property
    def channel_switches(self) -> int:
        """Viewer channel-switch events processed so far."""
        return self._channel_switches

    @property
    def num_online(self) -> int:
        """Currently online peers."""
        return self._store.num_online

    def invalidate_round_cache(self) -> None:
        """Drop the memoized round grouping and the store's channel index.

        The round loop caches the channel-sorted permutation of online
        slots, their bank rows, and their demand totals until the
        population changes (churn and channel switches invalidate
        automatically, updating the store's channel index incrementally).
        Call this after mutating the grouping-defining store columns
        directly — ``channel``, ``demand``, ``online`` or ``bank_row`` —
        so the next round observes the edit (the deferred per-peer
        accumulators are flushed into the store first).
        """
        self._flush_accumulators()
        self._grouping = None
        self._store.invalidate_channel_index()

    # ------------------------------------------------------------------
    # The learning round
    # ------------------------------------------------------------------

    def _round_grouping(self):
        """The channel-sorted round grouping, memoized until churn.

        Returns ``(online, perm, offsets, rows_sorted, chan_sorted,
        demand_online, total_demand, min_deficit)``: ``online`` the
        ascending online slots, ``perm`` the positions inside ``online``
        of the channel-sorted slots (``online[perm]`` is sorted by
        ``(channel, slot)``), ``offsets`` the per-channel segment table,
        ``rows_sorted`` / ``chan_sorted`` the bank rows and channel ids
        in sorted order, and ``min_deficit`` the Fig. 5 lower bound
        (a pure function of the demand total, so it is computed here
        once per churn epoch instead of once per round).  The sorted
        permutation is maintained incrementally by the store's channel
        index, so churn-free stretches pay nothing and a churn-y round
        pays one concatenation instead of a per-channel rescan.
        """
        if self._grouping is None:
            store = self._store
            online = store.online_slots()
            slots_sorted, offsets = store.channel_grouping(
                self._config.num_channels
            )
            position_of = np.empty(max(store.size, 1), dtype=np.int64)
            position_of[online] = np.arange(online.size, dtype=np.int64)
            demand_online = store.demand[online]
            total_demand = float(demand_online.sum())
            self._grouping = (
                online,
                position_of[slots_sorted],
                offsets,
                store.bank_row[slots_sorted],
                store.channel[slots_sorted],
                demand_online,
                total_demand,
                max(0.0, total_demand - self._min_caps_sum),
            )
            self._acc_rounds = 0
            self._acc_rate = np.zeros(online.size)
            self._acc_deficit = np.zeros(online.size)
            self._helper_buf = np.empty(online.size, dtype=np.int64)
        return self._grouping

    def _flush_accumulators(self) -> None:
        """Fold the deferred per-round accumulators into the store.

        Called before any mutation that invalidates the grouping (the
        accumulators are aligned with its ``online`` array and slots may
        be recycled afterwards), on ``store`` access, and at the end of
        :meth:`run`.
        """
        if self._grouping is None or self._acc_rounds == 0:
            return
        online = self._grouping[0]
        store = self._store
        store.rounds_participated[online] += self._acc_rounds
        store.cumulative_rate[online] += self._acc_rate
        store.cumulative_deficit[online] += self._acc_deficit
        self._acc_rounds = 0
        self._acc_rate[:] = 0.0
        self._acc_deficit[:] = 0.0

    def _execute_round(self, _: Simulator) -> None:
        round_t0 = self._ph_total.start()
        config = self._config
        store = self._store
        num_helpers = config.num_helpers
        t0 = self._ph_capacity.start()
        caps = np.asarray(self._capacity_process.capacities(), dtype=float)
        self._ph_capacity.stop(t0)
        t0 = self._ph_grouping.start()
        (
            online, perm, offsets, rows_sorted, chan_sorted,
            demand_online, total_demand, min_deficit,
        ) = self._round_grouping()
        self._ph_grouping.stop(t0)
        n = online.size

        # 1. One fused draw: every online peer's helper, all channels at
        # once.  Work stays in channel-sorted order for the bank and is
        # scattered back to slot (= creation) order for the aggregates,
        # so sums below run in the same order as the per-channel path.
        t0 = self._ph_act.start()
        local = self._bank.act_all(offsets, rows_sorted)
        helper_global = self._helper_buf
        helper_global[perm] = self._helper_table[chan_sorted, local]
        loads = np.bincount(helper_global, minlength=num_helpers)
        self._ph_act.stop(t0)

        # 2./3. Shares realize; the server covers deficits.
        t0 = self._ph_reduce.start()
        if n:
            shares = caps[helper_global] / loads[helper_global]
            deficits = np.maximum(0.0, demand_online - shares)
            total_share = float(shares.sum())
            total_deficit_requested = float(deficits.sum())
        else:
            shares = np.empty(0)
            deficits = np.empty(0)
            total_share = 0.0
            total_deficit_requested = 0.0
        granted = self._server.serve(total_deficit_requested)
        self._ph_reduce.stop(t0)

        # 4. One fused observe: the banks see the raw helper shares (the
        # game utility), gathered back into channel-sorted order.
        t0 = self._ph_observe.start()
        self._bank.observe_all(offsets, rows_sorted, local, shares[perm])
        if n:
            self._acc_rounds += 1
            self._acc_rate += shares
            self._acc_deficit += deficits
        self._ph_observe.stop(t0)

        t0 = self._ph_trace.start()
        self._trace.append_round(
            time=self._sim.now,
            capacities=caps,
            loads=loads,
            welfare=total_share,
            server_load=granted,
            min_deficit=min_deficit,
            online_peers=n,
            total_demand=total_demand,
        )

        if config.record_peers:
            if self._population_changed:
                raise RuntimeError(
                    "record_peers=True requires a fixed population; disable "
                    "churn or per-peer recording"
                )
            # Global helper ids, in slot (= creation) order, exactly like
            # the scalar system's peer order.
            self._trace.actions.append(helper_global.copy())  # type: ignore[union-attr]
            self._trace.utilities.append(shares.copy())  # type: ignore[union-attr]
        self._ph_trace.stop(t0)

        t0 = self._ph_capacity.start()
        self._capacity_process.advance()
        self._ph_capacity.stop(t0)
        self._round_index += 1
        self._ctr_rounds.inc()
        self._gauge_online.set(n)
        self._hist_round_s.observe(self._ph_total.stop(round_t0))
        self._pump.maybe(self._round_index)

    def run(self, num_rounds: int) -> SystemTrace:
        """Advance the system by ``num_rounds`` learning rounds.

        May be called repeatedly; the trace accumulates.
        """
        drive_rounds(
            self._sim,
            self._config.round_duration,
            self._execute_round,
            lambda: self._round_index,
            num_rounds,
        )
        self._flush_accumulators()
        return self._trace
