"""Shard one run's learner banks across worker processes.

A single :class:`~repro.runtime.system.VectorizedStreamingSystem` round
is ~96% learner-bank kernels (``bank.observe`` + ``bank.act``, per the
phase profiler), and those kernels are embarrassingly parallel across
channels: every regret update is per-row and every action draw consumes
a *per-channel* RNG stream.  :class:`ShardedSystem` exploits exactly
that structure.  It presents the ``VectorizedStreamingSystem`` facade
unchanged — same config, same trace, same churn/capacity semantics —
but hosts the banks' heavy state (the ``(rows, H, H)`` regret tensors)
in worker processes, one contiguous channel range per shard.

Split of responsibilities
-------------------------

* **Parent** keeps the discrete-event engine, churn, the capacity
  process, the :class:`~repro.runtime.peer_store.PeerStore`, the round
  grouping, every float reduction, and the trace.  All summation
  therefore happens in exactly the single-process order — one of the
  two pillars of the bit-identity guarantee.
* **Shards** each own a real :class:`~repro.runtime.grouped_bank.GroupedRegretBank`
  over their channel range, built from the same factory hook and the
  same per-channel child generators the single-process engine would
  use (the parent spawns them in global channel order and never draws
  from them).  Bank arithmetic is per-row and draws are per-channel,
  so hosting a channel's rows in a smaller population changes nothing
  — the second pillar.

Per round the parent ships each shard its slice of the channel-sorted
row permutation plus that slice's realized utilities through
:func:`~repro.analysis.parallel.share_array` shared-memory lanes (a
:mod:`multiprocessing` pipe carries only tiny barrier messages), and
reads the actions back from a third lane.

Row bookkeeping without round-trips
-----------------------------------

``acquire``/``release`` must return row ids synchronously (churn events
fire between rounds).  The parent keeps a :class:`_ShardLedger` per
shard — a replica of the shard bank's :class:`~repro.runtime.learner_bank._RowBank`
free lists with no backing storage — and applies every command locally,
queueing it for the shard to replay before its next ``act``.  The
free-list logic is deterministic, so ledger and bank agree forever; the
worker *verifies* agreement on every command and fails loudly on
divergence.

Shard-death containment
-----------------------

Every pipe exchange doubles as a heartbeat: a dead or hung shard is
detected at the next barrier (``heartbeat_timeout``).  Recovery is
rebuild-and-replay: the worker is respawned — from its last pickled
checkpoint when one exists, else from the construction closure (the
parent's pristine generator copies make that deterministic) — and the
message log since the checkpoint is replayed, reproducing the bank
state bit-for-bit.  ``checkpoint_every`` bounds the log; retries are
capped by ``max_retries`` like the sweep supervisor's cells.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
import traceback
import weakref
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.parallel import share_array
from repro.runtime.learner_bank import _RowBank
from repro.runtime.system import VectorizedStreamingSystem
from repro.telemetry import get_telemetry
from repro.util.logconfig import get_logger

logger = get_logger("runtime.sharded")

#: Seconds granted to a fresh worker to build its bank and greet.
_HELLO_TIMEOUT_S = 120.0
#: Liveness poll granularity while waiting on a shard barrier.
_POLL_TICK_S = 0.05
#: Initial per-shard exchange-lane capacity (rows); doubles on demand.
_INITIAL_LANE_ROWS = 256


class _ShardDead(Exception):
    """A shard worker died or missed its heartbeat deadline."""


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _open_lanes(handles) -> dict:
    """Materialize the shared exchange lanes in the worker.

    The handle objects are stowed alongside the views: dropping a
    :class:`SharedArrayHandle` drops its attached ``SharedMemory``,
    whose finalizer unmaps the segment and leaves the numpy views
    dangling (a segfault on the next exchange, not an exception).
    """
    return {
        "rows": handles["rows"].load(),
        "utilities": handles["utilities"].load(),
        "actions": handles["actions"].load(writable=True),
        "handles": handles,
    }


def _apply_commands(bank, commands) -> None:
    """Replay the parent ledger's row commands; verify agreement."""
    for cmd in commands:
        op, channel = cmd[0], cmd[1]
        if op == "acquire":
            row = bank.acquire(channel)
            if row != cmd[2]:
                raise RuntimeError(
                    f"shard row ledger divergence: acquire({channel}) "
                    f"returned {row}, parent ledger expected {cmd[2]}"
                )
        elif op == "acquire_many":
            rows = bank.acquire_many(channel, cmd[2])
            if not np.array_equal(rows, cmd[3]):
                raise RuntimeError(
                    f"shard row ledger divergence: acquire_many({channel}, "
                    f"{cmd[2]}) disagrees with the parent ledger"
                )
        elif op == "release":
            bank.release(channel, cmd[2])
        else:  # pragma: no cover - protocol bug
            raise RuntimeError(f"unknown row command {op!r}")


def _pickle_bank_state(bank, offsets, rows, local) -> bytes:
    """Checkpoint the worker's full deterministic state.

    The bank's telemetry phase handles are process-local (they belong to
    the worker's registry); strip them around the pickle and re-bind on
    restore.
    """
    ph_act, ph_observe = bank._ph_act, bank._ph_observe
    bank._ph_act = bank._ph_observe = None
    try:
        return pickle.dumps(
            {"bank": bank, "offsets": offsets, "rows": rows, "local": local},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    finally:
        bank._ph_act, bank._ph_observe = ph_act, ph_observe


def _shard_worker(conn, build, checkpoint, handles, shard_index) -> None:
    """The worker main loop: strict request/reply over ``conn``.

    Runs in a forked child.  Exits via ``os._exit`` so the parent's
    inherited atexit handlers (shared-memory reapers included) never run
    here — the parent owns every shared backing.
    """
    try:
        if checkpoint is not None:
            state = pickle.loads(checkpoint)
            bank = state["bank"]
            tel = get_telemetry()
            bank._ph_act = tel.phase("bank.act")
            bank._ph_observe = tel.phase("bank.observe")
            offsets = state["offsets"]
            rows = state["rows"]
            local = state["local"]
        else:
            bank = build()
            offsets = rows = local = None
        groups = getattr(bank, "_groups", None)
        if groups is None:
            raise RuntimeError(
                "sharded runs require a regret-family grouped bank "
                "(GroupedRegretBank); this factory's fused bank exposes "
                "no row-group structure for the parent ledger to mirror"
            )
        lanes = _open_lanes(handles)
        conn.send(
            ("hello", [(g.width, len(g.channels), g.rows.rows) for g in groups])
        )
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "act":
                _, n, commands, offsets_list = msg
                _apply_commands(bank, commands)
                offsets = np.asarray(offsets_list, dtype=np.int64)
                rows = lanes["rows"][:n]
                local = bank.act_all(offsets, rows)
                lanes["actions"][:n] = local
                conn.send(("ok",))
            elif kind == "observe":
                n = msg[1]
                bank.observe_all(offsets, rows, local, lanes["utilities"][:n])
                conn.send(("ok",))
            elif kind == "buffers":
                lanes = _open_lanes(msg[1])
                conn.send(("ok",))
            elif kind == "checkpoint":
                conn.send(
                    ("ok", _pickle_bank_state(bank, offsets, rows, local))
                )
            elif kind == "stop":
                break
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown shard message {kind!r}")
    except BaseException:
        try:
            conn.send(
                ("err", f"shard {shard_index}:\n{traceback.format_exc()}")
            )
        except Exception:  # pragma: no cover - parent already gone
            pass
        os._exit(1)
    os._exit(0)


# ----------------------------------------------------------------------
# Parent-side row ledger
# ----------------------------------------------------------------------


class _LedgerRows(_RowBank):
    """A :class:`_RowBank` free-list with no backing storage to grow."""

    def _grow_rows(self, new_rows: int) -> None:
        pass

    def _reset_rows(self, rows: np.ndarray) -> None:
        pass


class _ShardLedger:
    """Parent-side mirror of one shard bank's row allocator.

    Groups the shard's (local) channels by ascending width — the same
    partition :class:`~repro.runtime.grouped_bank.GroupedRegretBank`
    builds — and replays the identical free-list logic, seeded with the
    initial capacities the worker reported at construction.  Row ids
    therefore come out of ``acquire``/``release`` with zero IPC; the
    worker asserts agreement when it replays each command.
    """

    def __init__(self, widths: Sequence[int], report) -> None:
        by_width: dict = {}
        for c, width in enumerate(widths):
            by_width.setdefault(int(width), []).append(c)
        expected = [(w, len(by_width[w])) for w in sorted(by_width)]
        got = [(int(w), int(n)) for w, n, _ in report]
        if expected != got:
            raise RuntimeError(
                f"shard bank group structure {got} does not match the "
                f"parent's channel partition {expected}"
            )
        self._groups = [_LedgerRows(int(rows)) for _, _, rows in report]
        self._group_of = np.empty(len(widths), dtype=np.int64)
        for index, width in enumerate(sorted(by_width)):
            for c in by_width[width]:
                self._group_of[c] = index

    def acquire(self, channel: int) -> int:
        return self._groups[self._group_of[channel]].acquire()

    def acquire_many(self, channel: int, count: int) -> np.ndarray:
        return self._groups[self._group_of[channel]].acquire_many(count)

    def release(self, channel: int, row: int) -> None:
        self._groups[self._group_of[channel]].release(row)


# ----------------------------------------------------------------------
# Parent-side bank facade
# ----------------------------------------------------------------------


def _entry_wire(entry):
    """The pipe message for a logged exchange (lane data travels shm)."""
    if entry[0] == "act":
        _, n, commands, offsets, _rows = entry
        return ("act", n, commands, offsets)
    return ("observe", entry[1])


def _shutdown(procs, conns, handle_dicts) -> None:
    """Best-effort teardown shared by ``close()`` and the finalizer."""
    for conn in conns:
        if conn is None:
            continue
        try:
            conn.send(("stop",))
        except Exception:
            pass
    for proc in procs:
        if proc is None:
            continue
        try:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
        except Exception:
            pass
    for conn in conns:
        if conn is None:
            continue
        try:
            conn.close()
        except Exception:
            pass
    for handles in handle_dicts:
        if not handles:
            continue
        for handle in handles.values():
            try:
                handle.cleanup()
            except Exception:
                pass


class _ShardedChannelView:
    """Introspection stub: sharded populations live out-of-process."""

    def __init__(self, bank: "ShardedGroupedBank", channel: int) -> None:
        self._bank = bank
        self.channel = int(channel)

    @property
    def num_actions(self) -> int:
        """The channel's helper count."""
        return self._bank.num_actions_of(self.channel)

    @property
    def population(self):
        raise RuntimeError(
            "sharded banks host their populations in worker processes; "
            "per-channel population introspection is only available on "
            "the in-process engines"
        )


class ShardedGroupedBank:
    """The grouped-bank facade over a fleet of shard workers.

    Implements the :class:`~repro.runtime.grouped_bank.GroupedLearnerBank`
    protocol for the parent's round loop; channels are partitioned into
    ``shards`` contiguous ranges (``np.array_split`` over channel ids,
    so the channel-sorted row permutation slices per shard without a
    gather).  See the module docstring for the exchange protocol and the
    recovery story.
    """

    def __init__(
        self,
        arm_counts: Sequence[int],
        rngs: Sequence,
        make_grouped,
        shards: int,
        checkpoint_every: int = 64,
        heartbeat_timeout: float = 60.0,
        max_retries: int = 2,
        mp_context: str = "fork",
    ) -> None:
        num_channels = len(arm_counts)
        shards = int(shards)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shards > num_channels:
            raise ValueError(
                f"shards must not exceed num_channels={num_channels}, "
                f"got {shards}"
            )
        if len(rngs) != num_channels:
            raise ValueError("need one child generator per channel")
        try:
            self._ctx = mp.get_context(mp_context)
        except ValueError as exc:
            raise RuntimeError(
                f"sharded runs need the {mp_context!r} multiprocessing "
                "start method (fork shares the bank factory and RNG "
                "streams with workers without pickling)"
            ) from exc
        self._arm_counts = [int(a) for a in arm_counts]
        # Sliced into the workers at fork; the parent must never draw
        # from these — their pristine state is what makes a
        # from-scratch respawn deterministic.
        self._rngs = list(rngs)
        self._make_grouped = make_grouped
        self._checkpoint_every = int(checkpoint_every)
        self._timeout = float(heartbeat_timeout)
        self._max_retries = int(max_retries)

        parts = np.array_split(np.arange(num_channels, dtype=np.int64), shards)
        self._bounds = [(int(p[0]), int(p[-1]) + 1) for p in parts]
        self._shard_of = np.empty(num_channels, dtype=np.int64)
        for s, (lo, hi) in enumerate(self._bounds):
            self._shard_of[lo:hi] = s
        self._num_shards = shards

        self._conns: List = [None] * shards
        self._procs: List = [None] * shards
        self._handles: List = [None] * shards
        self._lanes: List = [None] * shards
        self._caps = [0] * shards
        self._ledgers: List[Optional[_ShardLedger]] = [None] * shards
        self._pending: List[list] = [[] for _ in range(shards)]
        self._logs: List[list] = [[] for _ in range(shards)]
        self._checkpoints: List[Optional[bytes]] = [None] * shards
        self._attempts = [0] * shards
        self._rounds_since_checkpoint = 0
        self._closed = False

        tel = get_telemetry()
        self._ph_act = tel.phase("bank.act")
        self._ph_observe = tel.phase("bank.observe")
        self._ph_shard_act = [
            tel.phase(f"bank.shard{s}.act") for s in range(shards)
        ]
        self._ph_shard_observe = [
            tel.phase(f"bank.shard{s}.observe") for s in range(shards)
        ]
        self._ctr_respawns = tel.counter("bank.shard_respawns")

        self._finalizer = weakref.finalize(
            self, _shutdown, self._procs, self._conns, self._handles
        )
        try:
            for s in range(shards):
                self._grow_lanes(s, _INITIAL_LANE_ROWS)
                report = self._spawn(s)
                lo, hi = self._bounds[s]
                self._ledgers[s] = _ShardLedger(
                    self._arm_counts[lo:hi], report
                )
        except BaseException:
            self.close()
            raise
        logger.debug(
            "sharded bank up: C=%d shards=%d bounds=%s",
            num_channels, shards, self._bounds,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_channels(self) -> int:
        return len(self._arm_counts)

    @property
    def num_shards(self) -> int:
        """Worker processes hosting the banks."""
        return self._num_shards

    @property
    def shard_pids(self) -> List[int]:
        """Worker pids, in shard order (fault-injection tests kill these)."""
        return [proc.pid for proc in self._procs]

    @property
    def shard_bounds(self) -> List[tuple]:
        """Per shard: its contiguous ``[lo, hi)`` channel range."""
        return list(self._bounds)

    def num_actions_of(self, channel: int) -> int:
        return self._arm_counts[channel]

    def channel_views(self) -> List[_ShardedChannelView]:
        return [
            _ShardedChannelView(self, c) for c in range(len(self._arm_counts))
        ]

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _spawn(self, s: int):
        """Fork one worker; returns its hello report (group structure)."""
        lo, hi = self._bounds[s]
        widths = self._arm_counts[lo:hi]
        rngs = self._rngs[lo:hi]
        make = self._make_grouped

        def build():
            return make(widths, rngs)

        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker,
            args=(
                child_conn, build, self._checkpoints[s],
                dict(self._handles[s]), s,
            ),
            daemon=True,
            name=f"repro-shard-{s}",
        )
        proc.start()
        child_conn.close()
        self._conns[s] = parent_conn
        self._procs[s] = proc
        msg = self._recv(s, timeout=_HELLO_TIMEOUT_S)
        if msg[0] != "hello":  # pragma: no cover - protocol bug
            raise RuntimeError(f"shard {s} greeted with {msg[0]!r}")
        return msg[1]

    def _send(self, s: int, msg) -> None:
        try:
            self._conns[s].send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise _ShardDead(f"shard {s} pipe closed on send: {exc!r}")

    def _recv(self, s: int, timeout: Optional[float] = None):
        """One barrier wait; every reply doubles as a heartbeat."""
        conn, proc = self._conns[s], self._procs[s]
        deadline = time.monotonic() + (
            self._timeout if timeout is None else timeout
        )
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _ShardDead(
                    f"shard {s} missed its heartbeat deadline "
                    f"({self._timeout:.1f}s)"
                )
            try:
                if conn.poll(min(_POLL_TICK_S, remaining)):
                    msg = conn.recv()
                    break
            except (EOFError, OSError) as exc:
                raise _ShardDead(f"shard {s} connection lost: {exc!r}")
            if not proc.is_alive():
                raise _ShardDead(
                    f"shard {s} died (exit code {proc.exitcode})"
                )
        if msg[0] == "err":
            # A worker exception is deterministic (the replay would hit
            # it again): surface it instead of burning retries.
            raise RuntimeError(f"shard worker failed:\n{msg[1]}")
        return msg

    def _reap(self, s: int) -> None:
        proc, conn = self._procs[s], self._conns[s]
        if proc is not None:
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=5.0)
        if conn is not None:
            try:
                conn.close()
            except Exception:
                pass

    def _respawn(self, s: int, cause: str = "") -> None:
        """Rebuild a dead shard and replay its log (bit-identical state).

        On return the shard has re-applied every exchange since its last
        checkpoint — including whichever operation the caller was in the
        middle of (it is always the newest log entry) — so the caller
        simply skips its own barrier wait.
        """
        while True:
            self._attempts[s] += 1
            self._ctr_respawns.inc()
            if self._attempts[s] > self._max_retries:
                raise RuntimeError(
                    f"shard {s} died and exhausted its {self._max_retries} "
                    f"retries: {cause}"
                )
            self._reap(s)
            logger.warning(
                "shard %d lost (%s); respawning (attempt %d/%d), "
                "replaying %d exchange(s)%s",
                s, cause, self._attempts[s], self._max_retries,
                len(self._logs[s]),
                " from checkpoint" if self._checkpoints[s] else "",
            )
            try:
                self._spawn(s)
                for entry in self._logs[s]:
                    self._write_lanes(s, entry)
                    self._send(s, _entry_wire(entry))
                    self._recv(s)
            except _ShardDead as exc:
                cause = str(exc)
                continue
            return

    # ------------------------------------------------------------------
    # Exchange lanes
    # ------------------------------------------------------------------

    def _grow_lanes(self, s: int, need: int) -> None:
        """Ensure the shard's shared lanes hold ``need`` rows (doubling)."""
        cap = max(_INITIAL_LANE_ROWS, self._caps[s])
        while cap < need:
            cap *= 2
        if self._handles[s] is not None and cap == self._caps[s]:
            return
        old = self._handles[s]
        handles = {
            "rows": share_array(np.zeros(cap, dtype=np.int64)),
            "actions": share_array(np.zeros(cap, dtype=np.int64)),
            "utilities": share_array(np.zeros(cap, dtype=np.float64)),
        }
        self._handles[s] = handles
        self._lanes[s] = {
            "rows": handles["rows"].load(writable=True),
            "utilities": handles["utilities"].load(writable=True),
            "actions": handles["actions"].load(),
        }
        self._caps[s] = cap
        if old is not None:
            try:
                self._send(s, ("buffers", dict(handles)))
                self._recv(s)
            except _ShardDead as exc:
                # The respawn ships the new handles as worker args.
                self._respawn(s, cause=str(exc))
            for handle in old.values():
                handle.cleanup()

    def _write_lanes(self, s: int, entry) -> None:
        if entry[0] == "act":
            n, rows = entry[1], entry[4]
            self._lanes[s]["rows"][:n] = rows
        else:
            n, utilities = entry[1], entry[2]
            self._lanes[s]["utilities"][:n] = utilities

    def _dispatch(self, s: int, entry) -> bool:
        """Start one exchange; ``False`` = a respawn already finished it."""
        try:
            self._write_lanes(s, entry)
            self._send(s, _entry_wire(entry))
            return True
        except _ShardDead as exc:
            self._respawn(s, cause=str(exc))
            return False

    def _finish(self, s: int, in_flight: bool) -> None:
        """Collect one exchange's barrier ack (or recover the shard)."""
        if not in_flight:
            return
        try:
            self._recv(s)
        except _ShardDead as exc:
            self._respawn(s, cause=str(exc))

    # ------------------------------------------------------------------
    # Row lifecycle (parent ledger + queued commands)
    # ------------------------------------------------------------------

    def _locate(self, channel: int):
        channel = int(channel)
        s = int(self._shard_of[channel])
        return s, channel - self._bounds[s][0]

    def acquire(self, channel: int) -> int:
        s, local_channel = self._locate(channel)
        row = int(self._ledgers[s].acquire(local_channel))
        self._pending[s].append(("acquire", local_channel, row))
        return row

    def acquire_many(self, channel: int, count: int) -> np.ndarray:
        s, local_channel = self._locate(channel)
        rows = self._ledgers[s].acquire_many(local_channel, int(count))
        self._pending[s].append(
            ("acquire_many", local_channel, int(count), rows.copy())
        )
        return rows

    def release(self, channel: int, row: int) -> None:
        s, local_channel = self._locate(channel)
        self._ledgers[s].release(local_channel, int(row))
        self._pending[s].append(("release", local_channel, int(row)))

    # ------------------------------------------------------------------
    # The two fused calls
    # ------------------------------------------------------------------

    def act_all(self, offsets: np.ndarray, rows: np.ndarray) -> np.ndarray:
        t0 = self._ph_act.start()
        local = np.empty(int(offsets[-1]), dtype=np.int64)
        spans = []
        in_flight = []
        for s, (lo, hi) in enumerate(self._bounds):
            start, stop = int(offsets[lo]), int(offsets[hi])
            n = stop - start
            spans.append((start, stop))
            self._grow_lanes(s, n)
            local_offsets = [int(o) - start for o in offsets[lo:hi + 1]]
            entry = (
                "act", n, self._pending[s], local_offsets,
                np.array(rows[start:stop], dtype=np.int64),
            )
            self._pending[s] = []
            self._logs[s].append(entry)
            in_flight.append(self._dispatch(s, entry))
        for s, (start, stop) in enumerate(spans):
            ts = self._ph_shard_act[s].start()
            self._finish(s, in_flight[s])
            self._ph_shard_act[s].stop(ts)
            local[start:stop] = self._lanes[s]["actions"][:stop - start]
        self._ph_act.stop(t0)
        return local

    def observe_all(
        self,
        offsets: np.ndarray,
        rows: np.ndarray,
        actions: np.ndarray,
        utilities: np.ndarray,
    ) -> None:
        t0 = self._ph_observe.start()
        in_flight = []
        for s, (lo, hi) in enumerate(self._bounds):
            start, stop = int(offsets[lo]), int(offsets[hi])
            entry = (
                "observe", stop - start,
                np.array(utilities[start:stop], dtype=np.float64),
            )
            self._logs[s].append(entry)
            in_flight.append(self._dispatch(s, entry))
        for s in range(self._num_shards):
            ts = self._ph_shard_observe[s].start()
            self._finish(s, in_flight[s])
            self._ph_shard_observe[s].stop(ts)
        self._ph_observe.stop(t0)
        self._rounds_since_checkpoint += 1
        if (
            self._checkpoint_every
            and self._rounds_since_checkpoint >= self._checkpoint_every
        ):
            self._checkpoint()

    def _checkpoint(self) -> None:
        """Snapshot every shard's state; truncate the replay logs."""
        for s in range(self._num_shards):
            try:
                self._send(s, ("checkpoint",))
                msg = self._recv(s)
            except _ShardDead as exc:
                # The shard was rebuilt with its old log intact; its
                # next cadence retries the snapshot.
                self._respawn(s, cause=str(exc))
                continue
            self._checkpoints[s] = msg[1]
            self._logs[s] = []
        self._rounds_since_checkpoint = 0

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop the workers and release the shared lanes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()


class _ShardedFactory:
    """Adapter handing :class:`VectorizedStreamingSystem` a sharded bank.

    Wraps a stock :class:`~repro.runtime.learner_bank.GroupableBankFactory`:
    per-channel calls pass through, ``make_grouped`` builds the
    :class:`ShardedGroupedBank` around the wrapped factory's own fused
    hook (which each worker invokes to build its real bank).
    """

    def __init__(self, base, shards: int, options: dict) -> None:
        inner = getattr(base, "make_grouped", None)
        if inner is None:
            raise ValueError(
                "sharded runs need a bank factory with a fused "
                "make_grouped hook (a stock regret-family factory from "
                "repro.runtime.bank_factory)"
            )
        self._base = base
        self._inner = inner
        self._shards = int(shards)
        self._options = dict(options)
        self.built: Optional[ShardedGroupedBank] = None

    def __call__(self, num_actions: int, rng):
        return self._base(num_actions, rng)

    def make_grouped(self, arm_counts, rngs) -> ShardedGroupedBank:
        self.built = ShardedGroupedBank(
            arm_counts, rngs, self._inner, self._shards, **self._options
        )
        return self.built


class ShardedSystem(VectorizedStreamingSystem):
    """A :class:`VectorizedStreamingSystem` whose banks live in workers.

    Same constructor surface plus ``shards`` and the containment knobs;
    traces are bit-identical to the single-process engine for any shard
    count (asserted in ``tests/runtime/test_sharded.py``).  Workers hold
    OS resources: call :meth:`close` when done (or use the system as a
    context manager); a garbage-collection finalizer backstops leaks.

    Parameters
    ----------
    shards:
        Worker processes to partition the channels across (1 <= shards
        <= num_channels).
    checkpoint_every:
        Rounds between worker state snapshots (bounds the replay log a
        shard death re-executes); ``0`` disables checkpointing and
        replays from construction.
    heartbeat_timeout:
        Seconds a barrier wait may stall before the shard is declared
        dead and rebuilt.
    max_retries:
        Rebuilds allowed per shard before the run fails.
    """

    def __init__(
        self,
        config,
        bank_factory,
        shards: int,
        rng=None,
        capacity_process=None,
        initial_channels: Optional[Sequence[int]] = None,
        capacity_backend: str = "vectorized",
        dtype=np.float64,
        engine: str = "auto",
        checkpoint_every: int = 64,
        heartbeat_timeout: float = 60.0,
        max_retries: int = 2,
    ) -> None:
        if engine not in ("auto", "grouped"):
            raise ValueError(
                "sharded runs use the fused grouped engine; engine must "
                f"be 'auto' or 'grouped', got {engine!r}"
            )
        shim = _ShardedFactory(
            bank_factory,
            shards,
            {
                "checkpoint_every": checkpoint_every,
                "heartbeat_timeout": heartbeat_timeout,
                "max_retries": max_retries,
            },
        )
        try:
            super().__init__(
                config,
                shim,
                rng=rng,
                capacity_process=capacity_process,
                initial_channels=initial_channels,
                capacity_backend=capacity_backend,
                dtype=dtype,
                engine="grouped",
            )
        except BaseException:
            if shim.built is not None:
                shim.built.close()
            raise

    @property
    def num_shards(self) -> int:
        """Worker processes hosting the learner banks."""
        return self.bank.num_shards

    @property
    def shard_pids(self) -> List[int]:
        """Worker pids, in shard order."""
        return self.bank.shard_pids

    def close(self) -> None:
        """Stop the shard workers and release shared memory (idempotent)."""
        self.bank.close()

    def __enter__(self) -> "ShardedSystem":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
