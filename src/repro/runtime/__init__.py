"""Array-backed streaming runtime for population-scale experiments.

The scalar substrate in :mod:`repro.sim` advances one Python object per
peer per round — fine for the paper's 10–100-peer figures, hopeless for
10⁵–10⁶-peer scenarios.  This package re-implements the *same system* (same
:class:`~repro.sim.system.SystemConfig`, same
:class:`~repro.sim.trace.SystemTrace` schema, same server/churn semantics)
on dense arrays:

* :mod:`repro.runtime.peer_store` — struct-of-arrays peer table with an
  O(1) free-list for churn and generation counters against slot aliasing;
* :mod:`repro.runtime.learner_bank` — per-channel vectorized strategy
  blocks (RTHS / R2HS via :class:`repro.core.population.LearnerPopulation`,
  plus uniform and sticky baselines);
* :mod:`repro.runtime.grouped_bank` — the fused multi-channel engine:
  one :class:`~repro.runtime.grouped_bank.GroupedLearnerBank` owns every
  channel's rows and advances them with a single ``act_all`` /
  ``observe_all`` per round (one kernel pass per distinct channel width),
  bit-identical to the per-channel dispatch;
* :mod:`repro.runtime.system` — :class:`VectorizedStreamingSystem`, whose
  learning round is a handful of numpy ops (one fused learner draw,
  ``np.bincount`` loads, masked deficit accounting, one fused learner
  update — pick the dispatch with ``engine=``);
* :mod:`repro.runtime.sharded` — :class:`ShardedSystem`, the same facade
  with the learner banks channel-partitioned across worker processes
  (shared-memory exchange lanes, heartbeat/replay shard-death
  containment), traces bit-identical to the single-process engine.

Pick a backend per experiment: the scalar system for per-peer
introspection and plug-in scalar learners, the vectorized runtime for
scale (see README for the decision guide and measured speedups).
"""

from repro.runtime.grouped_bank import (
    GroupedChannelView,
    GroupedLearnerBank,
    GroupedRegretBank,
    PerChannelGroupedBank,
)
from repro.runtime.learner_bank import (
    BankFactory,
    GroupableBankFactory,
    LearnerBank,
    R2HSBank,
    RegretBank,
    RTHSBank,
    StickyBank,
    TopKRegretBank,
    UniformBank,
    bank_factory,
)
from repro.runtime.peer_store import PeerStore
from repro.runtime.sharded import ShardedGroupedBank, ShardedSystem
from repro.runtime.system import ENGINES, VectorizedStreamingSystem

__all__ = [
    "PeerStore",
    "LearnerBank",
    "BankFactory",
    "GroupableBankFactory",
    "RegretBank",
    "RTHSBank",
    "R2HSBank",
    "TopKRegretBank",
    "UniformBank",
    "StickyBank",
    "GroupedLearnerBank",
    "GroupedRegretBank",
    "GroupedChannelView",
    "PerChannelGroupedBank",
    "bank_factory",
    "ENGINES",
    "VectorizedStreamingSystem",
    "ShardedGroupedBank",
    "ShardedSystem",
]
