"""Vectorized per-channel learner banks.

A *bank* holds the strategy state of every peer watching one channel and
advances all of them per round with array ops — the population-scale
counterpart of handing each :class:`~repro.sim.entities.Peer` its own
:class:`~repro.game.interfaces.Learner` object.  Channels can have
different helper counts, so the vectorized system builds one bank per
channel (a *block*); each bank manages its own row space with a free-list
so churn joins/leaves are O(1).

The regret banks do **not** reimplement the paper's math: they wrap the
slot API of :class:`repro.core.population.LearnerPopulation`, which is the
single vectorized implementation of the RTHS/R2HS recursion (with a
constant step the recursion equals the literal RTHS history sums — see the
exact/recursive equivalence in ``tests/core/test_proxy_regret.py``).
:class:`UniformBank` and :class:`StickyBank` vectorize the corresponding
baselines from :mod:`repro.game.baselines`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, runtime_checkable

import numpy as np

from repro.core.population import LearnerPopulation
from repro.core.schedules import StepSchedule
from repro.core.sparse_population import TopKPopulation
from repro.util.rng import Seedish, as_generator

#: Builds one bank for a channel with ``num_actions`` helpers — the
#: vectorized analogue of :data:`repro.sim.system.LearnerFactory`.
BankFactory = Callable[[int, np.random.Generator], "LearnerBank"]

_INITIAL_ROWS = 64


@runtime_checkable
class LearnerBank(Protocol):
    """Strategy state for all peers of one channel, advanced in batch."""

    @property
    def num_actions(self) -> int:
        """Size of the action set (the channel's helper count)."""
        ...

    def acquire(self) -> int:
        """Claim a fresh-state row for a joining peer; returns its index."""
        ...

    def acquire_many(self, count: int) -> np.ndarray:
        """Bulk :meth:`acquire` for initial populations."""
        ...

    def release(self, row: int) -> None:
        """Return a leaving peer's row to the free pool."""
        ...

    def act(self, rows: np.ndarray) -> np.ndarray:
        """Sample one action per listed row."""
        ...

    def observe(
        self, rows: np.ndarray, actions: np.ndarray, utilities: np.ndarray
    ) -> None:
        """Feed realized utilities back to the listed rows."""
        ...


class _RowBank:
    """Shared row lifecycle: doubling capacity plus a LIFO free-list."""

    def __init__(self, initial_rows: int = _INITIAL_ROWS) -> None:
        if initial_rows < 1:
            raise ValueError("initial_rows must be >= 1")
        self._rows = int(initial_rows)
        # Popping from the tail hands out ascending rows 0, 1, 2, ...
        self._free: List[int] = list(range(self._rows - 1, -1, -1))

    @property
    def rows(self) -> int:
        """Current row capacity."""
        return self._rows

    def _grow_rows(self, new_rows: int) -> None:
        """Extend backing storage to ``new_rows`` (subclass hook)."""
        raise NotImplementedError

    def _reset_rows(self, rows: np.ndarray) -> None:
        """Restore ``rows`` to the fresh-learner state (subclass hook)."""
        raise NotImplementedError

    def _ensure_free(self, count: int) -> None:
        if len(self._free) >= count:
            return
        old = self._rows
        new = max(2 * old, old + count - len(self._free))
        self._grow_rows(new)
        self._free[:0] = range(new - 1, old - 1, -1)
        self._rows = new

    def acquire(self) -> int:
        self._ensure_free(1)
        row = self._free.pop()
        self._reset_rows(np.array([row], dtype=np.int64))
        return row

    def acquire_many(self, count: int) -> np.ndarray:
        if count < 0:
            raise ValueError("count must be >= 0")
        self._ensure_free(count)
        rows = np.array([self._free.pop() for _ in range(count)], dtype=np.int64)
        self._reset_rows(rows)
        return rows

    def release(self, row: int) -> None:
        self._free.append(int(row))


class RegretBank(_RowBank):
    """Vectorized regret-tracking block (the RTHS/R2HS recursion).

    Thin ownership wrapper over the slot API of
    :class:`~repro.core.population.LearnerPopulation`: ``acquire`` resets a
    population slot, ``act``/``observe`` advance the listed slots with
    per-slot stage counters (late joiners start at stage 0, exactly like a
    fresh scalar learner).
    """

    def __init__(
        self,
        num_actions: int,
        rng: Seedish = None,
        epsilon: float = 0.05,
        mu: Optional[float] = None,
        delta: float = 0.1,
        u_max: float = 1.0,
        schedule: Optional[StepSchedule] = None,
        initial_rows: int = _INITIAL_ROWS,
        dtype=np.float64,
    ) -> None:
        super().__init__(initial_rows)
        self._pop = LearnerPopulation(
            self.rows,
            num_actions,
            epsilon=epsilon,
            mu=mu,
            delta=delta,
            u_max=u_max,
            rng=rng,
            schedule=schedule,
            dtype=dtype,
        )

    @property
    def num_actions(self) -> int:
        return self._pop.num_helpers

    @property
    def population(self) -> LearnerPopulation:
        """The backing population (for diagnostics: regrets, strategies)."""
        return self._pop

    def _grow_rows(self, new_rows: int) -> None:
        self._pop.ensure_capacity(new_rows)

    def _reset_rows(self, rows: np.ndarray) -> None:
        self._pop.reset_slots(rows)

    def act(self, rows: np.ndarray) -> np.ndarray:
        return self._pop.act_slots(rows)

    def observe(
        self, rows: np.ndarray, actions: np.ndarray, utilities: np.ndarray
    ) -> None:
        self._pop.observe_slots(rows, actions, utilities)


class RTHSBank(RegretBank):
    """Vectorized RTHS (Algorithm 1): constant-step regret tracking.

    With a constant step size the recursive update carried by the backing
    population is *exactly* the literal RTHS history sums, so this bank and
    a population of :class:`~repro.core.rths.RTHSLearner` objects follow
    the same dynamics.
    """

    def __init__(
        self,
        num_actions: int,
        rng: Seedish = None,
        epsilon: float = 0.05,
        mu: Optional[float] = None,
        delta: float = 0.1,
        u_max: float = 1.0,
        initial_rows: int = _INITIAL_ROWS,
        dtype=np.float64,
    ) -> None:
        super().__init__(
            num_actions,
            rng=rng,
            epsilon=epsilon,
            mu=mu,
            delta=delta,
            u_max=u_max,
            schedule=None,
            initial_rows=initial_rows,
            dtype=dtype,
        )


class R2HSBank(RegretBank):
    """Vectorized R2HS (Algorithm 2): the recursive form, custom schedules
    allowed (a harmonic schedule recovers classic regret matching)."""


class TopKRegretBank(_RowBank):
    """Sparse top-k regret block for giant helper counts (``H >> 10^3``).

    Same slot API and the same RTHS/R2HS recursion as :class:`RegretBank`,
    but backed by :class:`~repro.core.sparse_population.TopKPopulation`:
    each row tracks an exact ``(k, k)`` regret block over its top-k helper
    arms plus an aggregated tail bucket, so a channel's memory is
    ``O(rows * k^2)`` instead of ``O(rows * H^2)``.  With ``k >= H`` the
    bank is bit-identical to :class:`RegretBank` (asserted in
    ``tests/runtime/test_topk_bank.py``); below that it is the controlled
    approximation described in the sparse-population module docstring.
    """

    def __init__(
        self,
        num_actions: int,
        k: int = 32,
        rng: Seedish = None,
        epsilon: float = 0.05,
        mu: Optional[float] = None,
        delta: float = 0.1,
        u_max: float = 1.0,
        schedule: Optional[StepSchedule] = None,
        initial_rows: int = _INITIAL_ROWS,
        dtype=np.float64,
        reselect_every: int = 32,
    ) -> None:
        super().__init__(initial_rows)
        self._pop = TopKPopulation(
            self.rows,
            num_actions,
            k=k,
            epsilon=epsilon,
            mu=mu,
            delta=delta,
            u_max=u_max,
            rng=rng,
            schedule=schedule,
            dtype=dtype,
            reselect_every=reselect_every,
        )

    @property
    def num_actions(self) -> int:
        return self._pop.num_helpers

    @property
    def k(self) -> int:
        """Tracked arms per row (clamped to the channel's helper count)."""
        return self._pop.k

    @property
    def population(self) -> TopKPopulation:
        """The backing sparse population (for diagnostics)."""
        return self._pop

    def _grow_rows(self, new_rows: int) -> None:
        self._pop.ensure_capacity(new_rows)

    def _reset_rows(self, rows: np.ndarray) -> None:
        self._pop.reset_slots(rows)

    def act(self, rows: np.ndarray) -> np.ndarray:
        return self._pop.act_slots(rows)

    def observe(
        self, rows: np.ndarray, actions: np.ndarray, utilities: np.ndarray
    ) -> None:
        self._pop.observe_slots(rows, actions, utilities)


class UniformBank(_RowBank):
    """Vectorized :class:`~repro.game.baselines.UniformRandomLearner`."""

    def __init__(
        self,
        num_actions: int,
        rng: Seedish = None,
        initial_rows: int = _INITIAL_ROWS,
    ) -> None:
        super().__init__(initial_rows)
        if num_actions < 1:
            raise ValueError("num_actions must be >= 1")
        self._m = int(num_actions)
        self._rng = as_generator(rng)

    @property
    def num_actions(self) -> int:
        return self._m

    def _grow_rows(self, new_rows: int) -> None:
        pass  # stateless per row

    def _reset_rows(self, rows: np.ndarray) -> None:
        pass

    def act(self, rows: np.ndarray) -> np.ndarray:
        return self._rng.integers(0, self._m, size=np.asarray(rows).shape[0])

    def observe(
        self, rows: np.ndarray, actions: np.ndarray, utilities: np.ndarray
    ) -> None:
        actions = np.asarray(actions)
        if actions.size and (actions.min() < 0 or actions.max() >= self._m):
            raise ValueError("actions out of range")


class StickyBank(_RowBank):
    """Vectorized :class:`~repro.game.baselines.StickyLearner`: each row
    keeps its pick and re-picks uniformly with a small probability."""

    def __init__(
        self,
        num_actions: int,
        rng: Seedish = None,
        switch_probability: float = 0.01,
        initial_rows: int = _INITIAL_ROWS,
    ) -> None:
        super().__init__(initial_rows)
        if num_actions < 1:
            raise ValueError("num_actions must be >= 1")
        if not 0 <= switch_probability <= 1:
            raise ValueError("switch_probability must lie in [0, 1]")
        self._m = int(num_actions)
        self._switch = float(switch_probability)
        self._rng = as_generator(rng)
        self._current = self._rng.integers(0, self._m, size=self.rows)

    @property
    def num_actions(self) -> int:
        return self._m

    def _grow_rows(self, new_rows: int) -> None:
        extra = self._rng.integers(0, self._m, size=new_rows - self._current.size)
        self._current = np.concatenate([self._current, extra])

    def _reset_rows(self, rows: np.ndarray) -> None:
        self._current[rows] = self._rng.integers(0, self._m, size=rows.shape[0])

    def act(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.intp)
        switching = self._rng.random(rows.shape[0]) < self._switch
        if np.any(switching):
            self._current[rows[switching]] = self._rng.integers(
                0, self._m, size=int(switching.sum())
            )
        return self._current[rows].copy()

    def observe(
        self, rows: np.ndarray, actions: np.ndarray, utilities: np.ndarray
    ) -> None:
        actions = np.asarray(actions)
        if actions.size and (actions.min() < 0 or actions.max() >= self._m):
            raise ValueError("actions out of range")


class GroupableBankFactory:
    """A per-channel :data:`BankFactory` that can also build a fused bank.

    Calling the object with ``(num_actions, rng)`` builds one per-channel
    bank, exactly like a plain factory; :meth:`make_grouped` builds the
    fused :class:`~repro.runtime.grouped_bank.GroupedLearnerBank` over
    *all* channels at once.  The vectorized system's ``engine="auto"``
    picks the fused engine iff the factory it was handed exposes
    ``make_grouped`` — plain third-party lambdas fall back to the
    per-channel path automatically.
    """

    def __init__(self, per_channel: BankFactory, make_grouped) -> None:
        self._per_channel = per_channel
        self._make_grouped = make_grouped

    def __call__(self, num_actions: int, rng: np.random.Generator):
        return self._per_channel(num_actions, rng)

    def make_grouped(self, arm_counts, rngs):
        """Build the fused bank: ``(arm_counts, per-channel rngs)``."""
        return self._make_grouped(arm_counts, rngs)


def bank_factory(
    kind: str,
    epsilon: float = 0.05,
    mu: Optional[float] = None,
    delta: float = 0.1,
    u_max: float = 900.0,
    switch_probability: float = 0.01,
    dtype=np.float64,
    bank: str = "dense",
    topk: int = 32,
    reselect_every: int = 32,
) -> BankFactory:
    """Build a :data:`BankFactory` by name.

    ``kind`` is one of ``"rths"``, ``"r2hs"``, ``"uniform"``, ``"sticky"``.
    The hyper-parameters mirror the scalar learners; ``u_max`` defaults to
    the paper's maximum helper capacity (900 kbit/s).  ``dtype`` selects
    the regret banks' storage precision (float32 opt-in; see
    :class:`~repro.core.population.LearnerPopulation`); the stateless
    baselines ignore it.

    ``bank`` selects the regret families' storage family: ``"dense"``
    (the full per-row regret tensor) or ``"topk"`` (sparse
    :class:`TopKRegretBank` blocks tracking ``topk`` arms per row, with
    popularity-driven re-selection every ``reselect_every`` stages).  The
    baselines have no regret state and reject ``"topk"``.

    The regret families return a :class:`GroupableBankFactory` whose
    ``make_grouped`` hook fuses all channels into a
    :class:`~repro.runtime.grouped_bank.GroupedRegretBank` (one kernel
    pass per distinct channel width).  The baselines return a plain
    per-channel factory: their per-round cost *is* the per-channel RNG
    call, so there is nothing to fuse and ``engine="auto"`` honestly
    resolves to the per-channel dispatch for them.
    """
    kind = kind.lower()
    if bank not in ("dense", "topk"):
        raise ValueError(f"bank must be 'dense' or 'topk', got {bank!r}")
    if kind in ("rths", "r2hs"):
        # RTHS is the constant-step member of the family; with the spec
        # layer's constant epsilon both kinds share one recursion, so the
        # sparse variant serves both.
        if bank == "topk":
            def per_channel(h, rng):
                return TopKRegretBank(
                    h, k=topk, rng=rng, epsilon=epsilon, mu=mu, delta=delta,
                    u_max=u_max, dtype=dtype, reselect_every=reselect_every,
                )
        else:
            cls = RTHSBank if kind == "rths" else R2HSBank

            def per_channel(h, rng):
                return cls(
                    h, rng=rng, epsilon=epsilon, mu=mu, delta=delta,
                    u_max=u_max, dtype=dtype,
                )

        def make_grouped(arm_counts, rngs):
            from repro.runtime.grouped_bank import GroupedRegretBank

            return GroupedRegretBank(
                arm_counts, rngs, epsilon=epsilon, mu=mu, delta=delta,
                u_max=u_max, dtype=dtype, bank=bank, topk=topk,
                reselect_every=reselect_every,
            )

        return GroupableBankFactory(per_channel, make_grouped)
    if bank == "topk":
        raise ValueError(
            f"bank 'topk' applies to the regret families, not {kind!r}"
        )
    if kind == "uniform":
        return lambda h, rng: UniformBank(h, rng=rng)
    if kind == "sticky":
        return lambda h, rng: StickyBank(
            h, rng=rng, switch_probability=switch_probability
        )
    raise ValueError(f"unknown bank kind {kind!r}")
