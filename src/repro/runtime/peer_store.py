"""Struct-of-arrays peer table with O(1) churn.

The scalar :class:`~repro.sim.system.StreamingSystem` holds one Python
:class:`~repro.sim.entities.Peer` object per viewer; at the
millions-of-users scale the runtime targets, object churn and per-object
attribute access dominate.  :class:`PeerStore` keeps the same per-peer
state as parallel numpy arrays (one column per field) so the round loop
reads and writes whole-population slices.

Joins and leaves are O(1) array writes through a **free-list**: a leaving
peer's slot index is pushed on a stack and handed to the next arrival.  To
make reuse safe, every slot carries a **generation** counter bumped on
release; a ``(slot, generation)`` pair is a handle that can never alias a
later occupant of the same slot (the property test in
``tests/runtime/test_peer_store.py`` hammers this).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, List, Set, Tuple

import numpy as np


class PeerStore:
    """Dense per-peer state in struct-of-arrays layout.

    Public array attributes (length = :attr:`capacity`; rows at or past
    :attr:`size` are unused):

    * ``channel`` — watched channel id (``-1`` when the slot is free)
    * ``demand`` — required streaming rate (kbit/s)
    * ``online`` — participation mask (the round loop's filter)
    * ``bank_row`` — row index inside the channel's learner bank
    * ``generation`` — bumped every release; guards stale handles
    * ``uid`` — globally unique peer id (never reused)
    * ``joined_at`` / ``left_at`` — simulation timestamps
    * ``rounds_participated`` / ``cumulative_rate`` / ``cumulative_deficit``
      — the same lifetime statistics :class:`~repro.sim.entities.Peer`
      accumulates

    Mutating these arrays directly is allowed for round-loop hot paths
    (the vectorized system does); slot lifecycle must go through
    :meth:`allocate` / :meth:`release`.  Note the vectorized system
    memoizes its round grouping over ``channel`` / ``demand`` /
    ``online`` / ``bank_row`` — after editing those columns from outside,
    call :meth:`~repro.runtime.system.VectorizedStreamingSystem.invalidate_round_cache`.

    ``dtype`` (``numpy.float64`` default, ``numpy.float32`` opt-in) sets
    the precision of the rate columns (``demand`` / ``cumulative_rate`` /
    ``cumulative_deficit``) — the arrays the round loop streams through
    every round.  Timestamps (``joined_at`` / ``left_at``) stay float64:
    they are cold and lose whole simulation seconds in float32 once the
    clock passes ~2²⁴.
    """

    def __init__(self, initial_capacity: int = 64, dtype=np.float64) -> None:
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"dtype must be float32 or float64, got {dtype}")
        cap = int(initial_capacity)
        self.channel = np.full(cap, -1, dtype=np.int64)
        self.demand = np.zeros(cap, dtype=dtype)
        self.online = np.zeros(cap, dtype=bool)
        self.bank_row = np.full(cap, -1, dtype=np.int64)
        self.generation = np.zeros(cap, dtype=np.int64)
        self.uid = np.full(cap, -1, dtype=np.int64)
        self.joined_at = np.zeros(cap)
        self.left_at = np.full(cap, np.nan)
        self.rounds_participated = np.zeros(cap, dtype=np.int64)
        self.cumulative_rate = np.zeros(cap, dtype=dtype)
        self.cumulative_deficit = np.zeros(cap, dtype=dtype)
        self._dtype = dtype
        self._capacity = cap
        self._size = 0              # slots ever touched (fresh watermark)
        self._free: List[int] = []  # released slots, LIFO
        self._num_online = 0
        self._total_created = 0
        # Incremental channel index: per-channel sorted slot lists kept in
        # step with allocate/release, plus cached ndarray segments (see
        # channel_grouping).  A join/leave costs O(log n_c + n_c memmove)
        # here instead of an O(N * C) per-channel rescan at the next
        # round.  _index_valid=False forces a full rebuild from the
        # columns (the escape hatch for direct column mutation).
        self._members: Dict[int, List[int]] = {}
        self._member_arrays: Dict[int, np.ndarray] = {}
        self._dirty_channels: Set[int] = set()
        self._index_valid = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Allocated array length."""
        return self._capacity

    @property
    def dtype(self) -> np.dtype:
        """Float dtype of the rate columns."""
        return self._dtype

    @property
    def size(self) -> int:
        """Highest slot index ever used plus one."""
        return self._size

    @property
    def num_online(self) -> int:
        """Currently online peers — O(1)."""
        return self._num_online

    @property
    def total_created(self) -> int:
        """Peers ever allocated (equals the next uid)."""
        return self._total_created

    @property
    def free_slots(self) -> int:
        """Slots currently on the free-list."""
        return len(self._free)

    def online_slots(self) -> np.ndarray:
        """Indices of online slots, ascending (= peer creation order for a
        churn-free population)."""
        return np.flatnonzero(self.online[: self._size])

    def is_live(self, slot: int, generation: int) -> bool:
        """Whether the handle ``(slot, generation)`` still names a live peer."""
        return (
            0 <= slot < self._size
            and bool(self.online[slot])
            and int(self.generation[slot]) == generation
        )

    # ------------------------------------------------------------------
    # Incremental channel index
    # ------------------------------------------------------------------

    def _index_add(self, channel: int, slot: int) -> None:
        if not self._index_valid:
            return
        members = self._members.setdefault(channel, [])
        if not members or slot > members[-1]:
            members.append(slot)
        else:
            insort(members, slot)
        self._dirty_channels.add(channel)

    def _index_remove(self, channel: int, slot: int) -> None:
        if not self._index_valid:
            return
        members = self._members.get(channel)
        if members:
            i = bisect_left(members, slot)
            if i < len(members) and members[i] == slot:
                del members[i]
                self._dirty_channels.add(channel)
                return
        # The slot is not where the index says it should be — the channel
        # column was edited directly without invalidate_channel_index().
        # Fall back to a full rebuild rather than serve a stale grouping.
        self._index_valid = False

    def invalidate_channel_index(self) -> None:
        """Force a full channel-index rebuild at the next grouping call.

        Call after mutating the ``channel`` or ``online`` columns
        directly (slot lifecycle through :meth:`allocate` /
        :meth:`release` maintains the index incrementally).
        """
        self._index_valid = False

    def _rebuild_index(self) -> None:
        online = np.flatnonzero(self.online[: self._size])
        channels = self.channel[online]
        order = np.argsort(channels, kind="stable")
        sorted_slots = online[order]
        sorted_channels = channels[order]
        self._members = {}
        uniques, starts = np.unique(sorted_channels, return_index=True)
        bounds = list(starts) + [sorted_slots.size]
        for i, channel in enumerate(uniques):
            self._members[int(channel)] = sorted_slots[
                bounds[i]: bounds[i + 1]
            ].tolist()
        self._member_arrays = {}
        self._dirty_channels = set(self._members)
        self._index_valid = True

    def channel_grouping(
        self, num_channels: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Online slots sorted by ``(channel, slot)`` plus segment offsets.

        Returns ``(slots_sorted, offsets)`` with ``offsets`` of shape
        ``(num_channels + 1,)``: channel ``c``'s online slots are
        ``slots_sorted[offsets[c]:offsets[c + 1]]``, ascending.  This is
        the channel-sorted permutation the fused learner engine consumes;
        it is maintained incrementally under churn (only channels dirtied
        since the last call re-materialize their segment array).
        """
        if not self._index_valid:
            self._rebuild_index()
        counts = np.zeros(num_channels + 1, dtype=np.int64)
        for channel, members in self._members.items():
            if not members:
                continue
            if not 0 <= channel < num_channels:
                raise ValueError(
                    f"slot channel {channel} outside [0, {num_channels})"
                )
            counts[channel + 1] = len(members)
        offsets = np.cumsum(counts)
        slots_sorted = np.empty(int(offsets[-1]), dtype=np.int64)
        for channel, members in self._members.items():
            if not members:
                continue
            if (
                channel in self._dirty_channels
                or channel not in self._member_arrays
            ):
                self._member_arrays[channel] = np.array(
                    members, dtype=np.int64
                )
            slots_sorted[offsets[channel]: offsets[channel + 1]] = (
                self._member_arrays[channel]
            )
        self._dirty_channels.clear()
        return slots_sorted, offsets

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _grow(self, needed: int) -> None:
        new_cap = max(needed, 2 * self._capacity)
        extra = new_cap - self._capacity

        def pad(arr: np.ndarray, fill) -> np.ndarray:
            tail = np.full(extra, fill, dtype=arr.dtype)
            return np.concatenate([arr, tail])

        self.channel = pad(self.channel, -1)
        self.demand = pad(self.demand, 0.0)
        self.online = pad(self.online, False)
        self.bank_row = pad(self.bank_row, -1)
        self.generation = pad(self.generation, 0)
        self.uid = pad(self.uid, -1)
        self.joined_at = pad(self.joined_at, 0.0)
        self.left_at = pad(self.left_at, np.nan)
        self.rounds_participated = pad(self.rounds_participated, 0)
        self.cumulative_rate = pad(self.cumulative_rate, 0.0)
        self.cumulative_deficit = pad(self.cumulative_deficit, 0.0)
        self._capacity = new_cap

    def allocate(
        self, channel: int, demand: float, now: float = 0.0, bank_row: int = -1
    ) -> Tuple[int, int]:
        """Bring one peer online; returns its ``(slot, generation)`` handle.

        Reuses the most recently freed slot if any (LIFO keeps the touched
        region compact), else extends the fresh watermark.
        """
        if demand <= 0:
            raise ValueError(f"demand must be positive, got {demand}")
        if self._free:
            slot = self._free.pop()
        else:
            if self._size >= self._capacity:
                self._grow(self._size + 1)
            slot = self._size
            self._size += 1
        self.channel[slot] = int(channel)
        self.demand[slot] = float(demand)
        self.online[slot] = True
        self.bank_row[slot] = int(bank_row)
        self.uid[slot] = self._total_created
        self.joined_at[slot] = float(now)
        self.left_at[slot] = np.nan
        self.rounds_participated[slot] = 0
        self.cumulative_rate[slot] = 0.0
        self.cumulative_deficit[slot] = 0.0
        self._total_created += 1
        self._num_online += 1
        self._index_add(int(channel), slot)
        return slot, int(self.generation[slot])

    def allocate_many(
        self,
        channels: np.ndarray,
        demands: np.ndarray,
        now: float = 0.0,
        bank_rows: np.ndarray | None = None,
    ) -> np.ndarray:
        """Bulk variant of :meth:`allocate` for initial populations.

        Only valid while the free-list is empty (construction time); slots
        come out as the contiguous block ``[size, size + k)``.
        """
        channels = np.asarray(channels, dtype=np.int64)
        demands = np.asarray(demands, dtype=float)
        k = channels.shape[0]
        if demands.shape != (k,):
            raise ValueError("channels and demands must align")
        if np.any(demands <= 0):
            raise ValueError("demands must be positive")
        if self._free:
            raise RuntimeError("allocate_many requires an empty free-list")
        start = self._size
        if start + k > self._capacity:
            self._grow(start + k)
        slots = np.arange(start, start + k)
        self.channel[slots] = channels
        self.demand[slots] = demands
        self.online[slots] = True
        self.bank_row[slots] = -1 if bank_rows is None else bank_rows
        self.uid[slots] = np.arange(self._total_created, self._total_created + k)
        self.joined_at[slots] = float(now)
        self._size += k
        self._total_created += k
        self._num_online += k
        if self._index_valid:
            # Fresh slots are a block past every existing index entry, so
            # per-channel extends preserve sortedness.
            for channel in np.unique(channels):
                members = self._members.setdefault(int(channel), [])
                members.extend(slots[channels == channel].tolist())
                self._dirty_channels.add(int(channel))
        return slots

    def release(self, slot: int, now: float = 0.0) -> None:
        """Take a peer offline and recycle its slot (bumps the generation)."""
        slot = int(slot)
        if not (0 <= slot < self._size) or not self.online[slot]:
            raise ValueError(f"slot {slot} is not online")
        self.online[slot] = False
        self.left_at[slot] = float(now)
        self.generation[slot] += 1
        self._num_online -= 1
        self._free.append(slot)
        self._index_remove(int(self.channel[slot]), slot)
