"""Unit tests for the telemetry instruments, registry, and snapshot merge."""

import pytest

from repro.telemetry import (
    DURATION_BUCKETS_S,
    NULL,
    SNAPSHOT_SCHEMA,
    Telemetry,
    merge_snapshots,
    validate_snapshot,
)


class TestInstruments:
    def test_counter_accumulates(self):
        tel = Telemetry(enabled=True)
        ctr = tel.counter("events")
        ctr.inc()
        ctr.inc(4)
        assert tel.snapshot()["counters"]["events"] == 5

    def test_gauge_keeps_last_value(self):
        tel = Telemetry(enabled=True)
        g = tel.gauge("online")
        g.set(10.0)
        g.set(7.0)
        assert tel.snapshot()["gauges"]["online"] == 7.0

    def test_same_name_returns_same_instrument(self):
        tel = Telemetry(enabled=True)
        assert tel.counter("x") is tel.counter("x")
        assert tel.phase("p") is tel.phase("p")

    def test_phase_timer_start_stop_accumulates(self):
        tel = Telemetry(enabled=True)
        p = tel.phase("work")
        for _ in range(3):
            t0 = p.start()
            p.stop(t0)
        snap = tel.snapshot()["phases"]["work"]
        assert snap["count"] == 3
        assert snap["total_s"] >= 0.0
        assert snap["min_s"] <= snap["max_s"]

    def test_phase_timer_context_manager(self):
        tel = Telemetry(enabled=True)
        with tel.phase("scoped"):
            pass
        assert tel.snapshot()["phases"]["scoped"]["count"] == 1

    def test_histogram_bucket_edges(self):
        tel = Telemetry(enabled=True)
        h = tel.histogram("lat", bounds=(1.0, 10.0))
        h.observe(0.5)   # first bucket (<= 1.0)
        h.observe(1.0)   # boundary lands in the first bucket
        h.observe(5.0)   # second bucket
        h.observe(50.0)  # overflow bucket
        snap = tel.snapshot()["histograms"]["lat"]
        assert snap["bounds"] == [1.0, 10.0]
        assert snap["counts"] == [2, 1, 1]
        assert snap["count"] == 4
        assert snap["min"] == 0.5 and snap["max"] == 50.0
        assert snap["sum"] == pytest.approx(56.5)

    def test_histogram_redeclare_with_different_bounds_raises(self):
        tel = Telemetry(enabled=True)
        tel.histogram("lat", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            tel.histogram("lat", bounds=(1.0, 3.0))

    def test_histogram_non_ascending_bounds_rejected(self):
        tel = Telemetry(enabled=True)
        with pytest.raises(ValueError):
            tel.histogram("bad", bounds=(2.0, 1.0))

    def test_default_duration_buckets_are_strictly_ascending(self):
        assert all(
            a < b
            for a, b in zip(DURATION_BUCKETS_S, DURATION_BUCKETS_S[1:])
        )


class TestNullPath:
    def test_disabled_registry_hands_out_the_null_singleton(self):
        tel = Telemetry(enabled=False)
        assert tel.counter("c") is NULL
        assert tel.gauge("g") is NULL
        assert tel.histogram("h") is NULL
        assert tel.phase("p") is NULL

    def test_null_instrument_absorbs_the_whole_protocol(self):
        t0 = NULL.start()
        assert NULL.stop(t0) == 0.0
        NULL.inc()
        NULL.add(1.0)
        NULL.set(2.0)
        NULL.observe(3.0)
        NULL.maybe(17)
        with NULL:
            pass

    def test_disabled_snapshot_is_empty(self):
        tel = Telemetry(enabled=False)
        tel.counter("c").inc()
        snap = tel.snapshot()
        assert snap["counters"] == {}
        assert snap["phases"] == {}


class TestMergeSnapshots:
    @staticmethod
    def _snap(tel_mutator):
        tel = Telemetry(enabled=True)
        tel_mutator(tel)
        return tel.snapshot()

    def test_empty_input_merges_to_none(self):
        assert merge_snapshots([]) is None
        assert merge_snapshots([None, None]) is None

    def test_counters_sum_and_gauges_max(self):
        a = self._snap(lambda t: (t.counter("n").inc(3), t.gauge("g").set(5.0)))
        b = self._snap(lambda t: (t.counter("n").inc(4), t.gauge("g").set(2.0)))
        merged = merge_snapshots([a, b])
        assert merged["counters"]["n"] == 7
        assert merged["gauges"]["g"] == 5.0
        assert merged["merged_from"] == 2

    def test_phases_sum_with_count_zero_placeholders(self):
        def active(t):
            p = t.phase("w")
            p.stop(p.start())

        def idle(t):
            t.phase("w")  # declared, never fired: min_s/max_s are 0.0 fillers

        merged = merge_snapshots([self._snap(active), self._snap(idle)])
        w = merged["phases"]["w"]
        assert w["count"] == 1
        # The idle snapshot's 0.0 placeholders must not clamp min_s.
        assert w["min_s"] == w["max_s"] > 0.0 or w["min_s"] >= 0.0

    def test_histograms_merge_bucket_wise(self):
        a = self._snap(lambda t: t.histogram("h", bounds=(1.0,)).observe(0.5))
        b = self._snap(lambda t: t.histogram("h", bounds=(1.0,)).observe(9.0))
        merged = merge_snapshots([a, b])
        h = merged["histograms"]["h"]
        assert h["counts"] == [1, 1]
        assert h["count"] == 2
        assert h["min"] == 0.5 and h["max"] == 9.0

    def test_histogram_bounds_mismatch_raises(self):
        a = self._snap(lambda t: t.histogram("h", bounds=(1.0,)).observe(0.5))
        b = self._snap(lambda t: t.histogram("h", bounds=(2.0,)).observe(0.5))
        with pytest.raises(ValueError):
            merge_snapshots([a, b])

    def test_single_snapshot_merge_preserves_values(self):
        a = self._snap(
            lambda t: (
                t.counter("n").inc(3),
                t.histogram("h", bounds=(1.0,)).observe(0.5),
            )
        )
        merged = merge_snapshots([a])
        assert merged["merged_from"] == 1
        assert merged["counters"]["n"] == 3
        assert merged["histograms"]["h"]["counts"] == [1, 0]

    def test_empty_histogram_side_does_not_poison_extremes(self):
        active = self._snap(
            lambda t: t.histogram("h", bounds=(1.0,)).observe(0.5)
        )
        idle = self._snap(
            lambda t: t.histogram("h", bounds=(1.0,))  # declared, no samples
        )
        for order in ([active, idle], [idle, active]):
            merged = merge_snapshots(order)
            h = merged["histograms"]["h"]
            assert h["count"] == 1
            assert h["min"] == 0.5 and h["max"] == 0.5

    def test_merged_snapshot_validates(self):
        a = self._snap(lambda t: t.counter("n").inc())
        merged = merge_snapshots([a, a])
        assert validate_snapshot(merged) == []


class TestValidateSnapshot:
    def test_live_snapshot_is_clean(self):
        tel = Telemetry(enabled=True)
        tel.counter("c").inc()
        p = tel.phase("p")
        p.stop(p.start())
        tel.histogram("h").observe(0.001)
        assert validate_snapshot(tel.snapshot()) == []

    def test_schema_mismatch_reported(self):
        tel = Telemetry(enabled=True)
        snap = tel.snapshot()
        snap["schema"] = SNAPSHOT_SCHEMA + 1
        assert validate_snapshot(snap)

    def test_missing_sections_reported(self):
        assert validate_snapshot({"schema": SNAPSHOT_SCHEMA})
