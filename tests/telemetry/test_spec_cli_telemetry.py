"""TelemetrySpec wiring: spec round-trips, run attachment, sweep-wide
merge, the CLI flags (--telemetry / profile / --log-level), and worker
failure identity."""

import io
import json
import logging

import pytest

from repro.analysis.parallel import ParallelRunner
from repro.cli import main
from repro.spec import ExperimentSpec, SweepSpec, TelemetrySpec, TopologySpec
from repro.telemetry import validate_snapshot
from repro.util import get_logger


def small_spec(**kwargs) -> ExperimentSpec:
    defaults = dict(
        name="tel-test",
        backend="vectorized",
        rounds=6,
        seed=3,
        topology=TopologySpec(
            num_peers=30, num_helpers=3, channel_bitrates=100.0
        ),
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


class TestTelemetrySpec:
    def test_default_is_disabled(self):
        spec = small_spec()
        assert not spec.telemetry.enabled
        assert spec.run().telemetry is None

    def test_round_trips_through_json(self):
        spec = small_spec(
            telemetry=TelemetrySpec(
                enabled=True,
                sinks=("memory",),
                flush_interval=5,
                sample_period=10,
            )
        )
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.telemetry.sinks == ("memory",)

    def test_legacy_json_without_telemetry_key_loads_disabled(self):
        data = small_spec().to_dict()
        del data["telemetry"]
        spec = ExperimentSpec.from_dict(data)
        assert not spec.telemetry.enabled

    def test_unknown_sink_name_rejected_at_construction(self):
        with pytest.raises(ValueError, match="nope"):
            TelemetrySpec(enabled=True, sinks=("nope",))

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            TelemetrySpec(flush_interval=-1)

    def test_enabled_run_attaches_a_valid_snapshot(self):
        spec = small_spec(telemetry=TelemetrySpec(enabled=True))
        result = spec.run()
        assert result.telemetry is not None
        assert validate_snapshot(result.telemetry) == []
        assert result.telemetry["phases"]["round.total"]["count"] == 6

    def test_telemetry_does_not_change_metrics(self):
        plain = small_spec().run()
        instrumented = small_spec(
            telemetry=TelemetrySpec(enabled=True)
        ).run()
        assert plain.metrics == instrumented.metrics

    def test_override_path_enables_telemetry(self):
        spec = small_spec().with_overrides({"telemetry.enabled": True})
        assert spec.telemetry.enabled
        assert spec.run().telemetry is not None


class TestSweepMergedTelemetry:
    def test_worker_snapshots_merge_across_cells(self):
        spec = small_spec(telemetry=TelemetrySpec(enabled=True))
        result = spec.sweep(workers=2, sweep=SweepSpec(replications=3))
        merged = result.merged_telemetry()
        assert merged is not None
        assert merged["merged_from"] == 3
        assert merged["phases"]["round.total"]["count"] == 18
        assert validate_snapshot(merged) == []

    def test_merged_telemetry_none_when_disabled(self):
        result = small_spec().sweep(
            workers=1, sweep=SweepSpec(replications=2)
        )
        assert result.merged_telemetry() is None

    def test_to_table_skips_the_telemetry_payload(self):
        spec = small_spec(telemetry=TelemetrySpec(enabled=True))
        result = spec.sweep(workers=1, sweep=SweepSpec(replications=2))
        table = result.to_table()
        assert "telemetry" not in table
        assert "mean_welfare" in table


class TestCliTelemetryFlag:
    def test_bare_flag_prints_merged_summary(self):
        out = io.StringIO()
        code = main(
            ["run", "--peers", "30", "--helpers", "3", "--rounds", "5",
             "--telemetry"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "telemetry summary" in text
        assert "round.total" in text

    def test_without_flag_no_summary(self):
        out = io.StringIO()
        code = main(
            ["run", "--peers", "30", "--helpers", "3", "--rounds", "5"],
            out=out,
        )
        assert code == 0
        assert "telemetry summary" not in out.getvalue()

    def test_jsonl_sink_value_writes_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        out = io.StringIO()
        code = main(
            ["run", "--peers", "30", "--helpers", "3", "--rounds", "5",
             "--telemetry", f"jsonl:{path}"],
            out=out,
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in path.read_text().splitlines() if line.strip()
        ]
        assert records
        assert all(validate_snapshot(r) == [] for r in records)

    def test_bad_sink_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["run", "--telemetry", "carrier-pigeon"], out=io.StringIO()
            )
        assert excinfo.value.code == 2
        assert "carrier-pigeon" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_reports_phases_and_coverage(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(small_spec(rounds=12).to_json())
        out = io.StringIO()
        code = main(["profile", "--spec", str(spec_path)], out=out)
        assert code == 0
        text = out.getvalue()
        assert "profile: spec=" in text
        assert "round.total" in text
        assert "coverage" in text

    def test_profile_output_validates(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(small_spec(rounds=12).to_json())
        jsonl = tmp_path / "prof.jsonl"
        out = io.StringIO()
        code = main(
            ["profile", "--spec", str(spec_path), "--output", str(jsonl)],
            out=out,
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in jsonl.read_text().splitlines() if line.strip()
        ]
        assert records
        assert all(validate_snapshot(r) == [] for r in records)

    def test_profile_scalar_backend_profiles_dispatch(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            small_spec(backend="scalar", rounds=8).to_json()
        )
        out = io.StringIO()
        code = main(["profile", "--spec", str(spec_path)], out=out)
        assert code == 0
        assert "sim.dispatch" in out.getvalue()


class TestLogging:
    def test_log_level_flag_configures_repro_hierarchy(self):
        out = io.StringIO()
        code = main(
            ["--log-level", "debug", "run", "--peers", "30",
             "--helpers", "3", "--rounds", "2"],
            out=out,
        )
        assert code == 0
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_get_logger_namespaces_under_repro(self):
        assert get_logger("runtime").name == "repro.runtime"


def failing_cell(params, seed):
    """Module-level (picklable) cell that always blows up."""
    raise ValueError(f"bad cell x={params['x']}")


class TestWorkerFailureIdentity:
    def test_failure_names_the_cell_and_params(self):
        runner = ParallelRunner(workers=2)
        with pytest.raises(RuntimeError) as excinfo:
            runner.map_cells(failing_cell, [{"x": i} for i in range(3)], rng=0)
        message = str(excinfo.value)
        assert "sweep cell" in message
        assert "'x'" in message  # params echoed into the failure identity
        assert "bad cell" in message  # original traceback preserved
