"""Sinks, the sink registry, the session scope, and the zero-overhead-off
contract on the instrumented runtime."""

import json

import pytest

from repro.runtime import VectorizedStreamingSystem, bank_factory
from repro.sim import SystemConfig
from repro.telemetry import (
    NULL,
    JsonlSink,
    MemorySink,
    build_sink,
    get_telemetry,
    parse_sink_reference,
    session,
    sink_names,
    validate_snapshot,
)


def small_system():
    config = SystemConfig(
        num_peers=40, num_helpers=4, num_channels=1, channel_bitrates=100.0
    )
    return VectorizedStreamingSystem(
        config, bank_factory("r2hs"), rng=0
    )


class TestSinkRegistry:
    def test_registered_names(self):
        assert {"memory", "console", "jsonl"} <= set(sink_names())

    def test_unknown_sink_lists_the_menu(self):
        with pytest.raises(ValueError) as excinfo:
            parse_sink_reference("nope")
        message = str(excinfo.value)
        assert "nope" in message and "jsonl" in message

    def test_jsonl_without_path_rejected(self):
        with pytest.raises(ValueError):
            build_sink("jsonl")


class TestJsonlGoldenSchema:
    def test_emitted_records_round_trip_and_validate(self, tmp_path):
        """The golden JSONL contract: every record a profile run emits
        must reparse and pass validate_snapshot unchanged."""
        path = tmp_path / "telemetry.jsonl"
        with session(enabled=True, sinks=[f"jsonl:{path}"]) as tel:
            system = small_system()
            system.run(6)
            tel.flush()
            system.run(6)
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        assert len(lines) == 2  # explicit flush + final close flush
        seqs = []
        for line in lines:
            record = json.loads(line)
            assert validate_snapshot(record) == []
            seqs.append(record["seq"])
        assert seqs == sorted(seqs)
        final = json.loads(lines[-1])
        assert final["phases"]["round.total"]["count"] == 12
        assert final["counters"]["round.count"] == 12

    def test_jsonl_sink_appends_across_sessions(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        for _ in range(2):
            with session(enabled=True, sinks=[JsonlSink(str(path))]):
                small_system().run(2)
        assert len(path.read_text().splitlines()) == 2


class TestSessionScope:
    def test_session_restores_previous_registry(self):
        before = get_telemetry()
        with session(enabled=True) as tel:
            assert get_telemetry() is tel
            assert tel is not before
        assert get_telemetry() is before

    def test_session_restores_on_error(self):
        before = get_telemetry()
        with pytest.raises(RuntimeError):
            with session(enabled=True):
                raise RuntimeError("boom")
        assert get_telemetry() is before

    def test_sinks_closed_on_exit(self):
        sink = MemorySink()
        with session(enabled=True, sinks=[sink]):
            small_system().run(2)
        assert sink.closed
        assert sink.snapshots  # final flush delivered the snapshot
        assert sink.last["phases"]["round.total"]["count"] == 2


class TestZeroOverheadOff:
    def test_disabled_session_binds_null_into_the_system(self):
        with session(enabled=False):
            system = small_system()
            assert system._ph_total is NULL
            assert system._ph_act is NULL
            assert system._ctr_rounds is NULL
            system.run(3)

    def test_disabled_session_delivers_nothing_to_sinks(self):
        sink = MemorySink()
        with session(enabled=False, sinks=[sink]) as tel:
            small_system().run(3)
            tel.flush()
        assert sink.snapshots == []

    def test_default_registry_is_disabled(self):
        # No session active: systems bind NULL and record nothing.
        system = small_system()
        assert system._ph_total is NULL
        system.run(2)

    def test_enabled_and_disabled_runs_are_trace_identical(self):
        import numpy as np

        baseline = small_system().run(8)
        with session(enabled=True):
            instrumented = small_system().run(8)
        assert np.array_equal(baseline.welfare, instrumented.welfare)
        assert np.array_equal(baseline.loads, instrumented.loads)
