"""Tests for the vectorized learner banks."""

import numpy as np
import pytest

from repro.core.r2hs import R2HSLearner
from repro.runtime.learner_bank import (
    R2HSBank,
    RTHSBank,
    StickyBank,
    UniformBank,
    bank_factory,
)


class TestRowLifecycle:
    def test_acquire_hands_out_distinct_rows(self):
        bank = UniformBank(4, rng=0, initial_rows=2)
        rows = [bank.acquire() for _ in range(5)]  # forces growth
        assert len(set(rows)) == 5

    def test_release_recycles(self):
        bank = UniformBank(4, rng=0, initial_rows=2)
        row = bank.acquire()
        bank.release(row)
        assert bank.acquire() == row

    def test_acquire_many(self):
        bank = RTHSBank(3, rng=0, initial_rows=2, u_max=900.0)
        rows = bank.acquire_many(6)
        assert len(set(rows.tolist())) == 6

    def test_regret_bank_rows_reset_on_reuse(self):
        bank = R2HSBank(3, rng=0, u_max=900.0)
        row = bank.acquire()
        rows = np.array([row])
        for _ in range(20):
            actions = bank.act(rows)
            bank.observe(rows, actions, np.array([800.0]))
        trained = bank.population.strategies()[row]
        assert not np.allclose(trained, 1 / 3)
        bank.release(row)
        row2 = bank.acquire()
        assert row2 == row
        assert np.allclose(bank.population.strategies()[row2], 1 / 3)
        assert bank.population.slot_stages()[row2] == 0


class TestRegretBankDynamics:
    def test_matches_scalar_r2hs_learner(self):
        """Feed a bank row and a scalar learner identical (action, utility)
        sequences: strategies and regrets must coincide."""
        eps, delta, u_max = 0.1, 0.1, 900.0
        bank = R2HSBank(3, rng=0, epsilon=eps, delta=delta, u_max=u_max)
        row = bank.acquire()
        rows = np.array([row])
        learner = R2HSLearner(3, rng=0, epsilon=eps, delta=delta, u_max=u_max)
        env = np.random.default_rng(9)
        for _ in range(80):
            action = int(env.integers(3))
            utility = float(env.uniform(100, 900))
            assert np.allclose(
                learner.strategy(), bank.population.strategies()[row], atol=1e-12
            )
            learner.observe(action, utility)
            bank.observe(rows, np.array([action]), np.array([utility]))
        assert np.allclose(
            learner.strategy(), bank.population.strategies()[row], atol=1e-10
        )
        assert np.allclose(
            learner.regret_matrix(),
            bank.population.regret_matrices()[row],
            atol=1e-10,
        )

    def test_late_joiner_starts_at_stage_zero(self):
        bank = RTHSBank(3, rng=1, u_max=900.0)
        early = bank.acquire()
        for _ in range(10):
            rows = np.array([early])
            bank.observe(rows, bank.act(rows), np.array([500.0]))
        late = bank.acquire()
        stages = bank.population.slot_stages()
        assert stages[early] == 10
        assert stages[late] == 0


class TestBaselineBanks:
    def test_uniform_actions_cover_range(self):
        bank = UniformBank(4, rng=2)
        rows = bank.acquire_many(2000)
        actions = bank.act(rows)
        assert set(np.unique(actions).tolist()) == {0, 1, 2, 3}
        counts = np.bincount(actions, minlength=4)
        assert np.allclose(counts / 2000, 0.25, atol=0.05)

    def test_uniform_observe_validates(self):
        bank = UniformBank(3, rng=0)
        rows = bank.acquire_many(2)
        with pytest.raises(ValueError):
            bank.observe(rows, np.array([0, 7]), np.zeros(2))

    def test_sticky_rows_mostly_repeat(self):
        bank = StickyBank(5, rng=3, switch_probability=0.0)
        rows = bank.acquire_many(50)
        first = bank.act(rows)
        for _ in range(5):
            assert np.array_equal(bank.act(rows), first)

    def test_sticky_switches_at_rate_one(self):
        bank = StickyBank(5, rng=4, switch_probability=1.0)
        rows = bank.acquire_many(2000)
        a = bank.act(rows)
        b = bank.act(rows)
        # With re-pick probability 1 the repeats are only chance collisions.
        assert np.mean(a == b) < 0.5


class TestBankFactory:
    @pytest.mark.parametrize("kind", ["rths", "r2hs", "uniform", "sticky"])
    def test_builds_each_kind(self, kind):
        factory = bank_factory(kind)
        bank = factory(4, np.random.default_rng(0))
        assert bank.num_actions == 4
        rows = bank.acquire_many(3)
        actions = bank.act(rows)
        bank.observe(rows, actions, np.full(3, 400.0))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            bank_factory("dqn")
