"""Scalar-vs-vectorized system equivalence.

The decisive suite: under a shared recorded capacity trace and *scripted*
helper choices, :class:`~repro.runtime.VectorizedStreamingSystem` must
reproduce :class:`~repro.sim.system.StreamingSystem` round records
trace-for-trace (integer fields and per-peer utilities exactly; welfare
and server load to float summation-order tolerance).  With learners on,
the two backends follow the same dynamics through different RNG stream
layouts, so agreement is distributional.
"""

import numpy as np
import pytest

from repro.core.r2hs import R2HSLearner
from repro.runtime import VectorizedStreamingSystem, bank_factory
from repro.sim import (
    ChurnConfig,
    StreamingSystem,
    SystemConfig,
    TraceCapacityProcess,
    paper_bandwidth_process,
    record_capacity_trace,
)

SUM_TOL = dict(rtol=1e-11, atol=1e-8)


class ScriptedLearner:
    """Scalar learner replaying a fixed per-round action column."""

    def __init__(self, column, num_actions):
        self._column = column
        self._m = int(num_actions)
        self._t = 0

    @property
    def num_actions(self):
        return self._m

    def act(self):
        return int(self._column[self._t])

    def observe(self, action, utility):
        self._t += 1

    def strategy(self):
        return np.full(self._m, 1.0 / self._m)


class ScriptedBank:
    """Vectorized bank replaying a fixed (rounds, rows) action matrix."""

    def __init__(self, script, num_actions):
        self._script = script
        self._m = int(num_actions)
        self._t = 0

    @property
    def num_actions(self):
        return self._m

    def acquire_many(self, count):
        return np.arange(count)

    def acquire(self):  # pragma: no cover - fixed populations only
        raise NotImplementedError("scripted banks model fixed populations")

    def release(self, row):  # pragma: no cover - fixed populations only
        raise NotImplementedError

    def act(self, rows):
        return self._script[self._t, rows]

    def observe(self, rows, actions, utilities):
        self._t += 1


class TestScriptedExactEquivalence:
    def _assert_traces_match(self, ts, tv):
        assert np.array_equal(ts.loads, tv.loads)
        assert np.array_equal(ts.online_peers, tv.online_peers)
        assert np.array_equal(ts.capacities, tv.capacities)
        assert np.array_equal(ts.min_deficit, tv.min_deficit)
        assert np.array_equal(ts.total_demand, tv.total_demand)
        assert np.array_equal(ts.times, tv.times)
        np.testing.assert_allclose(ts.welfare, tv.welfare, **SUM_TOL)
        np.testing.assert_allclose(ts.server_load, tv.server_load, **SUM_TOL)

    def test_single_channel_trace_for_trace(self):
        N, H, T = 40, 4, 80
        rng = np.random.default_rng(42)
        script = rng.integers(0, H, size=(T, N))
        shared = record_capacity_trace(paper_bandwidth_process(H, rng=7), T)
        config = SystemConfig(
            num_peers=N, num_helpers=H, channel_bitrates=100.0, record_peers=True
        )

        counter = {"i": 0}

        def factory(h, _rng):
            column = script[:, counter["i"]]
            counter["i"] += 1
            return ScriptedLearner(column, h)

        scalar = StreamingSystem(
            config, factory, rng=0,
            capacity_process=TraceCapacityProcess(shared.copy()),
        )
        vectorized = VectorizedStreamingSystem(
            config, lambda h, r: ScriptedBank(script, h), rng=0,
            capacity_process=TraceCapacityProcess(shared.copy()),
        )
        ts = scalar.run(T)
        tv = vectorized.run(T)
        self._assert_traces_match(ts, tv)
        # Per-peer detail: helper ids exactly, utilities exactly (identical
        # divisions, no summation involved).
        a, b = ts.to_trajectory(), tv.to_trajectory()
        assert np.array_equal(a.actions, b.actions)
        assert np.array_equal(a.utilities, b.utilities)

    def test_trace_for_trace_under_vectorized_engine_path(self):
        """Same exactness with the shared path recorded from the new
        vectorized capacity engine: both backends replay it identically."""
        N, H, T = 25, 4, 50
        rng = np.random.default_rng(17)
        script = rng.integers(0, H, size=(T, N))
        shared = record_capacity_trace(
            paper_bandwidth_process(H, rng=7, backend="vectorized"), T
        )
        config = SystemConfig(
            num_peers=N, num_helpers=H, channel_bitrates=100.0, record_peers=True
        )

        counter = {"i": 0}

        def factory(h, _rng):
            column = script[:, counter["i"]]
            counter["i"] += 1
            return ScriptedLearner(column, h)

        scalar = StreamingSystem(
            config, factory, rng=0,
            capacity_process=TraceCapacityProcess(shared.copy()),
        )
        vectorized = VectorizedStreamingSystem(
            config, lambda h, r: ScriptedBank(script, h), rng=0,
            capacity_process=TraceCapacityProcess(shared.copy()),
        )
        ts = scalar.run(T)
        tv = vectorized.run(T)
        self._assert_traces_match(ts, tv)
        a, b = ts.to_trajectory(), tv.to_trajectory()
        assert np.array_equal(a.actions, b.actions)
        assert np.array_equal(a.utilities, b.utilities)

    def test_multi_channel_trace_for_trace(self):
        """Two channels with different helper counts and bitrates."""
        N, T = 30, 60
        config = SystemConfig(
            num_peers=N,
            num_helpers=5,   # round-robin: channel 0 gets 3, channel 1 gets 2
            num_channels=2,
            channel_bitrates=[100.0, 250.0],
        )
        rng = np.random.default_rng(3)
        initial_channels = rng.integers(0, 2, size=N).tolist()
        n0 = initial_channels.count(0)
        n1 = initial_channels.count(1)
        scripts = {
            0: rng.integers(0, 3, size=(T, n0)),
            1: rng.integers(0, 2, size=(T, n1)),
        }
        shared = record_capacity_trace(paper_bandwidth_process(5, rng=11), T)

        counters = {0: 0, 1: 0}
        order = list(initial_channels)
        calls = {"i": 0}

        def learner_factory(num_actions, _rng):
            channel = order[calls["i"]]
            calls["i"] += 1
            column = scripts[channel][:, counters[channel]]
            counters[channel] += 1
            return ScriptedLearner(column, num_actions)

        # Banks are requested per channel in id order: 0 then 1.
        bank_channel = {"next": 0}

        def scripted_bank_factory(num_actions, _rng):
            c = bank_channel["next"]
            bank_channel["next"] += 1
            return ScriptedBank(scripts[c], num_actions)

        scalar = StreamingSystem(
            config,
            learner_factory,
            rng=0,
            capacity_process=TraceCapacityProcess(shared.copy()),
            initial_channels=order,
        )
        vectorized = VectorizedStreamingSystem(
            config,
            scripted_bank_factory,
            rng=0,
            capacity_process=TraceCapacityProcess(shared.copy()),
            initial_channels=order,
        )
        ts = scalar.run(T)
        tv = vectorized.run(T)
        self._assert_traces_match(ts, tv)


class TestLearnerDistributionalAgreement:
    def test_r2hs_steady_state_matches(self):
        """Same config, same shared environment, learners on: the two
        backends must agree on steady-state welfare, server load and load
        balance to sampling tolerance."""
        N, H, T = 60, 4, 600
        shared = record_capacity_trace(paper_bandwidth_process(H, rng=5), T)
        config = SystemConfig(num_peers=N, num_helpers=H, channel_bitrates=100.0)

        scalar = StreamingSystem(
            config,
            lambda h, rng: R2HSLearner(h, rng=rng, u_max=900.0),
            rng=1,
            capacity_process=TraceCapacityProcess(shared.copy()),
        )
        vectorized = VectorizedStreamingSystem(
            config,
            bank_factory("r2hs", u_max=900.0),
            rng=2,
            capacity_process=TraceCapacityProcess(shared.copy()),
        )
        ts = scalar.run(T)
        tv = vectorized.run(T)
        tail = slice(T // 2, None)
        ws, wv = ts.welfare[tail].mean(), tv.welfare[tail].mean()
        assert abs(ws - wv) / ws < 0.03
        ss, sv = ts.server_load[tail].mean(), tv.server_load[tail].mean()
        assert abs(ss - sv) < 0.05 * max(ss, 1.0)
        # Both concentrate every helper's load near N/H.
        assert np.allclose(
            ts.loads[tail].mean(axis=0), N / H, atol=0.15 * N / H
        )
        assert np.allclose(
            tv.loads[tail].mean(axis=0), N / H, atol=0.15 * N / H
        )


class TestVectorizedChurn:
    def test_invariants_under_churn(self):
        config = SystemConfig(
            num_peers=20,
            num_helpers=4,
            channel_bitrates=100.0,
            churn=ChurnConfig(
                arrival_rate=0.5, mean_lifetime=25.0,
                initial_peer_lifetimes=True,
            ),
        )
        system = VectorizedStreamingSystem(config, bank_factory("rths"), rng=6)
        trace = system.run(150)
        assert np.all(trace.loads.sum(axis=1) == trace.online_peers)
        assert np.all(trace.online_peers == np.array(
            [r.online_peers for r in trace.rounds]
        ))
        store = system.store
        # Lifetime stats only accumulate while online.
        online = store.online_slots()
        assert np.all(store.rounds_participated[online] >= 0)
        # Free-list reuse happened and no slot double-books a bank row
        # within a channel.
        for c, bank in enumerate(system.banks):
            mask = store.channel[online] == c
            rows = store.bank_row[online[mask]]
            assert len(np.unique(rows)) == rows.size

    def test_record_peers_with_churn_raises(self):
        config = SystemConfig(
            num_peers=8,
            num_helpers=4,
            channel_bitrates=100.0,
            record_peers=True,
            churn=ChurnConfig(arrival_rate=2.0),
        )
        system = VectorizedStreamingSystem(config, bank_factory("uniform"), rng=4)
        with pytest.raises(RuntimeError):
            system.run(50)


class TestBankConstructionErrors:
    def test_single_helper_channel_names_the_channel(self):
        """Round-robin can hand a channel one helper; a regret bank then
        cannot be built, and the error must say which channel and why."""
        config = SystemConfig(
            num_peers=10, num_helpers=5, num_channels=4, channel_bitrates=100.0
        )
        with pytest.raises(ValueError, match=r"channel 1 .*1 helper"):
            VectorizedStreamingSystem(config, bank_factory("r2hs"), rng=0)


class TestVectorizedChannelSwitching:
    def test_switches_preserve_population(self):
        config = SystemConfig(
            num_peers=30,
            num_helpers=4,
            num_channels=2,
            channel_bitrates=100.0,
            channel_switch_rate=0.5,
        )
        system = VectorizedStreamingSystem(config, bank_factory("sticky"), rng=8)
        trace = system.run(150)
        assert system.channel_switches > 0
        assert np.all(trace.online_peers == 30)
        # Each switch retired one uid and created another.
        assert system.store.total_created == 30 + system.channel_switches


class TestRoundCacheInvalidation:
    def test_external_store_mutation_respected_after_invalidate(self):
        """The documented PeerStore direct-mutation contract: edits to the
        grouping-defining columns take effect on the next round once
        invalidate_round_cache() is called."""
        config = SystemConfig(num_peers=10, num_helpers=4, channel_bitrates=100.0)
        shared = record_capacity_trace(paper_bandwidth_process(4, rng=1), 6)
        system = VectorizedStreamingSystem(
            config,
            bank_factory("r2hs", u_max=900.0),
            rng=0,
            capacity_process=TraceCapacityProcess(shared),
        )
        system.run(2)
        base_demand = system.trace.total_demand[-1]
        assert base_demand == pytest.approx(10 * 100.0)
        system.store.demand[system.store.online_slots()] = 250.0
        system.invalidate_round_cache()
        system.run(2)
        assert system.trace.total_demand[-1] == pytest.approx(10 * 250.0)
