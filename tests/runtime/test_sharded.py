"""Bit-identity and containment of the sharded runtime.

The decisive suite for :mod:`repro.runtime.sharded`: under the same
seed, a :class:`ShardedSystem` must produce **the same bytes** as the
single-process grouped engine for any shard count — every trace array
equal with ``np.array_equal`` (no tolerance), dense and sparse top-k
storage, with and without churn, per-peer recording.  The containment
half kills live shard workers with ``SIGKILL`` mid-run and demands the
rebuilt worker replay to the exact same trace, both from construction
(``checkpoint_every=0``) and from a checkpoint.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.runtime import ShardedSystem, VectorizedStreamingSystem, bank_factory
from repro.runtime.learner_bank import RTHSBank
from repro.sim import ChurnConfig, SystemConfig
from repro.spec import ExperimentSpec

U_MAX = 900.0

CHURN = ChurnConfig(
    arrival_rate=2.0, mean_lifetime=25.0, initial_peer_lifetimes=True
)


def config_for(**overrides):
    base = dict(
        num_peers=60,
        num_helpers=8,
        num_channels=4,
        channel_bitrates=100.0,
        churn=CHURN,
        channel_switch_rate=0.5,
    )
    base.update(overrides)
    return SystemConfig(**base)


def single(config, *, kind="r2hs", bank="dense", topk=32, seed=42,
           initial_channels=None):
    return VectorizedStreamingSystem(
        config,
        bank_factory(kind, u_max=U_MAX, bank=bank, topk=topk),
        rng=seed,
        engine="grouped",
        initial_channels=initial_channels,
    )


def sharded(config, shards, *, kind="r2hs", bank="dense", topk=32, seed=42,
            initial_channels=None, **kwargs):
    return ShardedSystem(
        config,
        bank_factory(kind, u_max=U_MAX, bank=bank, topk=topk),
        shards=shards,
        rng=seed,
        initial_channels=initial_channels,
        **kwargs,
    )


def assert_traces_identical(ta, tb):
    assert np.array_equal(ta.welfare, tb.welfare)
    assert np.array_equal(ta.loads, tb.loads)
    assert np.array_equal(ta.server_load, tb.server_load)
    assert np.array_equal(ta.capacities, tb.capacities)
    assert np.array_equal(ta.min_deficit, tb.min_deficit)
    assert np.array_equal(ta.online_peers, tb.online_peers)
    assert np.array_equal(ta.total_demand, tb.total_demand)
    assert np.array_equal(ta.times, tb.times)


class TestShardedBitIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_dense_under_churn_matches_single_process(self, shards):
        config = config_for()
        reference = single(config).run(60)
        with sharded(config, shards) as system:
            assert system.num_shards == shards
            assert len(system.shard_pids) == shards
            assert_traces_identical(system.run(60), reference)

    def test_topk_under_churn_matches_single_process(self):
        config = config_for(num_helpers=24, num_channels=3,
                            channel_switch_rate=0.0)
        reference = single(config, bank="topk", topk=3).run(40)
        with sharded(config, 3, bank="topk", topk=3) as system:
            assert_traces_identical(system.run(40), reference)

    def test_record_peers_actions_and_utilities_identical(self):
        config = SystemConfig(
            num_peers=40, num_helpers=6, num_channels=3,
            channel_bitrates=100.0, record_peers=True,
        )
        initial = [i % 3 for i in range(40)]
        reference = single(config, initial_channels=initial).run(30)
        with sharded(config, 3, initial_channels=initial) as system:
            trace = system.run(30)
        assert_traces_identical(trace, reference)
        a, b = trace.to_trajectory(), reference.to_trajectory()
        assert np.array_equal(a.actions, b.actions)
        assert np.array_equal(a.utilities, b.utilities)

    def test_float32_identical(self):
        config = config_for(num_peers=40, channel_switch_rate=0.0)
        reference = VectorizedStreamingSystem(
            config,
            bank_factory("r2hs", u_max=U_MAX, dtype=np.float32),
            rng=7,
            engine="grouped",
            dtype=np.float32,
        ).run(40)
        system = ShardedSystem(
            config,
            bank_factory("r2hs", u_max=U_MAX, dtype=np.float32),
            shards=2,
            rng=7,
            dtype=np.float32,
        )
        try:
            assert_traces_identical(system.run(40), reference)
        finally:
            system.close()


def _kill_shard(system, shard):
    """SIGKILL a live worker and wait for the OS to reap the pid."""
    pid = system.shard_pids[shard]
    os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if not system.bank._procs[shard].is_alive():
            return
        time.sleep(0.01)
    raise AssertionError(f"worker {pid} did not die")


class TestShardDeathContainment:
    @pytest.mark.parametrize("checkpoint_every", [0, 6])
    def test_sigkill_mid_run_recovers_bit_identically(self, checkpoint_every):
        config = config_for()
        reference = single(config).run(50)
        with sharded(
            config, 2,
            checkpoint_every=checkpoint_every,
            heartbeat_timeout=15.0,
        ) as system:
            system.run(20)
            _kill_shard(system, 0)
            system.run(10)  # death detected at the next barrier
            _kill_shard(system, 1)
            trace = system.run(20)
            assert_traces_identical(trace, reference)
            # Both deaths were containments, not silent restarts.
            assert system.bank._attempts == [1, 1]

    def test_retry_budget_exhaustion_fails_the_run(self):
        config = config_for(churn=ChurnConfig(), channel_switch_rate=0.0)
        with sharded(
            config, 2, max_retries=0, heartbeat_timeout=15.0
        ) as system:
            system.run(3)
            _kill_shard(system, 0)
            with pytest.raises(RuntimeError, match="exhausted its 0 retries"):
                system.run(3)


class TestShardedLifecycleAndValidation:
    def test_close_is_idempotent_and_reaps_workers(self):
        system = sharded(config_for(churn=ChurnConfig()), 2)
        system.run(5)
        pids = system.shard_pids
        procs = list(system.bank._procs)
        system.close()
        system.close()
        assert pids  # captured while live
        for proc in procs:
            assert proc is None or not proc.is_alive()

    def test_more_shards_than_channels_rejected(self):
        with pytest.raises(ValueError, match="num_channels"):
            sharded(config_for(num_channels=2, churn=ChurnConfig()), 3)

    def test_plain_bank_factory_rejected(self):
        with pytest.raises(ValueError, match="make_grouped"):
            ShardedSystem(
                config_for(churn=ChurnConfig()),
                lambda h, rng: RTHSBank(h, rng=rng, u_max=U_MAX),
                shards=2,
                rng=0,
            )

    def test_per_channel_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            sharded(config_for(churn=ChurnConfig()), 2, engine="per_channel")

    def test_population_introspection_names_the_limitation(self):
        with sharded(config_for(churn=ChurnConfig()), 2) as system:
            view = system.banks[0]
            assert view.num_actions == 2
            with pytest.raises(RuntimeError, match="worker processes"):
                view.population


class TestShardedSpecIntegration:
    BASE = {
        "rounds": 15,
        "seed": 11,
        "topology": {"num_peers": 30, "num_helpers": 8, "num_channels": 4},
    }

    def test_build_returns_sharded_system_and_metrics_match(self):
        plain = ExperimentSpec.from_dict(self.BASE)
        spec = plain.with_overrides({"learner.shards": 2})
        system = spec.build()
        assert isinstance(system, ShardedSystem)
        system.close()
        a, b = plain.run(), spec.run()
        assert a.metrics == b.metrics

    def test_shards_excluded_from_result_digest(self):
        plain = ExperimentSpec.from_dict(self.BASE)
        spec = plain.with_overrides({"learner.shards": 2})
        assert plain.result_digest() == spec.result_digest()
        assert spec.to_dict()["learner"]["shards"] == 2

    def test_shards_require_vectorized_grouped_backend(self):
        with pytest.raises(ValueError, match="vectorized"):
            ExperimentSpec.from_dict(
                {**self.BASE, "backend": "scalar", "learner": {"shards": 2}}
            )
        with pytest.raises(ValueError, match="num_channels"):
            ExperimentSpec.from_dict({**self.BASE, "learner": {"shards": 9}})
        with pytest.raises(ValueError, match="integer"):
            ExperimentSpec.from_dict({**self.BASE, "learner": {"shards": 0}})
