"""Tests for the struct-of-arrays peer table."""

import numpy as np
import pytest

from repro.runtime.peer_store import PeerStore


class TestAllocate:
    def test_fresh_slots_are_sequential(self):
        store = PeerStore(initial_capacity=4)
        slots = [store.allocate(0, 100.0)[0] for _ in range(3)]
        assert slots == [0, 1, 2]
        assert store.num_online == 3
        assert store.size == 3

    def test_growth_preserves_state(self):
        store = PeerStore(initial_capacity=2)
        store.allocate(0, 100.0)
        store.allocate(1, 200.0)
        store.allocate(2, 300.0)  # forces a grow
        assert store.capacity >= 3
        assert store.demand[:3].tolist() == [100.0, 200.0, 300.0]
        assert store.channel[:3].tolist() == [0, 1, 2]

    def test_uids_never_repeat(self):
        store = PeerStore()
        slot_a, _ = store.allocate(0, 100.0)
        uid_a = store.uid[slot_a]
        store.release(slot_a)
        slot_b, _ = store.allocate(0, 100.0)
        assert slot_b == slot_a  # slot recycled
        assert store.uid[slot_b] == uid_a + 1  # uid not recycled

    def test_rejects_nonpositive_demand(self):
        with pytest.raises(ValueError):
            PeerStore().allocate(0, 0.0)

    def test_allocate_many_bulk(self):
        store = PeerStore(initial_capacity=2)
        slots = store.allocate_many(
            np.array([0, 1, 0, 1]), np.array([100.0, 200.0, 100.0, 200.0])
        )
        assert slots.tolist() == [0, 1, 2, 3]
        assert store.num_online == 4
        assert store.uid[slots].tolist() == [0, 1, 2, 3]

    def test_allocate_many_requires_empty_free_list(self):
        store = PeerStore()
        slot, _ = store.allocate(0, 100.0)
        store.release(slot)
        with pytest.raises(RuntimeError):
            store.allocate_many(np.array([0]), np.array([100.0]))


class TestRelease:
    def test_release_takes_peer_offline(self):
        store = PeerStore()
        slot, gen = store.allocate(0, 100.0, now=1.0)
        store.release(slot, now=5.0)
        assert not store.online[slot]
        assert store.left_at[slot] == 5.0
        assert store.num_online == 0
        assert store.free_slots == 1

    def test_double_release_rejected(self):
        store = PeerStore()
        slot, _ = store.allocate(0, 100.0)
        store.release(slot)
        with pytest.raises(ValueError):
            store.release(slot)

    def test_generation_guards_stale_handles(self):
        store = PeerStore()
        slot, gen = store.allocate(0, 100.0)
        assert store.is_live(slot, gen)
        store.release(slot)
        assert not store.is_live(slot, gen)
        slot2, gen2 = store.allocate(0, 100.0)
        assert slot2 == slot and gen2 == gen + 1
        assert store.is_live(slot2, gen2)
        assert not store.is_live(slot, gen)  # old handle still dead


class TestOnlineSlots:
    def test_ascending_order(self):
        store = PeerStore()
        for _ in range(5):
            store.allocate(0, 100.0)
        store.release(2)
        assert store.online_slots().tolist() == [0, 1, 3, 4]

    def test_statistics_reset_on_reuse(self):
        store = PeerStore()
        slot, _ = store.allocate(0, 100.0)
        store.cumulative_rate[slot] = 123.0
        store.rounds_participated[slot] = 7
        store.release(slot)
        slot2, _ = store.allocate(1, 200.0)
        assert slot2 == slot
        assert store.cumulative_rate[slot2] == 0.0
        assert store.rounds_participated[slot2] == 0
        assert store.channel[slot2] == 1


class TestFreeListAliasing:
    def test_random_churn_never_aliases_live_peers(self):
        """Property test: under a random allocate/release storm, a handed-out
        slot is never already online, live handles stay valid, stale handles
        never validate, and online bookkeeping stays exact."""
        rng = np.random.default_rng(1234)
        store = PeerStore(initial_capacity=2)
        live = {}      # uid -> (slot, generation)
        dead = []      # stale (slot, generation) handles
        for _ in range(3000):
            if live and rng.random() < 0.45:
                uid = list(live)[int(rng.integers(len(live)))]
                slot, gen = live.pop(uid)
                store.release(slot)
                dead.append((slot, gen))
            else:
                slot, gen = store.allocate(
                    int(rng.integers(3)), float(rng.uniform(50, 500))
                )
                uid = int(store.uid[slot])
                # The slot handed out must not belong to any live peer.
                assert all(slot != s for s, _ in live.values())
                assert uid not in live
                live[uid] = (slot, gen)
            # Invariants after every step.
            assert store.num_online == len(live)
            assert set(store.online_slots().tolist()) == {
                s for s, _ in live.values()
            }
        for slot, gen in live.values():
            assert store.is_live(slot, gen)
        for slot, gen in dead:
            assert not store.is_live(slot, gen)
        # uids are a permutation-free strictly increasing sequence.
        assert store.total_created == len(live) + len(dead)
