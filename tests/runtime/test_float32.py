"""float32 opt-in: precision plumbing and equivalence tolerances.

The float32 banks halve the memory traffic of the regret update; the
price is ~1e-7 relative rounding per stage.  These tests pin the
documented tolerances: under *identical prescribed actions* a float32
population must track its float64 twin to ~1e-5 over hundreds of stages
(no divergence amplification — probabilities are recomputed from the
regret state each stage), survive its earlier renormalization floor on
long runs, and a full float32 system run must land within a small
relative band of the float64 run on aggregate metrics.
"""

import numpy as np
import pytest

from repro.core.population import LearnerPopulation
from repro.runtime import PeerStore, VectorizedStreamingSystem, bank_factory
from repro.sim import (
    SystemConfig,
    TraceCapacityProcess,
    paper_bandwidth_process,
    record_capacity_trace,
)


class TestPopulationDtype:
    def test_rejects_unsupported_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            LearnerPopulation(4, 3, dtype=np.int32)
        with pytest.raises(ValueError, match="dtype"):
            LearnerPopulation(4, 3, dtype=np.float16)

    def test_storage_dtype_applied(self):
        pop = LearnerPopulation(5, 3, dtype=np.float32)
        assert pop.dtype == np.dtype(np.float32)
        assert pop.strategies().dtype == np.float32
        assert pop.regret_matrices().dtype == np.float64  # diagnostics upcast

    def test_ensure_capacity_preserves_dtype(self):
        pop = LearnerPopulation(4, 3, dtype=np.float32)
        pop.ensure_capacity(32)
        assert pop.strategies().dtype == np.float32
        assert pop.strategies().shape == (32, 3)

    def test_prescribed_path_matches_float64_within_tolerance(self):
        """Same seed, same actions/utilities: float32 strategies must track
        float64 to rounding tolerance, stage for stage."""
        rng = np.random.default_rng(0)
        N, H, T = 40, 8, 250
        p64 = LearnerPopulation(N, H, rng=1, u_max=900.0)
        p32 = LearnerPopulation(N, H, rng=1, u_max=900.0, dtype=np.float32)
        slots = np.arange(N)
        worst = 0.0
        for _ in range(T):
            acts = rng.integers(0, H, size=N)
            utils = rng.uniform(100.0, 900.0, size=N)
            p64.observe_slots(slots, acts, utils)
            p32.observe_slots(slots, acts, utils)
            worst = max(
                worst,
                float(np.abs(p64.strategies() - p32.strategies()).max()),
            )
        assert worst < 1e-5

    def test_long_run_crosses_renorm_floor_and_stays_sane(self):
        """1500 stages at eps=0.05 crosses the float32 renorm floor (~540
        stages) several times; strategies must stay finite, normalized and
        floored at delta/H exploration."""
        rng = np.random.default_rng(2)
        N, H = 20, 6
        pop = LearnerPopulation(
            N, H, rng=3, u_max=900.0, delta=0.1, dtype=np.float32
        )
        slots = np.arange(N)
        for _ in range(1500):
            acts = pop.act_slots(slots)
            utils = rng.uniform(100.0, 900.0, size=N)
            pop.observe_slots(slots, acts, utils)
        probs = pop.strategies()
        assert np.isfinite(probs).all()
        assert np.abs(probs.sum(axis=1) - 1.0).max() < 1e-5
        assert probs.min() >= 0.1 / H - 1e-6


class TestPeerStoreDtype:
    def test_rejects_unsupported_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            PeerStore(dtype=np.int64)

    def test_rate_columns_use_dtype_timestamps_stay_float64(self):
        store = PeerStore(initial_capacity=8, dtype=np.float32)
        assert store.dtype == np.dtype(np.float32)
        assert store.demand.dtype == np.float32
        assert store.cumulative_rate.dtype == np.float32
        assert store.cumulative_deficit.dtype == np.float32
        assert store.joined_at.dtype == np.float64
        assert store.left_at.dtype == np.float64

    def test_grow_preserves_dtype(self):
        store = PeerStore(initial_capacity=2, dtype=np.float32)
        for _ in range(10):
            store.allocate(0, 100.0)
        assert store.capacity >= 10
        assert store.demand.dtype == np.float32
        assert store.cumulative_rate.dtype == np.float32


class TestBankDtype:
    def test_bank_factory_threads_dtype(self):
        factory = bank_factory("r2hs", u_max=900.0, dtype=np.float32)
        bank = factory(4, np.random.default_rng(0))
        assert bank.population.dtype == np.dtype(np.float32)

    def test_default_stays_float64(self):
        factory = bank_factory("rths", u_max=900.0)
        bank = factory(4, np.random.default_rng(0))
        assert bank.population.dtype == np.dtype(np.float64)


class TestSystemFloat32:
    def test_full_system_float32_close_to_float64(self):
        """Same recorded environment, same seed: the float32 system's
        aggregate welfare/server-load must land within a small relative
        band of the float64 run (trajectories may diverge action-by-action
        once a rounded probability flips a sampled choice)."""
        N, H, T = 200, 8, 120
        shared = record_capacity_trace(
            paper_bandwidth_process(H, rng=5, backend="vectorized"), T
        )
        config = SystemConfig(num_peers=N, num_helpers=H, channel_bitrates=100.0)
        results = {}
        for dtype in (np.float64, np.float32):
            system = VectorizedStreamingSystem(
                config,
                bank_factory("r2hs", u_max=900.0, dtype=dtype),
                rng=9,
                capacity_process=TraceCapacityProcess(shared.copy()),
                dtype=dtype,
            )
            trace = system.run(T)
            assert system.store.dtype == np.dtype(dtype)
            results[np.dtype(dtype).name] = (
                float(trace.welfare.mean()),
                float(trace.server_load.mean()),
            )
        w64, s64 = results["float64"]
        w32, s32 = results["float32"]
        assert np.isfinite([w32, s32]).all()
        assert abs(w32 - w64) / w64 < 0.02
        if s64 > 0:
            assert abs(s32 - s64) / max(s64, 1.0) < 0.25
