"""Sparse top-k regret banks: dense equivalence and approximation bounds.

Two regimes, two contracts:

* ``k >= H`` — :class:`~repro.core.sparse_population.TopKPopulation` and
  :class:`~repro.runtime.TopKRegretBank` must be *bit-identical* to the
  dense population/bank: same RNG consumption, same floating-point
  operation sequence, so identical actions, strategies and system traces.
* ``k < H`` — the sparse dynamics are an approximation; the steady-state
  welfare and the convergence diagnostic must stay within a tolerance of
  the dense run, and the tracked-set mechanics (promotion, the
  aggregated tail bucket, re-selection) must hold their invariants.
"""

import numpy as np
import pytest

from repro.core.population import LearnerPopulation
from repro.core.sparse_population import TopKPopulation
from repro.runtime import TopKRegretBank, VectorizedStreamingSystem, bank_factory
from repro.sim import (
    SystemConfig,
    TraceCapacityProcess,
    paper_bandwidth_process,
    record_capacity_trace,
)
from repro.spec import ExperimentSpec

U_MAX = 900.0


def drive(population, stages, env_seed=0):
    """Advance a population against a synthetic capacity draw; returns the
    per-stage welfare series."""
    rng = np.random.default_rng(env_seed)
    h = population.num_helpers
    welfare = []
    for _ in range(stages):
        actions = population.act_all()
        caps = rng.uniform(500.0, 900.0, h)
        counts = np.bincount(actions, minlength=h)
        utils = caps[actions] / counts[actions]
        population.observe_all(actions, utils)
        welfare.append(float(utils.sum()))
    return np.asarray(welfare)


class TestFullKBitIdentity:
    """k >= H: the sparse representation is a pure memory layout change."""

    def test_population_actions_and_strategies_identical(self):
        N, H, T = 40, 6, 250
        dense = LearnerPopulation(N, H, u_max=U_MAX, rng=11)
        topk = TopKPopulation(N, H, k=H, u_max=U_MAX, rng=11)
        rng = np.random.default_rng(5)
        for _ in range(T):
            a_dense, a_topk = dense.act_all(), topk.act_all()
            assert np.array_equal(a_dense, a_topk)
            caps = rng.uniform(400.0, 900.0, H)
            counts = np.bincount(a_dense, minlength=H)
            utils = caps[a_dense] / counts[a_dense]
            dense.observe_all(a_dense, utils)
            topk.observe_all(a_topk, utils)
        assert np.array_equal(dense.strategies(), topk.strategies())
        assert topk.promotions == 0
        assert topk.reselections == 0

    def test_k_above_h_clamps(self):
        pop = TopKPopulation(5, 4, k=100, u_max=U_MAX, rng=0)
        assert pop.k == 4

    def test_float32_identity_holds_too(self):
        N, H, T = 30, 5, 150
        dense = LearnerPopulation(N, H, u_max=U_MAX, rng=2, dtype=np.float32)
        topk = TopKPopulation(N, H, k=H, u_max=U_MAX, rng=2, dtype=np.float32)
        rng = np.random.default_rng(9)
        for _ in range(T):
            a_dense, a_topk = dense.act_all(), topk.act_all()
            assert np.array_equal(a_dense, a_topk)
            caps = rng.uniform(400.0, 900.0, H)
            counts = np.bincount(a_dense, minlength=H)
            utils = caps[a_dense] / counts[a_dense]
            dense.observe_all(a_dense, utils)
            topk.observe_all(a_topk, utils)
        assert np.array_equal(dense.strategies(), topk.strategies())

    def test_system_trace_identical(self):
        """Full streaming system, same seed: dense and k=H topk banks
        must produce bit-identical traces."""
        N, H, T = 120, 8, 60
        config = SystemConfig(
            num_peers=N, num_helpers=H, num_channels=2, channel_bitrates=100.0
        )
        traces = {}
        for bank in ("dense", "topk"):
            system = VectorizedStreamingSystem(
                config,
                bank_factory("r2hs", u_max=U_MAX, bank=bank, topk=H),
                rng=7,
            )
            traces[bank] = system.run(T)
        td, tt = traces["dense"], traces["topk"]
        assert np.array_equal(td.loads, tt.loads)
        assert np.array_equal(td.welfare, tt.welfare)
        assert np.array_equal(td.server_load, tt.server_load)
        assert np.array_equal(td.capacities, tt.capacities)
        assert np.array_equal(td.online_peers, tt.online_peers)

    def test_build_population_honors_topk_bank(self):
        """spec.build_population() must return the sparse population for
        bank="topk" — not silently allocate the dense (N, H, H) tensor."""
        spec = ExperimentSpec.from_dict(
            {
                "backend": "vectorized",
                "topology": {"num_peers": 20, "num_helpers": 50},
                "learner": {"name": "r2hs", "bank": "topk", "topk": 8},
            }
        )
        pop = spec.build_population()
        assert isinstance(pop, TopKPopulation)
        assert pop.k == 8
        dense = spec.with_overrides({"learner.bank": "dense"}).build_population()
        assert isinstance(dense, LearnerPopulation)

    def test_spec_layer_topk_equals_dense(self):
        """Through the declarative spec: bank="topk" with k >= per-channel
        H reproduces the dense vectorized run exactly."""
        spec = ExperimentSpec.from_dict(
            {
                "backend": "vectorized",
                "rounds": 40,
                "seed": 3,
                "topology": {
                    "num_peers": 60,
                    "num_helpers": 6,
                    "channel_bitrates": 100.0,
                },
            }
        )
        dense = spec.run()
        topk = spec.with_overrides(
            {"learner.bank": "topk", "learner.topk": 6}
        ).run()
        assert dense.metrics == topk.metrics


class TestSparseApproximation:
    """k < H: controlled drift from the dense dynamics."""

    def test_steady_state_welfare_within_tolerance(self):
        N, H, k, T = 150, 60, 12, 500
        dense = LearnerPopulation(N, H, u_max=U_MAX, rng=1)
        topk = TopKPopulation(N, H, k=k, u_max=U_MAX, rng=1)
        w_dense = drive(dense, T, env_seed=4)
        w_topk = drive(topk, T, env_seed=4)
        tail = slice(T // 2, None)
        ratio = w_topk[tail].mean() / w_dense[tail].mean()
        assert 0.9 < ratio < 1.1
        assert topk.promotions > 0  # sparsity actually exercised

    def test_regret_gap_at_large_h(self):
        """The convergence diagnostic (worst played regret) of the sparse
        bank must land in the same band as dense — mass concentrates on
        the tracked arms, so truncating the tail does not stall
        convergence."""
        N, H, k, T = 100, 120, 16, 500
        dense = LearnerPopulation(N, H, u_max=U_MAX, rng=8)
        topk = TopKPopulation(N, H, k=k, u_max=U_MAX, rng=8)
        drive(dense, T, env_seed=2)
        drive(topk, T, env_seed=2)
        r_dense = dense.worst_player_regret()
        r_topk = topk.worst_player_regret()
        assert r_topk <= max(2.0 * r_dense, 0.05)
        # Strategies concentrate comparably.
        p_dense = dense.strategies().max(axis=1).mean()
        p_topk = topk.strategies().max(axis=1).mean()
        assert abs(p_dense - p_topk) < 0.1

    def test_strategies_sum_to_one_and_tail_is_floor(self):
        N, H, k, T = 50, 40, 8, 200
        pop = TopKPopulation(N, H, k=k, u_max=U_MAX, rng=3, delta=0.1)
        drive(pop, T, env_seed=1)
        dense_strategies = pop.strategies()
        np.testing.assert_allclose(dense_strategies.sum(axis=1), 1.0, rtol=1e-9)
        # Every untracked arm sits exactly on the exploration floor.
        ids = pop.tracked_arms()
        floor = 0.1 / H
        for i in range(0, N, 7):
            untracked = np.setdiff1d(np.arange(H), ids[i])
            np.testing.assert_allclose(
                dense_strategies[i, untracked], floor, rtol=1e-6
            )

    def test_promotion_tracks_played_arm(self):
        """A played untracked arm must be in the tracked set afterwards,
        with the tracked ids still sorted and unique."""
        N, H, k = 8, 30, 4
        pop = TopKPopulation(N, H, k=k, u_max=U_MAX, rng=0)
        slots = np.arange(N)
        # Everyone plays arm 25 — untracked (fresh sets are {0..3}).
        actions = np.full(N, 25)
        pop.observe_slots(slots, actions, np.full(N, 300.0))
        ids = pop.tracked_arms()
        assert (ids == 25).any(axis=1).all()
        for row in ids:
            assert np.array_equal(row, np.sort(row))
            assert np.unique(row).size == k
        assert pop.promotions == N
        # The promoted arm immediately dominates the strategy (the dense
        # regret-matching behaviour: a freshly played arm with an empty
        # regret row keeps ~(1 - delta) of the mass).
        strategies = pop.strategies()
        assert (strategies[:, 25] > 0.5).all()

    def test_tail_regret_diagnostic_accumulates_on_eviction(self):
        N, H, k, T = 30, 50, 4, 300
        pop = TopKPopulation(N, H, k=k, u_max=U_MAX, rng=6)
        drive(pop, T, env_seed=8)
        assert pop.promotions > 0
        tail = pop.tail_regret()
        assert tail.shape == (N,)
        assert (tail >= 0.0).all()

    def test_reselection_prewarm_tracks_hot_arms(self):
        """With re-selection on, globally popular arms spread into
        tracked sets of peers that never played them."""
        N, H, k, T = 120, 80, 6, 300
        pop = TopKPopulation(
            N, H, k=k, u_max=U_MAX, rng=4, reselect_every=16
        )
        drive(pop, T, env_seed=3)
        assert pop.reselections > 0

    def test_reselect_zero_disables(self):
        N, H, k, T = 60, 40, 6, 150
        pop = TopKPopulation(N, H, k=k, u_max=U_MAX, rng=4, reselect_every=0)
        drive(pop, T, env_seed=3)
        assert pop.reselections == 0


class TestBankPlumbing:
    def test_bank_factory_topk_builds_topk_banks(self):
        factory = bank_factory("r2hs", u_max=U_MAX, bank="topk", topk=8)
        bank = factory(40, np.random.default_rng(0))
        assert isinstance(bank, TopKRegretBank)
        assert bank.num_actions == 40
        assert bank.k == 8

    def test_bank_factory_rejects_topk_for_baselines(self):
        with pytest.raises(ValueError, match="regret families"):
            bank_factory("uniform", bank="topk")
        with pytest.raises(ValueError, match="regret families"):
            bank_factory("sticky", bank="topk")

    def test_bank_factory_rejects_unknown_family(self):
        with pytest.raises(ValueError, match="dense.*topk"):
            bank_factory("r2hs", bank="csr")

    def test_topk_population_validates_k(self):
        with pytest.raises(ValueError, match="k must be >= 2"):
            TopKPopulation(4, 10, k=1)

    def test_memory_footprint_is_k_square_not_h_square(self):
        N, H, k = 64, 512, 16
        pop = TopKPopulation(N, H, k=k, u_max=U_MAX, rng=0, dtype=np.float32)
        dense_bytes = N * H * H * 4
        assert pop.nbytes() < dense_bytes / 100

    def test_acquire_release_recycles_rows(self):
        bank = TopKRegretBank(20, k=4, rng=0, u_max=U_MAX)
        rows = bank.acquire_many(10)
        assert rows.size == 10
        bank.observe(
            rows,
            np.full(10, 15),  # untracked: everyone promotes
            np.full(10, 200.0),
        )
        assert (bank.population.tracked_arms()[rows] == 15).any(axis=1).all()
        for row in rows:
            bank.release(int(row))
        fresh = bank.acquire_many(10)
        ids = bank.population.tracked_arms()[fresh]
        assert np.array_equal(ids, np.tile(np.arange(4), (10, 1)))


class TestDriveRecordedTrace:
    def test_system_run_with_churn_and_topk(self):
        """End-to-end smoke under churn on a recorded environment."""
        from repro.sim import ChurnConfig

        H = 24
        shared = record_capacity_trace(paper_bandwidth_process(H, rng=3), 120)
        config = SystemConfig(
            num_peers=80,
            num_helpers=H,
            channel_bitrates=100.0,
            churn=ChurnConfig(
                arrival_rate=1.0, mean_lifetime=30.0,
                initial_peer_lifetimes=True,
            ),
        )
        system = VectorizedStreamingSystem(
            config,
            bank_factory("r2hs", u_max=U_MAX, bank="topk", topk=6),
            rng=5,
            capacity_process=TraceCapacityProcess(shared),
        )
        trace = system.run(100)
        assert np.all(trace.loads.sum(axis=1) == trace.online_peers)
        assert trace.welfare.min() >= 0.0
