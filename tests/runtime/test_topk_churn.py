"""Churn safety of the sparse top-k banks: recycled ``(k,)`` blocks.

Randomized property test (fixed seeds, many trials): peers leave and
rejoin through the free-list, and a recycled row must never leak the
previous occupant's tracked indices, regret block, or strategy — a stale
index would silently route a fresh peer's regret onto arms it never
played.  Run both at the bank level (adversarial acquire/release
interleavings) and through the full system's churn process.
"""

import numpy as np

from repro.runtime import TopKRegretBank, VectorizedStreamingSystem, bank_factory
from repro.sim import ChurnConfig, SystemConfig

U_MAX = 900.0


def fresh_state(bank, rows):
    """Assert ``rows`` carry exactly the fresh-learner sparse state."""
    pop = bank.population
    rows = np.asarray(rows)
    k, h = pop.k, pop.num_helpers
    assert np.array_equal(
        pop.tracked_arms()[rows], np.tile(np.arange(k), (rows.size, 1))
    )
    np.testing.assert_array_equal(pop.tail_regret()[rows], 0.0)
    np.testing.assert_array_equal(pop.slot_stages()[rows], 0)
    np.testing.assert_allclose(pop.strategies()[rows], 1.0 / h, rtol=1e-7)


class TestRecycledBlocksProperty:
    def test_random_churn_interleavings_leave_no_stale_state(self):
        """Property: after any interleaving of acquire / dirty / release,
        a re-acquired row is indistinguishable from a never-used one."""
        rng = np.random.default_rng(1234)
        H, k = 40, 6
        for trial in range(25):
            bank = TopKRegretBank(H, k=k, rng=int(rng.integers(2**31)), u_max=U_MAX)
            live = list(bank.acquire_many(int(rng.integers(5, 40))))
            for _ in range(30):
                op = rng.integers(3)
                if op == 0 and live:  # dirty a random subset with far arms
                    rows = rng.choice(live, size=min(len(live), 8), replace=False)
                    rows = np.asarray(sorted(set(int(r) for r in rows)))
                    arms = rng.integers(k, H, size=rows.size)  # untracked
                    bank.observe(
                        rows, arms, rng.uniform(100.0, 800.0, rows.size)
                    )
                elif op == 1 and live:  # release a random row
                    row = live.pop(int(rng.integers(len(live))))
                    bank.release(row)
                else:  # (re-)acquire: must come back fresh
                    row = bank.acquire()
                    fresh_state(bank, np.array([row]))
                    live.append(row)
            # No two live peers share a row.
            assert len(live) == len(set(live))

    def test_bulk_release_then_bulk_acquire_is_fresh(self):
        bank = TopKRegretBank(30, k=4, rng=9, u_max=U_MAX)
        rows = bank.acquire_many(20)
        # Drive everyone onto high, untracked arms.
        for _ in range(10):
            actions = bank.act(rows)
            caps = np.random.default_rng(0).uniform(500, 900, 30)
            counts = np.bincount(actions, minlength=30)
            bank.observe(rows, actions, caps[actions] / counts[actions])
        assert bank.population.promotions > 0
        for row in rows:
            bank.release(int(row))
        again = bank.acquire_many(20)
        fresh_state(bank, again)

    def test_growth_preserves_existing_sparse_state(self):
        """Free-list exhaustion doubles capacity; surviving rows keep
        their tracked arms and strategies bit-for-bit."""
        bank = TopKRegretBank(25, k=5, rng=3, u_max=U_MAX, initial_rows=8)
        rows = bank.acquire_many(8)
        arms = np.full(8, 20)
        bank.observe(rows, arms, np.full(8, 400.0))
        ids_before = bank.population.tracked_arms()[rows]
        probs_before = bank.population.strategies()[rows]
        bank.acquire_many(50)  # forces _grow_rows via ensure_capacity
        assert np.array_equal(bank.population.tracked_arms()[rows], ids_before)
        assert np.array_equal(bank.population.strategies()[rows], probs_before)


class TestSystemChurnWithTopk:
    def test_no_stale_rows_and_unique_assignment_under_churn(self):
        config = SystemConfig(
            num_peers=60,
            num_helpers=30,
            num_channels=2,
            channel_bitrates=100.0,
            churn=ChurnConfig(
                arrival_rate=2.0, mean_lifetime=20.0,
                initial_peer_lifetimes=True,
            ),
        )
        system = VectorizedStreamingSystem(
            config,
            bank_factory("r2hs", u_max=U_MAX, bank="topk", topk=5),
            rng=12,
        )
        trace = system.run(200)
        store = system.store
        online = store.online_slots()
        # Bank rows are uniquely assigned within each channel.
        for c, bank in enumerate(system.banks):
            mask = store.channel[online] == c
            rows = store.bank_row[online[mask]]
            assert np.unique(rows).size == rows.size
            ids = bank.population.tracked_arms()[rows]
            # Tracked ids always inside the channel's action set, sorted,
            # unique per row: no stale index leakage across occupants.
            assert ids.min() >= 0 and ids.max() < bank.num_actions
            assert (np.diff(ids, axis=1) > 0).all()
        assert np.all(trace.loads.sum(axis=1) == trace.online_peers)
        # Churn actually cycled slots through the free-list.
        assert store.total_created > config.num_peers
